"""Ablation: adaptive vs fixed (Q3DE-style) enlargement (fig. 7b).

After a single interior defect on a d = 7 patch, restore the distance
with (a) Surf-Deformer's adaptive enlargement and (b) Q3DE's fixed
doubling, and compare the qubit cost and the resulting distance.

Shape: adaptive enlargement restores the design distance at a fraction
of the doubled patch's qubits, and doubling *without removal* fails to
restore the worst-case distance at all (the defect stays inside).
"""

from repro.baselines import q3de_enlarge
from repro.codes.distance import graph_distance
from repro.deform import adaptive_enlargement, defect_removal
from repro.surface import rotated_surface_code

D = 7
DEFECT = (7, 7)


def _compare():
    adaptive = rotated_surface_code(D)
    defect_removal(adaptive, [DEFECT], compute_distances=False)
    report = adaptive_enlargement(adaptive)
    adaptive_cost = adaptive.physical_qubit_count()
    adaptive_dist = min(report.final_distance)

    fixed = rotated_surface_code(D)
    fixed.defective_data.add(DEFECT)  # Q3DE detects but does not remove
    q3de_enlarge(fixed, direction="e")
    fixed_cost = fixed.physical_qubit_count()
    # Q3DE's code still contains the defective qubit: its *worst-case*
    # distance treats errors there as free (remove it to measure).
    probe = fixed.copy()
    defect_removal(probe, [DEFECT], compute_distances=False)
    fixed_dist = min(
        graph_distance(probe.code, "X"), graph_distance(probe.code, "Z")
    )
    return adaptive_cost, adaptive_dist, fixed_cost, fixed_dist


def test_ablation_adaptive_vs_fixed_enlargement(benchmark, table):
    a_cost, a_dist, f_cost, f_dist = benchmark.pedantic(
        _compare, rounds=1, iterations=1
    )
    table.add("adaptive (Surf-Deformer)", a_cost, a_dist)
    table.add("fixed doubling (Q3DE)", f_cost, f_dist)
    table.show(header=("strategy", "physical qubits", "min distance"))

    assert a_dist >= D  # design distance restored
    assert a_cost < f_cost  # at less than the doubled patch's cost
    assert f_cost > 1.8 * (2 * D * D - 1) / 1.0  # doubling really doubles
