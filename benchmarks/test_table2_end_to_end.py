"""Table II: end-to-end retry risk and qubit counts for all 8 programs.

Regenerates every row of Table II with the analytic end-to-end evaluator
(the paper's own large-d regime is beyond direct simulation).  Shape
assertions:

* every Q3DE cell is OverRuntime (paper observation 1),
* ASC-S's retry risk is 10–100× Surf-Deformer's (paper: 35–70×),
* Surf-Deformer needs only ≈ 20 % more physical qubits than ASC-S.
"""

from repro.compiler import PAPER_BENCHMARKS
from repro.eval import evaluate_program
import pytest

pytestmark = pytest.mark.slow


def _run_all():
    rows = []
    for name, prog in PAPER_BENCHMARKS.items():
        for d in prog.distances:
            cells = {}
            for method in ("q3de", "asc_s", "surf_deformer"):
                cells[method] = evaluate_program(prog, method, d)
            rows.append((name, d, cells))
    return rows


def test_table2_end_to_end(benchmark, table):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    ratios = []
    for name, d, cells in rows:
        q3de, asc, ours = cells["q3de"], cells["asc_s"], cells["surf_deformer"]
        table.add(
            name,
            d,
            f"{q3de.physical_qubits:.2e}",
            q3de.status,
            f"{asc.physical_qubits:.2e}",
            asc.status,
            f"{ours.physical_qubits:.2e}",
            ours.status,
        )
        # Shape assertions per row.
        assert q3de.over_runtime, (name, d)
        assert not ours.over_runtime, (name, d)
        if asc.retry_risk > 1e-9:
            ratio = asc.retry_risk / max(ours.retry_risk, 1e-12)
            ratios.append(ratio)
            assert ratio > 10, (name, d, ratio)
        overhead = ours.physical_qubits / asc.physical_qubits
        assert 1.0 < overhead < 1.4, (name, d, overhead)
    table.show(
        header=(
            "Benchmark",
            "d",
            "Q3DE qubits",
            "Q3DE risk",
            "ASC-S qubits",
            "ASC-S risk",
            "Surf-D qubits",
            "Surf-D risk",
        )
    )
    mean_ratio = sum(ratios) / len(ratios)
    print(f"\nmean ASC-S / Surf-Deformer retry-risk ratio: {mean_ratio:.0f}x "
          "(paper: 35-70x)")
    assert 15 < mean_ratio < 150
