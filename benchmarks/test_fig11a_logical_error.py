"""Fig. 11(a): logical error rate vs #defective qubits, removal vs none.

Monte-Carlo on the full circuit-level pipeline (own Stim/PyMatching
substitutes).  Paper shape: codes with defects *removed* by
Surf-Deformer track the clean curve of a smaller distance, while
untreated defective codes are orders of magnitude worse; enlarging while
keeping defects (Q3DE) does not help.

The paper's d = 21/27 points are extrapolated there and here (the rates
are unmeasurably low); we simulate d = 9 directly like the paper's
measurable points.
"""

from conftest import scaled
from repro.defects import CosmicRayModel
from repro.deform import defect_removal
from repro.eval import memory_experiment
from repro.sim import NoiseModel
from repro.surface import rotated_surface_code
import pytest

pytestmark = pytest.mark.slow

D = 9
DEFECT_COUNTS = (4, 10)
ROUNDS = 5


def _point(num_defects: int, treat: bool, shots: int, seed: int):
    patch = rotated_surface_code(D)
    model = CosmicRayModel(seed=seed)
    defects = model.sample_defective_qubits(patch.all_qubit_coords(), num_defects)
    data_defects = {q for q in defects if q in patch.code.data_qubits}
    anc_defects = {q for q in defects if q not in data_defects}
    if treat:
        defect_removal(patch, defects, compute_distances=False)
        result = memory_experiment(
            patch.code,
            "Z",
            NoiseModel.uniform(1e-3),
            rounds=ROUNDS,
            shots=shots,
            seed=seed,
        )
    else:
        result = memory_experiment(
            patch.code,
            "Z",
            NoiseModel.uniform(1e-3),
            rounds=ROUNDS,
            shots=shots,
            seed=seed,
            defective_data=data_defects,
            defective_ancillas=anc_defects,
            decoder_method="greedy",  # untreated shots carry huge syndrome
        )
    return result.per_round


def _sweep():
    shots = scaled(300, minimum=100)
    rows = []
    for k in DEFECT_COUNTS:
        untreated = _point(k, treat=False, shots=shots, seed=k)
        treated = _point(k, treat=True, shots=shots, seed=k)
        rows.append((k, untreated, treated))
    clean = memory_experiment(
        rotated_surface_code(D).code,
        "Z",
        NoiseModel.uniform(1e-3),
        rounds=ROUNDS,
        shots=scaled(2000, minimum=500),
        seed=1,
    ).per_round
    return clean, rows


def test_fig11a_logical_error_rates(benchmark, table):
    clean, rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table.add(0, f"{clean:.2e}", f"{clean:.2e}")
    for k, untreated, treated in rows:
        table.add(k, f"{untreated:.2e}", f"{treated:.2e}")
    table.show(
        header=("# defective qubits", "no treatment (per round)", "Surf-D removal")
    )
    for k, untreated, treated in rows:
        # Untreated defective codes are far worse than removal.
        assert untreated > treated, k
        assert untreated > 2e-3  # defect noise dominates
    # Removal tracks a clean smaller-distance code: well below untreated.
    worst_treated = max(t for _, _, t in rows)
    best_untreated = min(u for _, u, _ in rows)
    assert best_untreated > 3 * worst_treated
