"""Ablation: X/Z-distance balancing for corner defects (fig. 8).

Compares Surf-Deformer's balanced fixed-basis choice against ASC-S's
minimal-disable choice on corner removals.  Shape: balancing never does
worse on ``min(dX, dZ)`` and wins on some corners.
"""

from repro.codes.distance import graph_distance
from repro.deform import balancing, patch_q_rm
from repro.surface import rotated_surface_code

CORNERS = [(1, 1), (1, 9), (9, 1), (9, 9)]  # d = 5 corners


def _compare():
    rows = []
    for corner in CORNERS:
        balanced = rotated_surface_code(5)
        basis = balancing(balanced, corner)
        patch_q_rm(balanced, corner, fix_basis=basis)
        ours = min(
            graph_distance(balanced.code, "X"), graph_distance(balanced.code, "Z")
        )
        worst = None
        for fixed in ("X", "Z"):
            trial = rotated_surface_code(5)
            try:
                patch_q_rm(trial, corner, fix_basis=fixed)
                dist = min(
                    graph_distance(trial.code, "X"), graph_distance(trial.code, "Z")
                )
            except (ValueError, RuntimeError):
                continue
            worst = dist if worst is None else min(worst, dist)
        rows.append((corner, basis, ours, worst))
    return rows


def test_ablation_corner_balancing(benchmark, table):
    rows = benchmark.pedantic(_compare, rounds=1, iterations=1)
    for corner, basis, ours, worst in rows:
        table.add(corner, basis, ours, worst)
    table.show(header=("corner", "balanced fix", "balanced min(dX,dZ)", "worst fixed"))
    for corner, _, ours, worst in rows:
        assert ours >= worst, corner
