"""Decode-pipeline performance report (writes ``BENCH_decode.json``).

Times the three stages every Monte-Carlo figure funnels through, at
d ∈ {3, 5, 7, 9} on a 25-round Z-memory experiment with the paper's
standard p = 1e-3 circuit noise:

* ``sample``    — Pauli-frame sampling (shots/sec) on the packed
                  uint64-bitplane engine,
* ``build``     — code construction + DEM extraction + decoding graph
                  with all-pairs matrices (builds/sec), with a
                  ``dem_build`` record splitting out DEM extraction
                  alone (and its ``mechanism_count``),
* ``decode``    — throughput per decoder method (shots/sec, best of
                  ``DECODE_REPS`` cold-cache runs to damp heavy-tail /
                  thermal noise), including ``blossom_packed`` — the
                  batch pipeline fed packed uint64 detector bitplanes
                  straight from the sampler (no uint8 round-trip) —
                  and ``blossom_legacy``: the seed's per-shot-Dijkstra
                  path (``use_matrices=False``, no syndrome cache,
                  matching by the same native engine), which is the
                  baseline the ≥10× acceptance criterion is measured
                  against at d = 7.

Run with ``PYTHONPATH=src python benchmarks/perf_report.py``; optional
``--distances 3,5,7,9`` and ``--benchmarks build,sample,decode`` filter
the (expensive) grid for quick reruns, ``--workers N`` adds a sharded
``blossom`` decode record (the ``decode_batch(workers=N)`` process
pool), and ``--out BENCH_decode.json`` redirects the output.  Unknown
or empty ``--benchmarks``/``--distances`` selections are rejected up
front (exit 2) instead of silently writing an empty report.
``--benchmarks scaling`` adds the multi-core sweep: the same decode
workload at pool widths ``sorted({1, 2, 4, nproc})`` (largest selected
distance only), each record carrying ``workers`` and
``parallel_efficiency`` — rate(w) / (w × rate(1)) — so forked-pool
scaling is visible wherever the hardware has cores even though CI's
container has one.
``--benchmarks glue`` adds the stage-timing breakdown: per distance
and input flavour (``blossom`` uint8 rows, ``blossom_packed``
bitplanes) the decode wall time is attributed to ``dedup`` (row
packing + the word-packed axis-0 ``np.unique``), ``gathers`` (stacked
all-pairs fancy indexing), ``dp`` (stacked subset-DP buckets),
``engine`` (oversize matching-engine calls), ``other`` and ``total``
via accumulating timers wrapped around the pipeline's internal seams,
so a glue regression is attributable to a stage, not just a total.
``--benchmarks service`` adds the streaming-service benchmark (largest
selected distance only): ``SERVICE_STREAMS`` concurrent sessions push a
``SERVICE_ROUNDS``-round syndrome stream through
:class:`repro.serve.DecodeService` in ``SERVICE_CHUNK_LAYERS``-layer
chunks, decoding through the sliding-window decoder's bounded-memory
window graphs; the record carries per-chunk service latency
percentiles (``p50_ms``/``p95_ms``/``p99_ms``, submit → decode-done,
queueing included) alongside decoded-shot throughput.  A non-finite
p99 (the service never decoded a chunk) fails the run.
``--smoke`` is the CI gate: a d = 3 decode tripwire with a small shot
plan, written to ``BENCH_decode.smoke.json`` so the committed report
is untouched, exiting nonzero if matrix blossom falls below
``SMOKE_MIN_SPEEDUP``× the legacy path — plus the matching-engine
gate, a d = 7, p = 3e-3 slice whose large (>
:data:`~repro.decode.sparse_match.SPARSE_MIN_DEFECTS`-defect)
components are matched by both engines, exiting nonzero if the sparse
region-growing matcher is slower than the dense blossom there
(``match_smoke`` records, matchings/sec).

``BENCH_decode.json`` record schema — every record carries::

    {"benchmark":      "build" | "dem_build" | "sample" | "decode"
                       | "scaling" | "match_smoke" | "glue" | "service",
     "distance":       3 | 5 | 7 | 9,
     "method":         benchmark-specific label (decode: "blossom",
                       "uf", "greedy", "blossom_legacy"; scaling:
                       "blossom"/"blossom[wN]"; match_smoke: "sparse",
                       "dense"),
     "shots_per_sec":  the throughput figure (builds/sec for build
                       benchmarks, matchings/sec for match_smoke)}

plus benchmark-specific bookkeeping: ``rounds`` (all), ``seconds``
(build/dem_build), ``mechanism_count`` (dem_build), ``shots`` (sample/
decode/scaling), ``components``/``mean_defects``/``noise_p``
(match_smoke), ``stage``/``seconds``/``fraction`` (glue — one record
per :data:`GLUE_STAGES` entry), ``streams``/``chunks``/
``chunk_layers``/``max_pending``/``p50_ms``/``p95_ms``/``p99_ms``
(service), for decode and scaling records
``reps`` (cold-cache
repetitions) and ``workers`` — the process-pool width used by
``decode_batch``; ``1`` means the serial path — and for scaling
records ``parallel_efficiency`` (rate(w) / (w × rate(1))).  Every
record also carries a ``machine`` dict (``nproc``, ``cpu``,
``python``/``numpy``/``scipy`` versions, and ``blossom_kernel`` —
``"compiled"`` or ``"python"``, which backend decoded) so numbers
recorded in different containers — e.g. the 1-core CI runner vs a
laptop — are self-explaining when diffed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np
import scipy

from repro.decode import MatchingDecoder
from repro.store import atomic_write_text
from repro.decode.batch import _gather
from repro.decode.blossom import kernel_backend
from repro.decode.sparse_match import (
    SPARSE_MIN_DEFECTS,
    sparse_match_parity,
)
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code

ROUNDS = 25
NOISE_P = 1e-3
BENCHMARKS = ("build", "sample", "decode", "scaling", "glue", "service")
DECODE_REPS = 3

#: Stage labels of the ``glue`` benchmark, in report order.  The first
#: four are accumulated by wrapping the pipeline's internal seams;
#: ``other`` is the unattributed remainder (scatter, component
#: labelling, small-k vector paths, cache bookkeeping) and ``total``
#: the whole ``decode_batch`` wall time.
GLUE_STAGES = ("dedup", "gathers", "dp", "engine", "other", "total")

#: Pool widths the ``scaling`` benchmark sweeps (plus the machine's
#: core count); parallel efficiency is rate(w) / (w × rate(1)).
SCALING_WORKERS = (1, 2, 4)

#: (timed decode shots, legacy decode shots) per distance — the legacy
#: path is orders of magnitude slower, so it gets a smaller sample.
SHOT_PLAN = {3: (8000, 2000), 5: (4000, 600), 7: (3000, 300), 9: (2000, 120)}

#: Streaming-service benchmark shape: concurrent sessions each push a
#: ``SERVICE_ROUNDS``-round stream in ``SERVICE_CHUNK_LAYERS``-layer
#: chunks through a ``workers``-wide pool with ``max_pending``
#: backpressure; shots per stream shrink with distance like the decode
#: shot plan does.
SERVICE_ROUNDS = 100
SERVICE_STREAMS = 4
SERVICE_CHUNK_LAYERS = 5
SERVICE_WORKERS = 2
SERVICE_MAX_PENDING = 4
SERVICE_SHOT_PLAN = {3: 256, 5: 128, 7: 64, 9: 32}

#: ``--smoke`` shot plan and regression floor: matrix blossom must stay
#: at least this many times faster than the legacy path at d = 3, else
#: the run exits nonzero (the CI perf tripwire).
SMOKE_SHOT_PLAN = {3: (2000, 500)}
SMOKE_MIN_SPEEDUP = 2.0

#: Matching-engine smoke gate: the large defect components of this
#: d = 7, p = 3e-3 slice are matched by the sparse region-growing
#: engine and the dense blossom; the build fails if sparse throughput
#: drops below ``MATCH_SMOKE_MIN_RATIO``× dense (it is ~2× faster on
#: healthy builds).
MATCH_SMOKE_DISTANCE = 7
MATCH_SMOKE_P = 3e-3
MATCH_SMOKE_SHOTS = 120
MATCH_SMOKE_MIN_RATIO = 1.0
#: Pinned sampler seed of the gate's slice: the component list — and
#: therefore the work both engines are timed on — is identical on every
#: run, so the ratio gate only moves with real engine changes (plus the
#: interleaved best-of-``DECODE_REPS`` timing damping container wobble).
MATCH_SMOKE_SEED = 5


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def _machine_metadata() -> dict:
    """CPU/toolchain facts attached to every record (see module doc)."""
    cpu = platform.processor() or ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    return {
        "nproc": os.cpu_count(),
        "cpu": cpu,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        # "compiled" when the C blossom kernel is active, "python" when
        # the pure fallback ran — decode figures are not comparable
        # across the two, so every record self-declares its backend.
        "blossom_kernel": kernel_backend(),
    }


def profile_distance(
    distance: int,
    benchmarks: set[str],
    *,
    workers: int | None = None,
    shot_plan: dict | None = None,
) -> list[dict]:
    shots, legacy_shots = (shot_plan or SHOT_PLAN).get(distance, (1000, 100))
    records: list[dict] = []

    t0 = time.perf_counter()
    patch = rotated_surface_code(distance)
    circuit = memory_circuit(
        patch.code, "Z", ROUNDS, NoiseModel.uniform(NOISE_P)
    )
    dem = None
    dem_seconds = 0.0
    if benchmarks & {"build", "decode"}:
        t_dem = time.perf_counter()
        dem = build_dem(circuit)
        dem_seconds = time.perf_counter() - t_dem
    if "build" in benchmarks:
        # The graph build below is part of the timed "build" record; the
        # decode loop constructs its own per-rep decoders.
        decoder = MatchingDecoder(dem)
        decoder.graph.ensure_matrices()
    build_seconds = time.perf_counter() - t0
    if "build" in benchmarks:
        records.append(
            {
                "benchmark": "build",
                "distance": distance,
                "method": "code+dem+graph",
                "shots_per_sec": _rate(1, build_seconds),
                "seconds": build_seconds,
                "rounds": ROUNDS,
            }
        )
        records.append(
            {
                "benchmark": "dem_build",
                "distance": distance,
                "method": "packed",
                "shots_per_sec": _rate(1, dem_seconds),
                "seconds": dem_seconds,
                "mechanism_count": len(dem.mechanisms),
                "rounds": ROUNDS,
            }
        )

    if not benchmarks & {"sample", "decode"}:
        return records
    sample_detectors(circuit, 64, seed=1)  # warm the compile cache
    t0 = time.perf_counter()
    detectors, observables = sample_detectors(circuit, shots, seed=11)
    sample_seconds = time.perf_counter() - t0
    if "sample" in benchmarks:
        records.append(
            {
                "benchmark": "sample",
                "distance": distance,
                "method": "pauli_frame",
                "shots_per_sec": _rate(shots, sample_seconds),
                "shots": shots,
                "rounds": ROUNDS,
            }
        )

    if "decode" not in benchmarks:
        return records
    # The packed record decodes the same sample bits as the uint8 rows
    # (equal seed, equal draws), shipped as uint64 detector bitplanes.
    packed_detectors, _ = sample_detectors(
        circuit, shots, seed=11, output="packed"
    )
    methods: list[tuple[str, dict, int]] = [
        ("blossom", {}, shots),
        ("blossom_packed", {}, shots),
        ("uf", {"method": "uf"}, shots),
        ("greedy", {"method": "greedy"}, shots),
        ("blossom_legacy", {"use_matrices": False, "cache_size": 0}, legacy_shots),
    ]
    if workers is not None and workers > 1:
        # The sharded path: same decoder, unique syndromes partitioned
        # across a forked process pool.
        methods.insert(1, ("blossom", {"workers": workers}, shots))
    for name, kwargs, n in methods:
        # Best of DECODE_REPS cold-cache runs: decode cost is heavy-tailed
        # (rare dense syndromes hit the slow blossom path) and thermal
        # noise moves single timings by ±10-20%, so the minimum time is
        # the stable estimator.  A fresh decoder per rep keeps the
        # syndrome LRU cold, measuring the same quantity as one run.
        seconds = float("inf")
        for _ in range(DECODE_REPS):
            dec = MatchingDecoder(dem, **kwargs)
            if name.startswith("blossom") and name != "blossom_legacy":
                dec.graph.ensure_route_tables()  # outside the timed region
            data = packed_detectors if name == "blossom_packed" else detectors[:n]
            t0 = time.perf_counter()
            dec.decode_batch(data)
            seconds = min(seconds, time.perf_counter() - t0)
        records.append(
            {
                "benchmark": "decode",
                "distance": distance,
                "method": name,
                "shots_per_sec": _rate(n, seconds),
                "shots": n,
                "rounds": ROUNDS,
                "reps": DECODE_REPS,
                "workers": kwargs.get("workers", 1),
            }
        )
    return records


def _timed_seam(fn, acc: dict, key: str):
    """Wrap ``fn`` so its wall time accumulates into ``acc[key]``."""

    def wrapper(*args, **kwargs):
        t0 = time.perf_counter()
        try:
            return fn(*args, **kwargs)
        finally:
            acc[key] += time.perf_counter() - t0

    return wrapper


def glue_benchmark(distance: int) -> list[dict]:
    """Stage-attributed decode timing: where the numpy glue goes.

    Wraps the batch pipeline's internal seams with accumulating timers
    — ``dedup`` (row packing + the word-packed axis-0 ``np.unique``
    front door), ``gathers`` (the stacked all-pairs fancy-indexing
    passes), ``dp`` (the stacked subset-DP buckets), ``engine`` (the
    oversize matching-engine calls, batched or per-component) — then
    decodes one sampled batch per input flavour (uint8 rows and a
    packed bitplane) and reports each stage's seconds and fraction of
    the decode wall time.  A glue regression is then attributable to a
    stage, not just a total.  The timers add a few µs per seam call,
    so stage fractions are trustworthy but the ``total`` here is a
    shade above the untraced ``decode`` benchmark's.
    """
    import repro.decode.base as base_mod
    import repro.decode.batch as batch_mod
    from repro.decode import mwpm as mwpm_mod
    from repro.decode import sparse_match as sparse_mod

    shots, _ = SHOT_PLAN.get(distance, (1000, 100))
    patch = rotated_surface_code(distance)
    circuit = memory_circuit(
        patch.code, "Z", ROUNDS, NoiseModel.uniform(NOISE_P)
    )
    dem = build_dem(circuit)
    sample_detectors(circuit, 64, seed=1)  # warm the compile cache
    detectors, _ = sample_detectors(circuit, shots, seed=11)
    packed_detectors, _ = sample_detectors(
        circuit, shots, seed=11, output="packed"
    )
    seams = (
        (base_mod, "gf2_pack_rows", "dedup"),
        (base_mod, "_packed_dedup", "dedup"),
        (batch_mod, "_gather", "gathers"),
        (batch_mod, "_pairable", "gathers"),
        (batch_mod, "_dp_match_batch", "dp"),
        (sparse_mod, "sparse_match_parity_batch", "engine"),
        (mwpm_mod.MatchingDecoder, "_match_oversize", "engine"),
    )
    records: list[dict] = []
    for method, data in (
        ("blossom", detectors),
        ("blossom_packed", packed_detectors),
    ):
        acc = dict.fromkeys(("dedup", "gathers", "dp", "engine"), 0.0)
        originals = []
        try:
            for owner, name, key in seams:
                fn = getattr(owner, name)
                originals.append((owner, name, fn))
                setattr(owner, name, _timed_seam(fn, acc, key))
            dec = MatchingDecoder(dem)
            dec.graph.ensure_route_tables()  # outside the timed region
            t0 = time.perf_counter()
            dec.decode_batch(data)
            total = time.perf_counter() - t0
        finally:
            for owner, name, fn in originals:
                setattr(owner, name, fn)
        stage_seconds = dict(acc)
        stage_seconds["other"] = max(total - sum(acc.values()), 0.0)
        stage_seconds["total"] = total
        for stage in GLUE_STAGES:
            seconds = stage_seconds[stage]
            records.append(
                {
                    "benchmark": "glue",
                    "distance": distance,
                    "method": method,
                    "stage": stage,
                    "shots_per_sec": _rate(shots, seconds),
                    "seconds": seconds,
                    "fraction": (
                        seconds / total if total > 0 else float("nan")
                    ),
                    "shots": shots,
                    "rounds": ROUNDS,
                }
            )
        breakdown = "  ".join(
            f"{stage}={stage_seconds[stage] / total:5.1%}"
            for stage in GLUE_STAGES[:-1]
        )
        print(f"  glue/{method:<15} {total:6.3f}s  {breakdown}")
    return records


def _oversize_components(decoder, detectors):
    """Route arrays of every component past the sparse threshold.

    The same gather + pairable-graph BFS the serial decode path runs,
    kept here so the smoke gate times the matching engines alone —
    no caching, deduplication or DP buckets in the timed region.
    """
    decoder.graph.ensure_route_tables()
    comps = []
    for row in detectors:
        defects = np.nonzero(row)[0]
        defects = defects[defects < decoder.graph.num_detectors]
        if len(defects) < SPARSE_MIN_DEFECTS:
            continue
        det = defects[None, :]
        W, use_pair, pairable, P, b_dist, b_par = _gather(
            decoder.graph, det
        )
        k = len(defects)
        unassigned = np.ones(k, dtype=bool)
        for start in range(k):
            if not unassigned[start]:
                continue
            members = np.zeros(k, dtype=bool)
            members[start] = True
            frontier = members
            while frontier.any():
                reached = pairable[0][frontier].any(axis=0) & ~members
                members |= reached
                frontier = reached
            unassigned &= ~members
            comp = np.nonzero(members)[0]
            if len(comp) < SPARSE_MIN_DEFECTS:
                continue
            sub = np.ix_(comp, comp)
            comps.append(
                (
                    len(comp),
                    W[0][sub].copy(),
                    use_pair[0][sub].copy(),
                    P[0][sub].copy(),
                    b_dist[0][comp].copy(),
                    b_par[0][comp].copy(),
                )
            )
    return comps


def match_engine_smoke() -> tuple[list[dict], bool]:
    """The matching-engine gate: sparse vs dense on large components.

    Samples the d = 7, p = 3e-3 slice — where almost every shot is one
    big defect component — extracts every component past the sparse
    threshold, and times both engines on the identical component list
    (best of ``DECODE_REPS``, matchings/sec).  Returns the records and
    whether the sparse engine met :data:`MATCH_SMOKE_MIN_RATIO`.
    """
    patch = rotated_surface_code(MATCH_SMOKE_DISTANCE)
    circuit = memory_circuit(
        patch.code, "Z", ROUNDS, NoiseModel.uniform(MATCH_SMOKE_P)
    )
    dem = build_dem(circuit)
    decoder = MatchingDecoder(dem)
    detectors, _ = sample_detectors(
        circuit, MATCH_SMOKE_SHOTS, seed=MATCH_SMOKE_SEED
    )
    comps = _oversize_components(decoder, detectors)
    if not comps:
        # A gate that measures nothing must not pass: at this slice's
        # noise level oversize components are the common case, so an
        # empty list means the sampler, threshold or shot plan changed
        # under the gate's feet.
        print(
            f"smoke: d={MATCH_SMOKE_DISTANCE} p={MATCH_SMOKE_P} produced "
            "no large components — matching-engine gate FAIL"
        )
        return [], False
    engines = {
        "sparse": sparse_match_parity,
        "dense": MatchingDecoder._blossom_match,
    }
    records: list[dict] = []
    # Interleave the engines within each rep (rather than timing all of
    # one engine's reps first): a thermal or noisy-neighbour phase then
    # hits both engines of a rep equally instead of skewing the ratio,
    # and best-of-DECODE_REPS damps what remains.
    best = dict.fromkeys(engines, float("inf"))
    for _ in range(DECODE_REPS):
        for name, run in engines.items():
            t0 = time.perf_counter()
            for k, W, use_pair, P, b_dist, b_par in comps:
                run(k, W, use_pair, P, b_dist, b_par)
            best[name] = min(best[name], time.perf_counter() - t0)
    rates: dict[str, float] = {}
    for name in engines:
        rates[name] = _rate(len(comps), best[name])
        records.append(
            {
                "benchmark": "match_smoke",
                "distance": MATCH_SMOKE_DISTANCE,
                "method": name,
                "shots_per_sec": rates[name],
                "components": len(comps),
                "mean_defects": float(np.mean([c[0] for c in comps])),
                "noise_p": MATCH_SMOKE_P,
                "rounds": ROUNDS,
                "reps": DECODE_REPS,
            }
        )
    ratio = (
        rates["sparse"] / rates["dense"] if rates["dense"] else float("inf")
    )
    ok = ratio >= MATCH_SMOKE_MIN_RATIO
    print(
        f"smoke: d={MATCH_SMOKE_DISTANCE} p={MATCH_SMOKE_P} sparse matcher "
        f"{ratio:.2f}x dense on {len(comps)} large components "
        f"({'PASS' if ok else 'FAIL'}, floor {MATCH_SMOKE_MIN_RATIO}x)"
    )
    return records, ok


def scaling_benchmark(distance: int) -> list[dict]:
    """Multi-core decode scaling: one workload, swept pool widths.

    Decodes the *same* sampled batch with ``decode_batch`` at
    ``workers ∈ sorted({1, 2, 4, nproc})`` and records per-width
    throughput plus ``parallel_efficiency`` — rate(w) / (w × rate(1)),
    1.0 meaning perfect linear scaling.  On a 1-core container the
    sweep still runs (the forked pool time-slices one core), so the
    committed records show what sharding costs there and what it buys
    wherever ``nproc`` is real; the ``machine`` dict on each record
    tells the two apart.  ``min_shard_syndromes`` is lowered so the
    fixed workload actually shards at every width instead of falling
    back to serial on the small-shard floor.
    """
    shots, _ = SHOT_PLAN.get(distance, (1000, 100))
    patch = rotated_surface_code(distance)
    circuit = memory_circuit(
        patch.code, "Z", ROUNDS, NoiseModel.uniform(NOISE_P)
    )
    dem = build_dem(circuit)
    sample_detectors(circuit, 64, seed=1)  # warm the compile cache
    detectors, _ = sample_detectors(circuit, shots, seed=11)
    widths = sorted({*SCALING_WORKERS, os.cpu_count() or 1})
    records: list[dict] = []
    base_rate = None
    for w in widths:
        seconds = float("inf")
        for _ in range(DECODE_REPS):
            # workers=1 is the explicit serial path (no fork), so the
            # base rate is measured on exactly the code path sharded
            # widths are compared against.
            dec = MatchingDecoder(dem, workers=w)
            dec.min_shard_syndromes = 1
            dec.graph.ensure_route_tables()  # outside the timed region
            t0 = time.perf_counter()
            dec.decode_batch(detectors)
            seconds = min(seconds, time.perf_counter() - t0)
        rate = _rate(shots, seconds)
        if base_rate is None:
            base_rate = rate
        records.append(
            {
                "benchmark": "scaling",
                "distance": distance,
                "method": f"blossom[w{w}]" if w > 1 else "blossom",
                "shots_per_sec": rate,
                "shots": shots,
                "rounds": ROUNDS,
                "reps": DECODE_REPS,
                "workers": w,
                "parallel_efficiency": (
                    rate / (w * base_rate) if base_rate else float("nan")
                ),
            }
        )
        print(
            f"  scaling/w{w:<2} {rate:>10.1f} shots/s  "
            f"(efficiency {records[-1]['parallel_efficiency']:.2f})"
        )
    return records


def service_benchmark(distance: int) -> tuple[list[dict], bool]:
    """Streamed decoding through the asyncio service, latency-profiled.

    ``SERVICE_STREAMS`` concurrent sessions each push a
    ``SERVICE_ROUNDS``-round d = ``distance`` syndrome stream through
    one :class:`repro.serve.DecodeService` in
    ``SERVICE_CHUNK_LAYERS``-layer chunks (``SERVICE_WORKERS`` pool
    threads, ``SERVICE_MAX_PENDING`` backpressure depth).  The window
    graphs and outcome memos are warmed outside the timed region — the
    record measures steady-state service latency, not one-time setup —
    and the returned flag is False when p99 is non-finite, i.e. the
    service never decoded a chunk.
    """
    import asyncio

    from repro.serve import DecodeService, SlidingWindowDecoder, WindowConfig

    shots = SERVICE_SHOT_PLAN.get(distance, 64)
    patch = rotated_surface_code(distance)
    noise = NoiseModel.uniform(NOISE_P)
    circuit = memory_circuit(patch.code, "Z", SERVICE_ROUNDS, noise)
    config = WindowConfig()
    window = SlidingWindowDecoder(patch.code, "Z", noise, config=config)
    sample_detectors(circuit, 16, seed=1)  # warm the compile cache
    detectors, _ = sample_detectors(
        circuit, shots, seed=11, output="packed"
    )
    rows = detectors.transposed().unpack()
    window.decode_batch(rows[:4])  # build the window graphs up front
    chunk_cols = SERVICE_CHUNK_LAYERS * window.layer_width

    async def run_streams():
        service = DecodeService(
            window,
            workers=SERVICE_WORKERS,
            max_pending=SERVICE_MAX_PENDING,
        )

        async def one_stream():
            session = service.open_stream(shots)
            for lo in range(0, rows.shape[1], chunk_cols):
                await session.submit(rows[:, lo : lo + chunk_cols])
            return await session.finish()

        async with service:
            await asyncio.gather(
                *(one_stream() for _ in range(SERVICE_STREAMS))
            )
        return service.stats()

    stats = asyncio.run(run_streams())
    record = {
        "benchmark": "service",
        "distance": distance,
        "method": f"window{config.window}/{config.commit}",
        "shots_per_sec": stats.shots_per_sec,
        "shots": stats.shots,
        "streams": stats.streams,
        "chunks": stats.chunks,
        "chunk_layers": SERVICE_CHUNK_LAYERS,
        "rounds": SERVICE_ROUNDS,
        "workers": SERVICE_WORKERS,
        "max_pending": SERVICE_MAX_PENDING,
        "p50_ms": stats.p50_ms,
        "p95_ms": stats.p95_ms,
        "p99_ms": stats.p99_ms,
    }
    ok = bool(np.isfinite(stats.p99_ms))
    print(
        f"  service/{record['method']:<12} {stats.shots_per_sec:>10.1f} "
        f"shots/s  p50={stats.p50_ms:.2f}ms p95={stats.p95_ms:.2f}ms "
        f"p99={stats.p99_ms:.2f}ms ({'PASS' if ok else 'FAIL'})"
    )
    return [record], ok


def _decode_label(record: dict) -> str:
    """Display/lookup label for a decode record (sharded runs tagged)."""
    if record.get("workers", 1) > 1:
        return f"{record['method']}[w{record['workers']}]"
    return record["method"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distances", default="3,5,7,9")
    parser.add_argument(
        "--benchmarks",
        default="build,sample,decode,glue",
        help="comma-separated subset of build,sample,decode,scaling,glue,"
        "service (scaling and service run once at the largest selected "
        "distance; glue writes a per-distance decode stage-timing "
        "breakdown; service streams chunked syndromes through the "
        "asyncio decode service and records latency percentiles)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also time the sharded blossom path with this pool width",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fast d=3 decode tripwire for CI: small shot plan, separate "
        "output file, nonzero exit below the speedup floor",
    )
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    repo_root = Path(__file__).resolve().parent.parent
    # Validate the selections up front, in every mode: an unknown or
    # empty --benchmarks/--distances used to slip through (--smoke
    # ignored the names entirely) and silently write a report with
    # nothing in it.
    requested = {b.strip() for b in args.benchmarks.split(",") if b.strip()}
    unknown = requested - set(BENCHMARKS)
    if unknown:
        parser.error(
            f"unknown benchmarks: {sorted(unknown)} "
            f"(choose from {', '.join(BENCHMARKS)})"
        )
    if not requested:
        parser.error(
            "--benchmarks selected nothing; choose from "
            f"{', '.join(BENCHMARKS)}"
        )
    try:
        requested_distances = [
            int(d) for d in args.distances.split(",") if d.strip()
        ]
    except ValueError:
        parser.error(
            "--distances must be comma-separated integers, got "
            f"{args.distances!r}"
        )
    if not requested_distances:
        parser.error("--distances selected nothing")
    if args.smoke:
        # Smoke is a fixed gate (d=3 decode tripwire + d=7 matching
        # engines); reject flag combinations it would silently ignore
        # rather than let a user think another grid was gated.
        if args.distances != "3,5,7,9":
            parser.error("--smoke always profiles d=3; drop --distances")
        if "decode" not in requested:
            parser.error("--smoke gates the decode benchmark; drop --benchmarks")
        distances = [3]
        benchmarks = {"decode"}
        shot_plan = SMOKE_SHOT_PLAN
        default_out = repo_root / "BENCH_decode.smoke.json"
    else:
        distances = requested_distances
        benchmarks = requested
        shot_plan = None
        default_out = repo_root / "BENCH_decode.json"
    out_path = Path(args.out if args.out is not None else default_out)

    machine = _machine_metadata()
    stage_benchmarks = benchmarks - {"scaling", "glue", "service"}
    all_records: list[dict] = []
    for d in distances if stage_benchmarks else []:
        print(f"profiling d={d} ({ROUNDS} rounds, p={NOISE_P}) ...", flush=True)
        records = profile_distance(
            d, stage_benchmarks, workers=args.workers, shot_plan=shot_plan
        )
        all_records.extend(records)
        for r in records:
            if r["benchmark"] in ("build", "dem_build"):
                print(f"  {r['benchmark']:<9} {r['seconds']:.2f}s")
            elif r["benchmark"] == "sample":
                print(f"  sample    {r['shots_per_sec']:>10.1f} shots/s")
        by_method = {
            _decode_label(r): r["shots_per_sec"]
            for r in records
            if r["benchmark"] == "decode"
        }
        legacy = by_method.get("blossom_legacy", float("nan"))
        for method, rate in by_method.items():
            rel = rate / legacy if legacy else float("nan")
            print(f"  decode/{method:<15} {rate:>10.1f} shots/s  ({rel:5.1f}x legacy)")
    if "glue" in benchmarks:
        for d in distances:
            print(
                f"glue d={d} ({ROUNDS} rounds, p={NOISE_P}) ...", flush=True
            )
            all_records.extend(glue_benchmark(d))
    if "scaling" in benchmarks:
        d = max(distances)
        print(
            f"scaling d={d} ({ROUNDS} rounds, p={NOISE_P}, "
            f"nproc={os.cpu_count()}) ...",
            flush=True,
        )
        all_records.extend(scaling_benchmark(d))
    status = 0
    if "service" in benchmarks:
        d = max(distances)
        print(
            f"service d={d} ({SERVICE_ROUNDS} rounds, p={NOISE_P}, "
            f"{SERVICE_STREAMS} streams) ...",
            flush=True,
        )
        service_records, service_ok = service_benchmark(d)
        all_records.extend(service_records)
        if not service_ok:
            status = 1
    if args.smoke:
        match_records, match_ok = match_engine_smoke()
        all_records.extend(match_records)
        if not match_ok:
            status = 1
    for record in all_records:
        record["machine"] = machine
    # Write-temp-then-replace: a run interrupted mid-write can never
    # truncate the committed baseline (or a smoke report CI archives).
    atomic_write_text(out_path, json.dumps(all_records, indent=2) + "\n")
    print(f"wrote {out_path} ({len(all_records)} records)")

    if args.smoke:
        rates = {
            _decode_label(r): r["shots_per_sec"]
            for r in all_records
            if r["benchmark"] == "decode" and r["distance"] == 3
        }
        speedup = rates["blossom"] / rates["blossom_legacy"]
        ok = speedup >= SMOKE_MIN_SPEEDUP
        print(
            f"smoke: d=3 blossom {speedup:.1f}x legacy "
            f"({'PASS' if ok else 'FAIL'}, floor {SMOKE_MIN_SPEEDUP}x)"
        )
        if not ok:
            status = 1
    d7 = [
        r
        for r in all_records
        if r["benchmark"] == "decode" and r["distance"] == 7
    ]
    if d7:
        rates = {_decode_label(r): r["shots_per_sec"] for r in d7}
        speedup = rates["blossom"] / rates["blossom_legacy"]
        print(
            f"d=7 blossom speedup over seed implementation: {speedup:.1f}x "
            f"({'PASS' if speedup >= 10 else 'BELOW'} the >=10x target)"
        )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
