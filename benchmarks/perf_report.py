"""Decode-pipeline performance report (writes ``BENCH_decode.json``).

Times the three stages every Monte-Carlo figure funnels through, at
d ∈ {3, 5, 7, 9} on a 25-round Z-memory experiment with the paper's
standard p = 1e-3 circuit noise:

* ``sample``    — Pauli-frame sampling (shots/sec) on the packed
                  uint64-bitplane engine,
* ``build``     — code construction + DEM extraction + decoding graph
                  with all-pairs matrices (builds/sec), with a
                  ``dem_build`` record splitting out DEM extraction
                  alone (and its ``mechanism_count``),
* ``decode``    — throughput per decoder method (shots/sec, best of
                  ``DECODE_REPS`` cold-cache runs to damp heavy-tail /
                  thermal noise), including ``blossom_legacy``: the
                  seed's per-shot-Dijkstra + networkx path
                  (``use_matrices=False``, no syndrome cache), which is
                  the baseline the ≥10× acceptance criterion is
                  measured against at d = 7.

Run with ``PYTHONPATH=src python benchmarks/perf_report.py``; optional
``--distances 3,5,7,9`` and ``--benchmarks build,sample,decode`` filter
the (expensive) grid for quick reruns, and ``--out BENCH_decode.json``
redirects the output.  Each record is ``{"benchmark", "distance",
"method", "shots_per_sec"}`` plus the shot/round bookkeeping, so
successive PRs can diff throughput.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.decode import MatchingDecoder  # noqa: E402
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors  # noqa: E402
from repro.surface import rotated_surface_code  # noqa: E402

ROUNDS = 25
NOISE_P = 1e-3
BENCHMARKS = ("build", "sample", "decode")
DECODE_REPS = 3

#: (timed decode shots, legacy decode shots) per distance — the legacy
#: path is orders of magnitude slower, so it gets a smaller sample.
SHOT_PLAN = {3: (8000, 2000), 5: (4000, 600), 7: (3000, 300), 9: (2000, 120)}


def _rate(count: int, seconds: float) -> float:
    return count / seconds if seconds > 0 else float("inf")


def profile_distance(distance: int, benchmarks: set[str]) -> list[dict]:
    shots, legacy_shots = SHOT_PLAN.get(distance, (1000, 100))
    records: list[dict] = []

    t0 = time.perf_counter()
    patch = rotated_surface_code(distance)
    circuit = memory_circuit(
        patch.code, "Z", ROUNDS, NoiseModel.uniform(NOISE_P)
    )
    dem = None
    dem_seconds = 0.0
    if benchmarks & {"build", "decode"}:
        t_dem = time.perf_counter()
        dem = build_dem(circuit)
        dem_seconds = time.perf_counter() - t_dem
    if "build" in benchmarks:
        # The graph build below is part of the timed "build" record; the
        # decode loop constructs its own per-rep decoders.
        decoder = MatchingDecoder(dem)
        decoder.graph.ensure_matrices()
    build_seconds = time.perf_counter() - t0
    if "build" in benchmarks:
        records.append(
            {
                "benchmark": "build",
                "distance": distance,
                "method": "code+dem+graph",
                "shots_per_sec": _rate(1, build_seconds),
                "seconds": build_seconds,
                "rounds": ROUNDS,
            }
        )
        records.append(
            {
                "benchmark": "dem_build",
                "distance": distance,
                "method": "packed",
                "shots_per_sec": _rate(1, dem_seconds),
                "seconds": dem_seconds,
                "mechanism_count": len(dem.mechanisms),
                "rounds": ROUNDS,
            }
        )

    if not benchmarks & {"sample", "decode"}:
        return records
    sample_detectors(circuit, 64, seed=1)  # warm the compile cache
    t0 = time.perf_counter()
    detectors, observables = sample_detectors(circuit, shots, seed=11)
    sample_seconds = time.perf_counter() - t0
    if "sample" in benchmarks:
        records.append(
            {
                "benchmark": "sample",
                "distance": distance,
                "method": "pauli_frame",
                "shots_per_sec": _rate(shots, sample_seconds),
                "shots": shots,
                "rounds": ROUNDS,
            }
        )

    if "decode" not in benchmarks:
        return records
    methods: list[tuple[str, dict, int]] = [
        ("blossom", {}, shots),
        ("uf", {"method": "uf"}, shots),
        ("greedy", {"method": "greedy"}, shots),
        ("blossom_legacy", {"use_matrices": False, "cache_size": 0}, legacy_shots),
    ]
    for name, kwargs, n in methods:
        # Best of DECODE_REPS cold-cache runs: decode cost is heavy-tailed
        # (rare dense syndromes hit the slow blossom path) and thermal
        # noise moves single timings by ±10-20%, so the minimum time is
        # the stable estimator.  A fresh decoder per rep keeps the
        # syndrome LRU cold, measuring the same quantity as one run.
        seconds = float("inf")
        for _ in range(DECODE_REPS):
            dec = MatchingDecoder(dem, **kwargs)
            if name == "blossom":
                dec.graph.ensure_matrices()  # outside the timed region
            t0 = time.perf_counter()
            dec.decode_batch(detectors[:n])
            seconds = min(seconds, time.perf_counter() - t0)
        records.append(
            {
                "benchmark": "decode",
                "distance": distance,
                "method": name,
                "shots_per_sec": _rate(n, seconds),
                "shots": n,
                "rounds": ROUNDS,
                "reps": DECODE_REPS,
            }
        )
    return records


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--distances", default="3,5,7,9")
    parser.add_argument(
        "--benchmarks",
        default=",".join(BENCHMARKS),
        help="comma-separated subset of build,sample,decode",
    )
    parser.add_argument("--out", default=None)
    args = parser.parse_args(argv)
    distances = [int(d) for d in args.distances.split(",") if d]
    benchmarks = {b.strip() for b in args.benchmarks.split(",") if b.strip()}
    unknown = benchmarks - set(BENCHMARKS)
    if unknown:
        parser.error(f"unknown benchmarks: {sorted(unknown)}")
    out_path = Path(
        args.out
        if args.out is not None
        else Path(__file__).resolve().parent.parent / "BENCH_decode.json"
    )

    all_records: list[dict] = []
    for d in distances:
        print(f"profiling d={d} ({ROUNDS} rounds, p={NOISE_P}) ...", flush=True)
        records = profile_distance(d, benchmarks)
        all_records.extend(records)
        for r in records:
            if r["benchmark"] in ("build", "dem_build"):
                print(f"  {r['benchmark']:<9} {r['seconds']:.2f}s")
            elif r["benchmark"] == "sample":
                print(f"  sample    {r['shots_per_sec']:>10.1f} shots/s")
        by_method = {
            r["method"]: r["shots_per_sec"]
            for r in records
            if r["benchmark"] == "decode"
        }
        legacy = by_method.get("blossom_legacy", float("nan"))
        for method, rate in by_method.items():
            rel = rate / legacy if legacy else float("nan")
            print(f"  decode/{method:<15} {rate:>10.1f} shots/s  ({rel:5.1f}x legacy)")
    out_path.write_text(json.dumps(all_records, indent=2) + "\n")
    print(f"wrote {out_path} ({len(all_records)} records)")

    d7 = [
        r
        for r in all_records
        if r["benchmark"] == "decode" and r["distance"] == 7
    ]
    if d7:
        rates = {r["method"]: r["shots_per_sec"] for r in d7}
        speedup = rates["blossom"] / rates["blossom_legacy"]
        print(
            f"d=7 blossom speedup over seed implementation: {speedup:.1f}x "
            f"({'PASS' if speedup >= 10 else 'BELOW'} the >=10x target)"
        )


if __name__ == "__main__":
    main()
