"""Table I: instruction sets of the surface-code implementations.

Regenerates the qualitative comparison: which extended instructions each
method has and which operations they support — verified against the
actual capabilities of this repository's implementations.
"""

from repro.baselines import asc_defect_removal, q3de_enlarge
from repro.codes import check_code, code_distance
from repro.deform import (
    data_q_rm,
    defect_removal,
    patch_q_add_layer,
    patch_q_rm,
    syndrome_q_rm,
)
from repro.surface import rotated_surface_code

ROWS = [
    ("Lattice Surgery", "-", "Logical operations"),
    ("Q3DE", "-", "Logical operations, Fixed enlargement"),
    ("ASC-S", "DataQ_RM", "Logical operations, Fixed qubit removal"),
    (
        "Surf-Deformer",
        "DataQ_RM, SyndromeQ_RM, PatchQ_RM, PatchQ_ADD",
        "Logical operations, Adaptive qubit removal, Adaptive enlargement",
    ),
]


def _exercise_all_instructions():
    """Prove each listed instruction exists and works."""
    patch = rotated_surface_code(7)
    data_q_rm(patch, (7, 7))
    syndrome_q_rm(patch, (4, 6))
    patch_q_rm(patch, (1, 7))
    patch_q_add_layer(patch, "e")
    defect_removal(patch, [(9, 9)], compute_distances=False)
    check_code(patch.code)

    q3de_patch = rotated_surface_code(3)
    q3de_enlarge(q3de_patch, direction="e")
    asc_patch = rotated_surface_code(5)
    asc_defect_removal(asc_patch, [(5, 5)])
    return code_distance(patch.code)


def test_table1_instruction_sets(benchmark, table):
    distance = benchmark.pedantic(_exercise_all_instructions, rounds=1, iterations=1)
    for method, instructions, ops in ROWS:
        table.add(method, instructions, ops)
    table.show(header=("Method", "Extended instructions over LS", "Supported ops"))
    assert min(distance) >= 1
