"""Fig. 13(a): retry-risk vs physical-qubit trade-off lines.

Sweeps code distance for ASC-S and Surf-Deformer on one workload and
reports (physical qubits, retry risk) pairs.  Shape: both lines fall
roughly exponentially with qubit count (distance), and Surf-Deformer's
line sits strictly below ASC-S's — same risk at fewer qubits.
"""

from repro.compiler import paper_benchmark
from repro.eval import evaluate_program

DISTANCES = (17, 19, 21, 23, 25)
PROGRAM = "RCA-225-500"


def _sweep():
    prog = paper_benchmark(PROGRAM)
    lines = {"asc_s": [], "surf_deformer": []}
    for method in lines:
        for d in DISTANCES:
            r = evaluate_program(prog, method, d)
            lines[method].append((d, r.physical_qubits, r.retry_risk))
    return lines


def test_fig13a_tradeoff(benchmark, table):
    lines = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for method, points in lines.items():
        for d, qubits, risk in points:
            table.add(method, d, f"{qubits:.2e}", f"{risk:.2e}")
    table.show(header=("method", "d", "physical qubits", "retry risk"))

    asc = {d: risk for d, _, risk in lines["asc_s"]}
    ours = {d: risk for d, _, risk in lines["surf_deformer"]}
    for d in DISTANCES:
        assert ours[d] < asc[d], d
    # Both trade-off lines decrease with distance (exponential regime).
    ours_risks = [risk for _, _, risk in lines["surf_deformer"]]
    assert ours_risks == sorted(ours_risks, reverse=True)
    # Surf-Deformer reaches ASC-S's best risk with fewer qubits.
    asc_best = min(asc.values())
    cheaper = [
        qubits
        for _, qubits, risk in lines["surf_deformer"]
        if risk <= asc_best
    ]
    asc_best_qubits = max(q for _, q, r in lines["asc_s"] if r == asc_best)
    assert cheaper and min(cheaper) < asc_best_qubits
