"""Fig. 14(a): robustness to correlated (two-qubit-gate) error rates.

A distance-9 code with a defect region, under two-qubit depolarizing
rates 1e-3 / 2e-3 / 4e-3 (single-qubit fixed at 1e-3).  Shape: the
deformed (defects-removed) code stays roughly an order of magnitude
better than the untreated surface code as the correlated rate rises.
"""

from conftest import scaled
from repro.defects import CosmicRayModel
from repro.deform import defect_removal
from repro.eval import memory_experiment
from repro.sim import NoiseModel
from repro.surface import rotated_surface_code
import pytest

pytestmark = pytest.mark.slow

D = 9
NUM_DEFECTS = 8
P2_VALUES = (1e-3, 2e-3, 4e-3)


def _point(p2: float, treat: bool, shots: int, seed: int) -> float:
    noise = NoiseModel.uniform(1e-3).with_correlated(p2)
    patch = rotated_surface_code(D)
    defects = CosmicRayModel(seed=seed).sample_defective_qubits(
        patch.all_qubit_coords(), NUM_DEFECTS
    )
    if treat:
        defect_removal(patch, defects, compute_distances=False)
        result = memory_experiment(
            patch.code, "Z", noise, rounds=5, shots=shots, seed=seed
        )
    else:
        data = {q for q in defects if q in patch.code.data_qubits}
        anc = defects - data
        result = memory_experiment(
            patch.code,
            "Z",
            noise,
            rounds=5,
            shots=shots,
            seed=seed,
            defective_data=data,
            defective_ancillas=anc,
            decoder_method="greedy",
        )
    return result.per_round


def _sweep():
    shots = scaled(300, minimum=100)
    rows = []
    for p2 in P2_VALUES:
        untreated = _point(p2, treat=False, shots=shots, seed=21)
        treated = _point(p2, treat=True, shots=shots, seed=21)
        rows.append((p2, untreated, treated))
    return rows


def test_fig14a_correlated_errors(benchmark, table):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for p2, untreated, treated in rows:
        table.add(f"{p2:.0e}", f"{untreated:.2e}", f"{treated:.2e}")
    table.show(header=("p_correlated", "surface code (untreated)", "Surf-Deformer"))
    for p2, untreated, treated in rows:
        # The improvement persists across correlated error rates.
        assert untreated > 3 * treated, p2
    # Treated rates grow with the correlated rate but stay moderate.
    treated_rates = [t for _, _, t in rows]
    assert treated_rates[-1] >= treated_rates[0]
