"""Fig. 11(c): non-local-operation throughput vs defect rate.

100 logical qubits, three task sets of 5 tasks × 25 CNOTs on 50 distinct
qubits (three parallelism levels via different random draws), defect
rates 0 … 2×10⁻⁴.  Shape: Q3DE's layout loses throughput as the rate
grows; the Surf-Deformer layout stays near the defect-free line.
"""

import numpy as np

from conftest import scaled
from repro.eval import throughput_experiment
from repro.eval.throughput import make_task_set
from repro.layout import LayoutGenerator
import pytest

pytestmark = pytest.mark.slow

RATES = (0.0, 5e-5, 1e-4, 2e-4)


def _sweep():
    spec = LayoutGenerator().generate(100, 1e6, d=9)
    samples = scaled(8, minimum=4)
    curves = {"surf_deformer": [], "q3de": []}
    for rate in RATES:
        for policy in curves:
            rels = []
            for task_seed in (1, 2, 3):  # three task sets (parallelism levels)
                gates = make_task_set(100, 5, 25, qubits_used=50, seed=task_seed)
                r = throughput_experiment(
                    policy, rate, gates, spec=spec, samples=samples, seed=7
                )
                rels.append(r.relative)
            curves[policy].append(float(np.mean(rels)))
    return curves


def test_fig11c_throughput(benchmark, table):
    curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for i, rate in enumerate(RATES):
        table.add(
            f"{rate:.0e}",
            f"{curves['surf_deformer'][i]:.3f}",
            f"{curves['q3de'][i]:.3f}",
        )
    table.show(header=("defect rate", "Surf-D rel. throughput", "Q3DE rel. throughput"))

    # At zero rate both match the optimal lattice-surgery schedule.
    assert curves["surf_deformer"][0] == 1.0
    assert curves["q3de"][0] == 1.0
    # Q3DE degrades with rate; Surf-Deformer stays near optimal.
    assert curves["q3de"][-1] < 0.99
    assert curves["surf_deformer"][-1] > 0.99
    assert curves["surf_deformer"][-1] > curves["q3de"][-1]
