"""Fig. 13(b): yield rate of deforming a faulty patch to a target code.

The paper deforms an l = 35 patch with static faulty qubits to distance
≥ 27.  That geometry is directly reproducible but slow in pure Python,
so the default run uses the scaled-down equivalent (l = 13 → target 9;
same ratio l ≈ 1.3 × target, preserving the yield crossover).  Shape:
Surf-Deformer's yield exceeds ASC-S's, with ≈ 2× advantage at moderate
fault counts.
"""

import numpy as np

from conftest import scaled
from repro.eval import yield_rate
import pytest

pytestmark = pytest.mark.slow

PATCH = 13
TARGET = 9
FAULTS = (0, 2, 4, 8, 12)


def _sweep():
    samples = scaled(20, minimum=10)
    curves = {"asc_s": [], "surf_deformer": []}
    for method in curves:
        for k in FAULTS:
            curves[method].append(
                yield_rate(method, PATCH, k, TARGET, samples=samples, seed=k + 1)
            )
    return curves


def test_fig13b_yield(benchmark, table):
    curves = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for i, k in enumerate(FAULTS):
        table.add(k, f"{curves['asc_s'][i]:.2f}", f"{curves['surf_deformer'][i]:.2f}")
    table.show(header=("# faulty qubits", "ASC-S yield", "Surf-D yield"))

    assert curves["surf_deformer"][0] == 1.0
    assert curves["asc_s"][0] == 1.0
    for i in range(len(FAULTS)):
        assert curves["surf_deformer"][i] >= curves["asc_s"][i] - 0.05, FAULTS[i]
    # The advantage is material at moderate fault counts.
    mid = len(FAULTS) // 2
    gap = np.mean(
        [curves["surf_deformer"][i] - curves["asc_s"][i] for i in range(mid, len(FAULTS))]
    )
    assert gap > 0.05
