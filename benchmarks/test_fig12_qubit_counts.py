"""Fig. 12: physical qubits required for ≈ 1 % retry risk, four methods.

For each of the paper's four large workloads, find the smallest odd code
distance at which each method meets a 1 % retry risk, and report the
resulting layout's physical qubit count.  Q3DE uses its *revised*
layout (2d inter-space, "Q3DE*") as in the figure.  Shape:
LS > Q3DE* > ASC-S > Surf-Deformer.
"""

from repro.compiler import paper_benchmark
from repro.eval import evaluate_program

PROGRAMS = ("Simon-900-1500", "RCA-729-100", "QFT-100-20", "Grover-16-2")
METHODS = ("lattice_surgery", "q3de_star", "asc_s", "surf_deformer")
TARGET = 0.01


def _qubits_for_target(program_name: str, method: str) -> tuple[int, int]:
    prog = paper_benchmark(program_name)
    for d in range(9, 101, 2):
        result = evaluate_program(prog, method, d)
        if not result.over_runtime and result.retry_risk <= TARGET:
            return d, result.physical_qubits
    return -1, 0


def _sweep():
    return {
        (name, method): _qubits_for_target(name, method)
        for name in PROGRAMS
        for method in METHODS
    }


def test_fig12_qubit_counts(benchmark, table):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for name in PROGRAMS:
        cells = [name]
        for method in METHODS:
            d, qubits = results[(name, method)]
            cells.append(f"{qubits:.2e} (d={d})")
        table.add(*cells)
    table.show(header=("Benchmark", *METHODS))

    for name in PROGRAMS:
        ls = results[(name, "lattice_surgery")][1]
        q3de_star = results[(name, "q3de_star")][1]
        asc = results[(name, "asc_s")][1]
        ours = results[(name, "surf_deformer")][1]
        assert ours > 0, name
        # Paper shape: Surf-Deformer cheapest, LS most expensive.
        assert ours < asc < ls, name
        assert ours < q3de_star, name
        # Rough factors: ~75% less than LS, ~50% less than Q3DE*.
        assert ls / ours > 2.0, (name, ls / ours)
        assert q3de_star / ours > 1.5, (name, q3de_star / ours)
