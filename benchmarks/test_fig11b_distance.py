"""Fig. 11(b): code distance after defect removal, ASC-S vs Surf-Deformer.

For codes of several original sizes, sweep the number of defective
qubits and report the post-removal code distance under both removal
policies.  Shape: Surf-Deformer preserves at least as much distance as
ASC-S everywhere, with a growing gap on larger codes / more defects.
"""

import numpy as np

from conftest import scaled
from repro.baselines import asc_defect_removal
from repro.codes.distance import graph_distance
from repro.defects import CosmicRayModel
from repro.deform import defect_removal
from repro.surface import rotated_surface_code
import pytest

pytestmark = pytest.mark.slow

DISTANCES = (9, 15)
DEFECT_COUNTS = (0, 5, 10, 20, 30)


def _distance_after(method: str, d: int, num_defects: int, seed: int) -> int:
    patch = rotated_surface_code(d)
    model = CosmicRayModel(seed=seed)
    defects = model.sample_defective_qubits(patch.all_qubit_coords(), num_defects)
    try:
        if method == "surf_deformer":
            defect_removal(patch, defects, compute_distances=False)
        else:
            asc_defect_removal(patch, defects)
        return min(graph_distance(patch.code, "X"), graph_distance(patch.code, "Z"))
    except (ValueError, RuntimeError):
        return 0  # pattern destroyed the logical qubit


def _sweep():
    samples = scaled(5, minimum=3)
    results = {}
    for d in DISTANCES:
        for k in DEFECT_COUNTS:
            for method in ("asc_s", "surf_deformer"):
                vals = [
                    _distance_after(method, d, k, seed=100 * s + k)
                    for s in range(samples)
                ]
                results[(d, k, method)] = float(np.mean(vals))
    return results


def test_fig11b_distance_preservation(benchmark, table):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for d in DISTANCES:
        for k in DEFECT_COUNTS:
            asc = results[(d, k, "asc_s")]
            ours = results[(d, k, "surf_deformer")]
            table.add(d, k, f"{asc:.1f}", f"{ours:.1f}")
    table.show(header=("original d", "# defects", "ASC-S distance", "Surf-D distance"))

    total_gap = 0.0
    for d in DISTANCES:
        for k in DEFECT_COUNTS:
            asc = results[(d, k, "asc_s")]
            ours = results[(d, k, "surf_deformer")]
            # Pointwise, Surf-Deformer may lose at most a greedy-order
            # artifact; on average it must preserve more distance.
            assert ours >= asc - 1.0, (d, k)
            total_gap += ours - asc
        assert results[(d, 0, "surf_deformer")] == d
    # Surf-Deformer preserves strictly more distance overall.
    assert total_gap > 0
