"""Decoder throughput series (companion to fig. 11c's fast-decoder need).

The paper's throughput argument assumes decoding keeps up with the
syndrome stream.  This benchmark times the decode pipeline's method
series — exact blossom (matrix-backed), union-find, greedy — against
the seed's per-shot-Dijkstra blossom on one d=5 memory experiment, and
pins the ordering that makes high-shot Monte-Carlo runs viable: every
batched method must beat the legacy path by a wide margin, and the
union-find decoder must stay within an order of magnitude of the
vectorised exact matcher.
"""

import time

import pytest

from conftest import scaled
from repro.decode import MatchingDecoder
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code

# Wall-clock assertions are load-sensitive; keep them out of the fast lane.
pytestmark = pytest.mark.slow

DISTANCE = 5
ROUNDS = 15


def _throughput(decoder, detectors):
    start = time.perf_counter()
    decoder.decode_batch(detectors)
    return len(detectors) / (time.perf_counter() - start)


def test_decoder_method_throughput(benchmark, table):
    patch = rotated_surface_code(DISTANCE)
    circuit = memory_circuit(
        patch.code, "Z", ROUNDS, NoiseModel.uniform(1e-3)
    )
    dem = build_dem(circuit)
    shots = scaled(2000, minimum=400)
    detectors, _ = sample_detectors(circuit, shots, seed=7)
    legacy_shots = max(50, shots // 10)

    decoders = {
        "blossom": MatchingDecoder(dem),
        "uf": MatchingDecoder(dem, method="uf"),
        "greedy": MatchingDecoder(dem, method="greedy"),
        "blossom_legacy": MatchingDecoder(dem, use_matrices=False, cache_size=0),
    }
    decoders["blossom"].graph.ensure_matrices()

    def run():
        rates = {}
        for name, dec in decoders.items():
            n = legacy_shots if name == "blossom_legacy" else shots
            rates[name] = _throughput(dec, detectors[:n])
        return rates

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, rate in sorted(rates.items(), key=lambda kv: -kv[1]):
        table.add(name, f"{rate:,.0f} shots/s", f"{rate / rates['blossom_legacy']:.1f}x")
    table.show(header=("method", "throughput", "vs legacy"))

    assert rates["blossom"] > 2 * rates["blossom_legacy"]
    assert rates["uf"] > 2 * rates["blossom_legacy"]
    assert rates["greedy"] > 2 * rates["blossom_legacy"]
    # Since the vectorised batch pipeline (PR 4), exact matching is the
    # fastest accurate method at d ≤ 7, and the word-packed dedup plus
    # batched kernel calls widened the gap further — union-find still
    # decodes its unique syndromes one by one, so it only needs to stay
    # within ~30x to remain a useful accuracy baseline.
    assert rates["uf"] > rates["blossom"] / 30
