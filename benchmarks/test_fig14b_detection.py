"""Fig. 14(b): robustness to imprecise defect detection.

A distance-9 code with defect regions handled through a detector with
1 % false-positive / false-negative rates (the paper's "unprecise"
setting).  Missed defects stay in the code injecting defect noise while
the decoder stays unaware.  Shape: the imprecise curve stays close to
the precise one, and both are far below no-treatment.
"""

from conftest import scaled
from repro.defects import CosmicRayModel, DefectDetector
from repro.deform import defect_removal
from repro.eval import memory_experiment
from repro.sim import NoiseModel
from repro.surface import rotated_surface_code
import pytest

pytestmark = pytest.mark.slow

D = 9
DEFECT_COUNTS = (4, 8)


def _point(num_defects: int, mode: str, shots: int, seed: int) -> float:
    noise = NoiseModel.uniform(1e-3)
    patch = rotated_surface_code(D)
    defects = CosmicRayModel(seed=seed).sample_defective_qubits(
        patch.all_qubit_coords(), num_defects
    )
    if mode == "none":
        data = {q for q in defects if q in patch.code.data_qubits}
        return memory_experiment(
            patch.code, "Z", noise, rounds=5, shots=shots, seed=seed,
            defective_data=data, defective_ancillas=defects - data,
            decoder_method="greedy",
        ).per_round
    if mode == "precise":
        reported, missed = defects, set()
    else:  # imprecise: 1% FP / FN as in the paper
        detector = DefectDetector(false_negative=0.01, false_positive=0.01, seed=seed)
        healthy = patch.all_qubit_coords() - defects
        reported, missed = detector.report(defects, healthy)
    defect_removal(patch, reported, compute_distances=False)
    missed_data = {q for q in missed if q in patch.code.data_qubits}
    missed_anc = {q for q in missed if q not in missed_data
                  and patch.check_at(q) is not None}
    return memory_experiment(
        patch.code, "Z", noise, rounds=5, shots=shots, seed=seed,
        defective_data=missed_data, defective_ancillas=missed_anc,
    ).per_round


def _sweep():
    shots = scaled(300, minimum=100)
    rows = []
    for k in DEFECT_COUNTS:
        rows.append(
            (
                k,
                _point(k, "none", shots, seed=k + 31),
                _point(k, "precise", shots, seed=k + 31),
                _point(k, "imprecise", shots, seed=k + 31),
            )
        )
    return rows


def test_fig14b_unreliable_detection(benchmark, table):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    for k, none, precise, imprecise in rows:
        table.add(k, f"{none:.2e}", f"{precise:.2e}", f"{imprecise:.2e}")
    table.show(
        header=("# defects", "no treatment", "precise Surf-D", "imprecise Surf-D")
    )
    for k, none, precise, imprecise in rows:
        # Imprecise detection stays close to precise (within ~3x), both
        # far below no treatment.
        assert none > 3 * max(precise, imprecise), k
        assert imprecise <= max(10 * precise, 0.02), k
