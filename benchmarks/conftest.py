"""Shared helpers for the table/figure regeneration benchmarks.

Each benchmark prints the same rows/series the paper reports.  Absolute
numbers come from this repository's own simulator and analytic models,
so they differ from the authors' testbed; the *shape* assertions (who
wins, by what rough factor, where crossovers fall) are what each
benchmark checks.

Monte-Carlo sample counts are deliberately laptop-sized; set
``REPRO_BENCH_SCALE`` (default 1.0) to scale shots/samples up.
"""

import pytest

from repro.utils.env import env_float


def bench_scale() -> float:
    return env_float("REPRO_BENCH_SCALE", 1.0)


def scaled(n: int, minimum: int = 10) -> int:
    return max(minimum, int(n * bench_scale()))


@pytest.fixture
def table():
    """Collect and pretty-print rows at the end of a benchmark."""

    class Table:
        def __init__(self):
            self.rows = []

        def add(self, *cells):
            self.rows.append(cells)

        def show(self, header=()):
            print()
            if header:
                print(" | ".join(str(h) for h in header))
                print("-" * (3 * len(header) + sum(len(str(h)) for h in header)))
            for row in self.rows:
                print(" | ".join(str(c) for c in row))

    return Table()
