"""Logical-qubit grid and communication-channel graph.

Logical patches sit on an ``rows × cols`` grid; the inter-space between
them forms a lattice of routing channels used by lattice-surgery ancilla
paths.  The channel graph's vertices are the junction points at cell
corners and its edges the channel segments along each cell border; a
long-range CNOT occupies a junction-to-junction path for one surgery
window (≈ d QEC rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.layout.generator import LayoutSpec

__all__ = ["LogicalLayout"]


@dataclass
class LogicalLayout:
    """A placed layout with its routing-channel graph.

    ``blocked_cells`` marks logical patches whose enlargement currently
    spills into the surrounding channel (the Q3DE failure mode); all
    channel segments bordering a blocked cell become unusable.
    """

    spec: LayoutSpec
    blocked_cells: set[tuple[int, int]] = field(default_factory=set)

    def cell_of(self, logical_index: int) -> tuple[int, int]:
        """Grid cell of logical qubit ``logical_index`` (row-major)."""
        if not 0 <= logical_index < self.spec.rows * self.spec.cols:
            raise ValueError(f"logical index {logical_index} out of range")
        return divmod(logical_index, self.spec.cols)[0], logical_index % self.spec.cols

    def junctions_of(self, cell: tuple[int, int]) -> list[tuple[int, int]]:
        """The four junction vertices at the corners of ``cell``."""
        r, c = cell
        return [(r, c), (r, c + 1), (r + 1, c), (r + 1, c + 1)]

    def channel_graph(self) -> nx.Graph:
        """Junction graph with segments bordering blocked cells removed."""
        rows, cols = self.spec.rows, self.spec.cols
        graph = nx.Graph()
        for r in range(rows + 1):
            for c in range(cols + 1):
                graph.add_node((r, c))
        for r in range(rows + 1):
            for c in range(cols + 1):
                if c + 1 <= cols:
                    cells = [(r - 1, c), (r, c)]  # cells above/below segment
                    if not any(cell in self.blocked_cells for cell in cells):
                        graph.add_edge((r, c), (r, c + 1))
                if r + 1 <= rows:
                    cells = [(r, c - 1), (r, c)]  # cells left/right of segment
                    if not any(cell in self.blocked_cells for cell in cells):
                        graph.add_edge((r, c), (r + 1, c))
        return graph

    def physical_qubits(self) -> int:
        return self.spec.physical_qubits()
