"""Ancilla-path routing for long-range logical CNOTs (fig. 10 / 11c).

A lattice-surgery CNOT between two distant logical qubits merges both
with an ancilla patch stretched along a channel path (fig. 4b).  Within
one surgery window, concurrently executing CNOTs need *edge-disjoint*
channel paths.  The router schedules a task list greedily: each
timestep, route as many pending gates as possible through the channels
that remain after blocked cells and already-claimed segments are
removed; unroutable gates wait (Q3DE's "program pause" failure mode when
enlargement blocks every path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.layout.grid import LogicalLayout

__all__ = ["Router", "RoutingResult"]


@dataclass
class RoutingResult:
    """Outcome of scheduling a task set."""

    timesteps: int
    completed: int
    stalled: int
    schedule: list[list[tuple[int, int]]] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Average gates completed per timestep."""
        if self.timesteps == 0:
            return 0.0
        return self.completed / self.timesteps


class Router:
    """Greedy edge-disjoint path scheduler over a layout's channels."""

    def __init__(self, layout: LogicalLayout) -> None:
        self.layout = layout

    def route_one(
        self, graph: nx.Graph, control: int, target: int
    ) -> list | None:
        """A shortest channel path between two logical qubits, or None."""
        src_cell = self.layout.cell_of(control)
        dst_cell = self.layout.cell_of(target)
        best = None
        for s in self.layout.junctions_of(src_cell):
            for t in self.layout.junctions_of(dst_cell):
                if s not in graph or t not in graph:
                    continue
                if s == t:
                    return [s]
                try:
                    path = nx.shortest_path(graph, s, t)
                except nx.NetworkXNoPath:
                    continue
                if best is None or len(path) < len(best):
                    best = path
        return best

    def schedule(
        self,
        gates: list[tuple[int, int]],
        *,
        max_timesteps: int = 10_000,
    ) -> RoutingResult:
        """Schedule CNOT ``gates`` (control, target) to completion.

        Gates on the same logical qubit serialise naturally because each
        qubit's junctions funnel through shared segments.  Returns the
        full schedule; ``stalled`` counts gates that could never route
        (all paths permanently blocked).
        """
        pending = list(gates)
        schedule: list[list[tuple[int, int]]] = []
        completed = 0
        base_graph = self.layout.channel_graph()

        for _ in range(max_timesteps):
            if not pending:
                break
            graph = base_graph.copy()
            fired: list[tuple[int, int]] = []
            busy: set[int] = set()
            still_pending: list[tuple[int, int]] = []
            progressed = False
            for control, target in pending:
                if control in busy or target in busy:
                    still_pending.append((control, target))
                    continue
                path = self.route_one(graph, control, target)
                if path is None:
                    still_pending.append((control, target))
                    continue
                for u, v in zip(path, path[1:], strict=False):
                    graph.remove_edge(u, v)
                for node in path:
                    if node in graph and graph.degree(node) == 0:
                        graph.remove_node(node)
                busy.add(control)
                busy.add(target)
                fired.append((control, target))
                progressed = True
            schedule.append(fired)
            completed += len(fired)
            pending = still_pending
            if not progressed:
                # Nothing routable: permanently stalled gates remain.
                break
        return RoutingResult(
            timesteps=len(schedule),
            completed=completed,
            stalled=len(pending),
            schedule=schedule,
        )
