"""The compile-time Layout Generator (section VI).

Given a quantum program's logical-qubit count, a target failure rate and
the dynamic defect error model, produces the three layout parameters:

1. **N** — logical qubits, including magic-state ancillas,
2. **d** — code distance meeting the program's retry-risk budget,
3. **Δd** — the extra inter-space accommodating adaptive enlargement,
   chosen as the smallest value whose channel-blocking probability
   (equation 1's truncated-Poisson tail) is below ``alpha_block``.

The paper's worked example — d = 27, ρ = 0.1 Hz/26, T = 25 ms, D = 4 —
gives λ ≈ 0.14 and Δd = 4 with ``p_block ≈ 0.0089 < 0.01``; the unit
tests pin that case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.defects import CosmicRayModel
from repro.eval.lambda_model import LambdaModel

__all__ = ["block_probability", "LayoutSpec", "LayoutGenerator"]


def block_probability(
    d: int,
    delta_d: int,
    *,
    event_rate_hz_per_qubit: float,
    duration_s: float,
    defect_size: int,
) -> float:
    """Equation (1): probability the communication channel gets blocked.

    Defect events on a ~2d² physical-qubit patch over a window ``T``
    follow Poisson(λ = 2 d² ρ T); an inter-space Δd absorbs
    ``⌊Δd / D⌋`` defects' worth of enlargement, so the channel blocks
    when more events land than that.
    """
    lam = 2.0 * d * d * event_rate_hz_per_qubit * duration_s
    absorbed = delta_d // defect_size
    tail = 1.0
    term = math.exp(-lam)
    for k in range(absorbed + 1):
        tail -= term
        term *= lam / (k + 1)
    return max(0.0, tail)


@dataclass(frozen=True)
class LayoutSpec:
    """Output of the layout generator."""

    num_logical: int
    d: int
    delta_d: int
    inter_space: int
    p_block: float
    rows: int
    cols: int

    @property
    def cell_span(self) -> int:
        """Data-qubit columns consumed per logical cell (patch + channel)."""
        return self.d + self.inter_space

    def physical_qubits(self) -> int:
        """Total physical qubits (data + measure) of the layout.

        Each lattice site of the tiled plane carries one data and
        (asymptotically) one measure qubit — the standard 2× accounting
        used by the paper's qubit-count comparisons.
        """
        span = self.cell_span
        width = self.cols * span
        height = self.rows * span
        return 2 * width * height


class LayoutGenerator:
    """Compile-time component producing a :class:`LayoutSpec`.

    Args:
        lambda_model: calibrated logical-error-rate scaling model.
        defect_model: the dynamic defect error model.
        alpha_block: channel-block probability budget (paper: 0.01).
        defect_size: maximal defect diameter D in data-qubit units
            (paper: ≈ 4).
    """

    def __init__(
        self,
        lambda_model: LambdaModel | None = None,
        defect_model: CosmicRayModel | None = None,
        *,
        alpha_block: float = 0.01,
        defect_size: int = 4,
        max_delta_d: int = 16,
    ) -> None:
        self.lambda_model = lambda_model or LambdaModel()
        self.defect_model = defect_model or CosmicRayModel()
        self.alpha_block = alpha_block
        self.defect_size = defect_size
        self.max_delta_d = max_delta_d

    def choose_distance(
        self, num_logical: int, total_cycles: float, target_risk: float
    ) -> int:
        """Smallest odd d keeping the whole program under ``target_risk``."""
        volume = max(1.0, num_logical * total_cycles)
        per_round_budget = -math.log1p(-min(target_risk, 0.999)) / volume
        return self.lambda_model.distance_for(per_round_budget)

    def choose_delta_d(self, d: int) -> tuple[int, float]:
        """Smallest Δd with equation-1 block probability below budget."""
        for delta in range(0, self.max_delta_d + 1, self.defect_size):
            p = block_probability(
                d,
                delta,
                event_rate_hz_per_qubit=self.defect_model.event_rate_hz_per_qubit,
                duration_s=self.defect_model.duration_s,
                defect_size=self.defect_size,
            )
            if p < self.alpha_block:
                return delta, p
        p = block_probability(
            d,
            self.max_delta_d,
            event_rate_hz_per_qubit=self.defect_model.event_rate_hz_per_qubit,
            duration_s=self.defect_model.duration_s,
            defect_size=self.defect_size,
        )
        return self.max_delta_d, p

    def generate(
        self,
        num_logical: int,
        total_cycles: float,
        *,
        target_risk: float = 1e-3,
        d: int | None = None,
        inter_space: int | None = None,
    ) -> LayoutSpec:
        """Produce the layout for a program.

        ``d`` and ``inter_space`` may be forced (the baselines do: plain
        lattice surgery and Q3DE use ``inter_space = d``; revised Q3DE*
        uses ``2d``); by default ``inter_space = d + Δd``.
        """
        if d is None:
            d = self.choose_distance(num_logical, total_cycles, target_risk)
        delta_d, p_block = self.choose_delta_d(d)
        if inter_space is None:
            inter_space = d + delta_d
        cols = max(1, math.ceil(math.sqrt(num_logical)))
        rows = max(1, math.ceil(num_logical / cols))
        return LayoutSpec(
            num_logical=num_logical,
            d=d,
            delta_d=delta_d,
            inter_space=inter_space,
            p_block=p_block,
            rows=rows,
            cols=cols,
        )
