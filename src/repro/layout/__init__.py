"""Adaptive surface-code layout (section VI)."""

from repro.layout.generator import LayoutGenerator, LayoutSpec, block_probability
from repro.layout.grid import LogicalLayout
from repro.layout.routing import Router, RoutingResult

__all__ = [
    "LayoutGenerator",
    "LayoutSpec",
    "block_probability",
    "LogicalLayout",
    "Router",
    "RoutingResult",
]
