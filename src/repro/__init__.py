"""Surf-Deformer: adaptive code deformation for dynamic surface-code defects.

A from-scratch reproduction of *Surf-Deformer: Mitigating Dynamic Defects
on Surface Code via Adaptive Deformation* (MICRO 2024), including its
substrates: a stabilizer-circuit simulator (Pauli-frame sampling), an
MWPM decoder, the subsystem-code formalism, lattice surgery, and the
evaluation harnesses that regenerate every table and figure.

Quick start::

    from repro import rotated_surface_code, CodeDeformationUnit, code_distance

    patch = rotated_surface_code(5)
    unit = CodeDeformationUnit()
    report = unit.deform(patch, defects={(5, 5), (4, 6)})
    print(report.instructions, report.final_distance)
"""

from repro.codes import (
    Check,
    StabilizerGenerator,
    SubsystemCode,
    brute_force_distance,
    check_code,
    code_distance,
    graph_distance,
)
from repro.core import SurfDeformer
from repro.defects import CosmicRayModel, DefectDetector
from repro.deform import (
    CodeDeformationUnit,
    DeformationReport,
    adaptive_enlargement,
    data_q_rm,
    defect_removal,
    patch_q_add_layer,
    patch_q_rm,
    syndrome_q_rm,
)
from repro.layout import LayoutGenerator, LogicalLayout, Router
from repro.pauli import PauliOp
from repro.serve import (
    DecodeService,
    ServiceStats,
    SlidingWindowDecoder,
    StreamSession,
    WindowConfig,
)
from repro.sim import NoiseModel
from repro.surface import SurfacePatch, rotated_rect_patch, rotated_surface_code

__version__ = "1.0.0"

__all__ = [
    "Check",
    "StabilizerGenerator",
    "SubsystemCode",
    "brute_force_distance",
    "check_code",
    "code_distance",
    "graph_distance",
    "SurfDeformer",
    "CosmicRayModel",
    "DefectDetector",
    "CodeDeformationUnit",
    "DeformationReport",
    "adaptive_enlargement",
    "data_q_rm",
    "defect_removal",
    "patch_q_add_layer",
    "patch_q_rm",
    "syndrome_q_rm",
    "LayoutGenerator",
    "LogicalLayout",
    "Router",
    "PauliOp",
    "DecodeService",
    "StreamSession",
    "ServiceStats",
    "SlidingWindowDecoder",
    "WindowConfig",
    "NoiseModel",
    "SurfacePatch",
    "rotated_rect_patch",
    "rotated_surface_code",
    "__version__",
]
