"""Retry risk — the paper's end-to-end failure metric (section VII-A).

The retry risk is the probability that at least one uncorrectable logical
error occurs anywhere in the program's spacetime volume, forcing a rerun.
Given a per-round, per-logical-qubit logical error rate timeline (which
the end-to-end harness derives from each patch's effective distance under
the sampled defect events), the risk composes as

    risk = 1 − Π_{q, t} (1 − p_L(q, t)).
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["retry_risk", "compose_risk"]


def compose_risk(probabilities: Iterable[float]) -> float:
    """``1 − Π (1 − p_i)`` computed stably in log space."""
    log_ok = 0.0
    for p in probabilities:
        p = min(max(p, 0.0), 1.0)
        if p >= 1.0:
            return 1.0
        log_ok += math.log1p(-p)
    return 1.0 - math.exp(log_ok)


def retry_risk(
    per_round_rates: Iterable[float],
    cycles: float,
) -> float:
    """Risk of failure when each listed rate acts for ``cycles`` rounds.

    ``per_round_rates`` holds one per-round logical error rate per logical
    qubit (or per segment); a constant-rate program of ``n`` qubits
    running ``T`` cycles is ``retry_risk([p] * n, T)``.
    """
    return compose_risk(
        1.0 - (1.0 - min(p, 0.5)) ** cycles for p in per_round_rates
    )
