"""Yield-rate experiment (fig. 13b).

Deform an ``l × l`` patch containing ``k`` random static faulty qubits
down to the largest clean code it supports; the sample *yields* when the
resulting code distance is at least the target (the paper uses l = 35 →
target 27).  Comparing Surf-Deformer's adaptive removal with ASC-S's
uniform super-stabilizers reproduces the ≈ 2× yield gap at 20 faults.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.asc import asc_defect_removal
from repro.codes.distance import graph_distance
from repro.deform.removal import defect_removal
from repro.surface.patch import rotated_surface_code

__all__ = ["yield_rate"]


def yield_rate(
    method: str,
    patch_size: int,
    num_faults: int,
    target_distance: int,
    *,
    samples: int = 50,
    seed: int | None = None,
    include_ancillas: bool = True,
) -> float:
    """Fraction of fault samples yielding distance ≥ ``target_distance``.

    ``method`` is ``"surf_deformer"`` (Algorithm 1) or ``"asc_s"``.
    Faulty qubits are drawn uniformly over the patch's physical qubits
    (data and, optionally, ancillas).
    """
    if method not in ("surf_deformer", "asc_s"):
        raise ValueError("method must be 'surf_deformer' or 'asc_s'")
    rng = np.random.default_rng(seed)
    template = rotated_surface_code(patch_size)
    sites = sorted(template.all_qubit_coords()) if include_ancillas else sorted(
        template.code.data_qubits
    )

    successes = 0
    for _ in range(samples):
        picks = rng.choice(len(sites), size=min(num_faults, len(sites)), replace=False)
        faults = {sites[i] for i in picks}
        patch = rotated_surface_code(patch_size)
        try:
            if method == "surf_deformer":
                defect_removal(patch, faults, compute_distances=False)
            else:
                asc_defect_removal(patch, faults)
            dx = graph_distance(patch.code, "X")
            dz = graph_distance(patch.code, "Z")
        except (ValueError, RuntimeError):
            continue  # fault pattern broke the patch: no yield
        if min(dx, dz) >= target_distance:
            successes += 1
    return successes / samples
