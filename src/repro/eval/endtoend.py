"""End-to-end program evaluation (Table II, figs. 12 and 13a).

Combines the compiled program's schedule, the layout, the dynamic defect
statistics and the per-method defect response into the paper's two
headline outputs per (program, method, d):

* **physical qubit count** of the laid-out machine, and
* **retry risk** — the probability at least one logical error corrupts
  the run — or the ``OverRuntime`` status when blocked channels stall
  the program beyond the runtime budget (Q3DE's failure mode).

Risk model: the base risk integrates the Λ-model rate at design
distance over the whole spacetime volume; each defect event adds a
window of ``duration_cycles`` at the method's degraded effective
distance.  Surf-Deformer additionally pays its equation-1 budget
overflow: with probability ``p_block`` an event exceeds the Δd
inter-space and degrades like removal-only until it heals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.baselines.methods import METHODS, MethodModel
from repro.compiler import Program
from repro.defects import CosmicRayModel
from repro.defects.models import CYCLE_TIME_S
from repro.eval.lambda_model import LambdaModel, calibrate_lambda_model
from repro.layout.generator import LayoutGenerator
from repro.surgery import estimate_schedule

__all__ = ["EndToEndResult", "evaluate_program"]


@dataclass(frozen=True)
class EndToEndResult:
    """One row cell of Table II."""

    program: str
    method: str
    d: int
    delta_d: int
    physical_qubits: int
    total_cycles: float
    retry_risk: float
    over_runtime: bool
    expected_events: float
    blocked_path_fraction: float

    @property
    def status(self) -> str:
        if self.over_runtime:
            return "OverRuntime"
        return f"{100 * self.retry_risk:.2f}%"


def _window_risk(rate_per_round: float, cycles: float) -> float:
    """Failure probability of one degraded window."""
    p = min(rate_per_round, 0.5)
    if p <= 0:
        return 0.0
    return 1.0 - (1.0 - p) ** cycles


def evaluate_program(
    program: Program,
    method: str | MethodModel,
    d: int,
    *,
    lambda_model: LambdaModel | str | None = None,
    calibration: dict | None = None,
    defect_model: CosmicRayModel | None = None,
    layout_generator: LayoutGenerator | None = None,
    runtime_budget_factor: float = 2.0,
    mean_path_cells: float = 3.0,
) -> EndToEndResult:
    """Evaluate one (program, method, distance) cell.

    ``runtime_budget_factor`` is the slowdown beyond which the run is
    declared OverRuntime (blocked channels force re-routing / waiting,
    stretching the schedule; past this factor the defect-event rate per
    run compounds faster than progress).  ``mean_path_cells`` is the
    average number of patches a long-range CNOT's ancilla path borders.

    ``lambda_model`` takes a ready :class:`LambdaModel`, ``None`` for
    the repository's committed constants, or the string
    ``"calibrated"`` to re-measure Λ on the spot with
    :func:`~repro.eval.lambda_model.calibrate_lambda_model` — a direct
    Monte-Carlo run through the streamed batch-decoding pipeline;
    ``calibration`` forwards keyword arguments (``shots``,
    ``distances``, ``chunk_shots``, ...) to it.
    """
    model = METHODS[method] if isinstance(method, str) else method
    if isinstance(lambda_model, str):
        if lambda_model != "calibrated":
            raise ValueError(
                "lambda_model must be a LambdaModel, None, or 'calibrated'"
            )
        lam = calibrate_lambda_model(**(calibration or {}))
    else:
        if calibration is not None:
            raise ValueError("calibration only applies with 'calibrated'")
        lam = lambda_model or LambdaModel()
    defects = defect_model or CosmicRayModel()
    gen = layout_generator or LayoutGenerator(lam, defects)

    delta_d, p_block = gen.choose_delta_d(d)
    spacing = model.spacing(d, delta_d)
    spec = gen.generate(
        program.num_qubits, 1.0, d=d, inter_space=spacing
    )
    schedule = estimate_schedule(
        cx_count=program.cx_count,
        t_count=program.t_count,
        num_logical=program.num_qubits,
        d=d,
    )
    cycles = schedule.total_cycles

    # --- defect-event statistics -------------------------------------
    patch_qubits = 2 * d * d
    events_per_patch = (
        defects.event_rate_hz_per_qubit * patch_qubits * cycles * CYCLE_TIME_S
    )
    total_events = events_per_patch * program.num_qubits
    event_cycles = min(defects.duration_cycles, cycles)

    # --- channel blocking / OverRuntime ------------------------------
    if model.blocks_channels:
        enlarged_fraction = min(
            1.0, events_per_patch * event_cycles / max(cycles, 1.0)
        )
        p_path_blocked = 1.0 - (1.0 - min(1.0, 4 * enlarged_fraction)) ** mean_path_cells
    else:
        p_path_blocked = 0.0
    slowdown = 1.0 / max(1e-9, 1.0 - p_path_blocked)
    over_runtime = slowdown > runtime_budget_factor

    # --- retry risk ----------------------------------------------------
    base_rate = lam.per_round(d)
    log_ok = program.num_qubits * cycles * math.log1p(-min(base_rate, 0.5))

    if model.name == "surf_deformer":
        restored_risk = _window_risk(lam.per_round(d), event_cycles)
        # Equation-1 budget overflow: enlargement absorbed Δd's worth of
        # loss but the excess (~one defect span beyond budget) remains
        # until the event heals.
        overflow_risk = _window_risk(lam.per_round(d - 2), event_cycles)
        per_event = (1 - p_block) * restored_risk + p_block * overflow_risk
        # One cycle at removal-only distance while the deformation lands.
        removal_d = METHODS["asc_s"].effective_distance(d)
        per_event += _window_risk(lam.per_round(removal_d), 1.0)
    else:
        d_eff = model.effective_distance(d)
        per_event = _window_risk(lam.per_round(d_eff), event_cycles)

    if per_event >= 1.0:
        log_ok = -math.inf
    else:
        log_ok += total_events * math.log1p(-per_event)
    risk = 1.0 - math.exp(log_ok) if log_ok > -700 else 1.0

    return EndToEndResult(
        program=program.name,
        method=model.name,
        d=d,
        delta_d=delta_d if model.inter_space == "d+delta" else 0,
        physical_qubits=spec.physical_qubits(),
        total_cycles=cycles,
        retry_risk=risk,
        over_runtime=over_runtime,
        expected_events=total_events,
        blocked_path_fraction=p_path_blocked,
    )
