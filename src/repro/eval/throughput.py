"""Throughput experiments: routing (fig. 11c) and the decode pipeline.

:func:`throughput_experiment` replicates the paper's layout experiment:
100 logical qubits, task sets of 5 tasks × 25 CNOTs over 50 distinct
logical qubits, sampled defect events.  For each sampled defect
configuration:

* the **Q3DE layout** (d inter-space) doubles every struck patch, whose
  enlargement blocks the surrounding channel segments;
* the **Surf-Deformer layout** (d + Δd inter-space) only blocks a patch
  with the tiny equation-1 overflow probability;
* the defect-free lattice-surgery schedule provides the optimal-runtime
  reference.

Throughput is gates completed per surgery timestep, averaged over defect
samples.

:func:`decoding_throughput` measures the other throughput the paper's
argument leans on — that classical decoding keeps up with the syndrome
stream.  It drives the unified batch pipeline end to end
(packed sampling → ``decode_batch`` → packed observable parities) in
bounded-memory chunks and reports sample and decode shots/sec for one
memory-experiment configuration.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.layout.generator import LayoutSpec
from repro.layout.grid import LogicalLayout
from repro.layout.routing import Router

if TYPE_CHECKING:
    from repro.codes.subsystem import SubsystemCode
    from repro.sim import NoiseModel

__all__ = [
    "ThroughputResult",
    "throughput_experiment",
    "make_task_set",
    "DecodeThroughputResult",
    "decoding_throughput",
]


@dataclass(frozen=True)
class ThroughputResult:
    """Average throughput of one (layout policy, defect rate) point."""

    policy: str
    defect_rate: float
    throughput: float
    baseline_throughput: float
    stall_fraction: float

    @property
    def relative(self) -> float:
        if self.baseline_throughput == 0:
            return 0.0
        return self.throughput / self.baseline_throughput


def make_task_set(
    num_qubits: int,
    num_tasks: int,
    gates_per_task: int,
    *,
    qubits_used: int | None = None,
    seed: int | None = None,
) -> list[tuple[int, int]]:
    """Random CNOT workload à la fig. 11(c) (tasks on distinct qubits).

    ``qubits_used`` defaults to ``num_qubits``; an explicit value must
    be positive (and at most ``num_qubits``) — the old ``or`` default
    silently turned ``qubits_used=0`` into "use all qubits".
    """
    rng = np.random.default_rng(seed)
    if qubits_used is None:
        qubits_used = num_qubits
    if qubits_used <= 0:
        raise ValueError(f"qubits_used must be positive, got {qubits_used}")
    if qubits_used > num_qubits:
        raise ValueError(
            f"qubits_used ({qubits_used}) exceeds num_qubits ({num_qubits})"
        )
    pool = rng.permutation(num_qubits)[:qubits_used]
    gates = []
    for _ in range(num_tasks):
        for _ in range(gates_per_task):
            a, b = rng.choice(pool, size=2, replace=False)
            gates.append((int(a), int(b)))
    return gates


def throughput_experiment(
    policy: str,
    defect_rate: float,
    gates: list[tuple[int, int]],
    *,
    spec: LayoutSpec,
    samples: int = 20,
    seed: int | None = None,
    defect_size: int = 4,
    event_duration_s: float = 25e-3,
) -> ThroughputResult:
    """Average throughput under sampled defect strikes.

    ``defect_rate`` is the instantaneous per-physical-qubit defect
    probability (the x-axis of fig. 11c); defect counts per patch are
    Poisson with λ = 2 d² × rate.  Policy semantics:

    * ``"q3de"`` — any struck patch doubles and blocks its channels;
    * ``"surf_deformer"`` — a patch blocks only on equation-1 overflow
      (more simultaneous defects than the Δd inter-space absorbs);
    * ``"lattice_surgery"`` — no defects considered (optimal reference).
    """
    rng = np.random.default_rng(seed)
    lam = 2.0 * spec.d * spec.d * defect_rate
    p_struck = 1.0 - math.exp(-lam)
    if policy == "surf_deformer":
        # Poisson tail beyond the Δd budget (equation 1).
        absorbed = spec.delta_d // defect_size
        tail = 1.0
        term = math.exp(-lam)
        for k in range(absorbed + 1):
            tail -= term
            term *= lam / (k + 1)
        p_blocked = max(0.0, tail)
    elif policy == "q3de":
        p_blocked = p_struck
    elif policy == "lattice_surgery":
        p_blocked = 0.0
    else:
        raise ValueError(f"unknown policy {policy!r}")

    baseline = Router(LogicalLayout(spec=spec)).schedule(list(gates))
    throughputs = []
    stalls = []
    for _ in range(samples):
        blocked = {
            (r, c)
            for r in range(spec.rows)
            for c in range(spec.cols)
            if rng.random() < p_blocked
        }
        layout = LogicalLayout(spec=spec, blocked_cells=blocked)
        result = Router(layout).schedule(list(gates))
        throughputs.append(result.throughput)
        stalls.append(result.stalled / max(1, len(gates)))
    return ThroughputResult(
        policy=policy,
        defect_rate=defect_rate,
        throughput=float(np.mean(throughputs)),
        baseline_throughput=baseline.throughput,
        stall_fraction=float(np.mean(stalls)),
    )


@dataclass(frozen=True)
class DecodeThroughputResult:
    """Sampler/decoder rates of one streamed memory experiment."""

    method: str
    rounds: int
    shots: int
    errors: int
    sample_seconds: float
    decode_seconds: float

    @property
    def sample_shots_per_sec(self) -> float:
        if self.sample_seconds <= 0:
            return float("inf")
        return self.shots / self.sample_seconds

    @property
    def decode_shots_per_sec(self) -> float:
        if self.decode_seconds <= 0:
            return float("inf")
        return self.shots / self.decode_seconds

    @property
    def logical_error_rate(self) -> float:
        return self.errors / self.shots if self.shots else 0.0


def decoding_throughput(
    code: SubsystemCode,
    noise: NoiseModel,
    *,
    basis: str = "Z",
    rounds: int | None = None,
    shots: int = 10_000,
    chunk_shots: int | None = 65_536,
    seed: int | None = None,
    decoder_method: str = "blossom",
    workers: int | None = None,
    decoder_workers: int | None = None,
) -> DecodeThroughputResult:
    """Time the packed sample→decode pipeline on one memory experiment.

    Streams ``shots`` through the unified batch API in ``chunk_shots``
    chunks (bounded memory at any shot count), accumulating wall-clock
    time per stage.  Decoder construction (DEM + all-pairs matrices)
    happens before timing starts and is memoised across calls via the
    Monte-Carlo decoder cache, so the figures reflect steady-state
    throughput, not setup.  ``workers=`` is the canonical worker-count
    spelling; ``decoder_workers=`` is a deprecated alias.
    """
    from repro.eval.montecarlo import (
        _cached_decoder,
        _chunk_plan,
        resolve_workers,
    )
    from repro.sim import memory_circuit, sample_detectors

    workers = resolve_workers(workers, decoder_workers)
    if rounds is None:
        rounds = max(3, min(code.n, 25))
    circuit = memory_circuit(code, basis, rounds, noise)
    decoder = _cached_decoder(
        code, basis, rounds, noise, None, None, decoder_method,
        circuit=circuit,
    )
    if decoder.use_matrices:
        decoder.graph.ensure_matrices()
    sample_detectors(circuit, 64, seed=seed)  # warm the compile cache
    errors = 0
    sample_seconds = 0.0
    decode_seconds = 0.0
    for chunk_seed, chunk in _chunk_plan(shots, chunk_shots, seed):
        t0 = time.perf_counter()
        detectors, observables = sample_detectors(
            circuit, chunk, seed=chunk_seed, output="packed"
        )
        t1 = time.perf_counter()
        predictions = decoder.decode_batch(detectors, workers=workers)
        decode_seconds += time.perf_counter() - t1
        sample_seconds += t1 - t0
        errors += int((predictions != observables.column_parity()).sum())
    return DecodeThroughputResult(
        method=decoder_method,
        rounds=rounds,
        shots=shots,
        errors=errors,
        sample_seconds=sample_seconds,
        decode_seconds=decode_seconds,
    )
