"""Evaluation harnesses: Monte-Carlo LER, retry risk, throughput, yield."""

from repro.eval.montecarlo import (
    MemoryResult,
    logical_error_rate,
    memory_experiment,
)
from repro.eval.lambda_model import LambdaModel, calibrate_lambda_model
from repro.eval.retry import retry_risk
from repro.eval.yieldrate import yield_rate
from repro.eval.throughput import (
    DecodeThroughputResult,
    ThroughputResult,
    decoding_throughput,
    throughput_experiment,
)
from repro.eval.endtoend import EndToEndResult, evaluate_program

__all__ = [
    "MemoryResult",
    "logical_error_rate",
    "memory_experiment",
    "LambdaModel",
    "calibrate_lambda_model",
    "retry_risk",
    "yield_rate",
    "ThroughputResult",
    "throughput_experiment",
    "DecodeThroughputResult",
    "decoding_throughput",
    "EndToEndResult",
    "evaluate_program",
]
