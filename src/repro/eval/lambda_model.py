"""The Λ-scaling model for extrapolating logical error rates to large d.

Below threshold the surface-code logical error rate follows

    p_L(d) ≈ A · Λ^(−(d+1)/2),

equivalently ``A (p/p_th)^((d+1)/2)``.  The paper itself relies on this
regime ("the logical error rates are so low that numerical simulations
cannot provide reasonable estimations", section VII-C) — as do we: the
model is calibrated from direct Monte-Carlo at small d and used for the
d ≥ 19 codes of Table II and figs. 12/13.

The default constants are the ones measured by this repository's own
simulator at the paper's operating point p = 1e-3 (see
``benchmarks/test_fig11a_logical_error.py``); ``calibrate_lambda_model``
re-measures them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim import NoiseModel

__all__ = ["LambdaModel", "calibrate_lambda_model"]


@dataclass(frozen=True)
class LambdaModel:
    """``p_L(d) = A · Λ^(−(d+1)/2)`` per QEC round, per logical qubit.

    ``A`` and ``lam`` default to this simulator's measured values at
    p = 1e-3 circuit-level noise.
    """

    A: float = 0.03
    lam: float = 8.0

    def per_round(self, d: float) -> float:
        """Logical error rate per QEC round at (effective) distance ``d``."""
        if d <= 0:
            return 0.5
        return min(0.5, self.A * self.lam ** (-(d + 1) / 2.0))

    def per_cycles(self, d: float, cycles: float) -> float:
        """Failure probability accumulated over ``cycles`` rounds."""
        p = self.per_round(d)
        if p >= 0.5:
            return 0.5
        return 0.5 * (1.0 - (1.0 - 2.0 * p) ** cycles)

    def distance_for(self, target_per_round: float) -> int:
        """Smallest odd distance achieving ``target_per_round``."""
        d = 3
        while self.per_round(d) > target_per_round and d < 201:
            d += 2
        return d


def calibrate_lambda_model(
    *,
    noise: NoiseModel | None = None,
    distances: tuple[int, ...] = (3, 5),
    shots: int = 50_000,
    seed: int = 7,
    chunk_shots: int | None = 65_536,
) -> LambdaModel:
    """Fit ``A`` and ``Λ`` from Monte-Carlo at small distances.

    Runs Z-memory experiments on clean rotated surface codes and solves
    the two-point fit ``log p = log A − ((d+1)/2) log Λ`` (least squares
    when more than two distances are given).  X-memory behaves
    identically by symmetry, and the combined rate doubles ``A``.
    The experiments stream through the packed batch pipeline in
    ``chunk_shots`` chunks, so calibration at millions of shots runs in
    bounded memory.
    """
    from repro.eval.montecarlo import memory_experiment
    from repro.surface import rotated_surface_code

    noise = noise or NoiseModel.uniform(1e-3)
    points = []
    for d in distances:
        result = memory_experiment(
            rotated_surface_code(d).code,
            "Z",
            noise,
            rounds=d,
            shots=shots,
            seed=seed,
            chunk_shots=chunk_shots,
        )
        rate = max(result.per_round, 0.25 / shots)  # avoid log(0)
        points.append(((d + 1) / 2.0, math.log(rate)))

    n = len(points)
    sx = sum(x for x, _ in points)
    sy = sum(y for _, y in points)
    sxx = sum(x * x for x, _ in points)
    sxy = sum(x * y for x, y in points)
    denom = n * sxx - sx * sx
    slope = (n * sxy - sx * sy) / denom
    intercept = (sy - slope * sx) / n
    # Both bases contribute: double A.
    return LambdaModel(A=2.0 * math.exp(intercept), lam=math.exp(-slope))
