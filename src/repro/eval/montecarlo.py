"""Monte-Carlo logical-error-rate measurement (fig. 11a, 14a, 14b).

Couples the syndrome-circuit generator, the Pauli-frame sampler and the
MWPM decoder into the standard memory-experiment harness:

1. build a ``basis``-memory circuit for the (possibly deformed) code,
2. extract its detector error model and decoding graph,
3. sample shots, decode, count logical flips,
4. report the per-shot and per-round logical error rate.

Untreated defective qubits are passed through to the circuit generator,
which injects the paper's ≈ 50 % defect noise on them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes import SubsystemCode
from repro.decode import MatchingDecoder
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors

__all__ = ["MemoryResult", "memory_experiment", "logical_error_rate"]


@dataclass(frozen=True)
class MemoryResult:
    """Outcome of one memory experiment."""

    basis: str
    rounds: int
    shots: int
    errors: int
    dropped_hyperedges: int

    @property
    def per_shot(self) -> float:
        return self.errors / self.shots

    @property
    def per_round(self) -> float:
        """Per-round (per-cycle) logical error rate."""
        p = min(self.per_shot, 0.5)
        if p <= 0:
            return 0.0
        # p_shot = (1 - (1 - 2 p_round)^rounds) / 2
        return (1 - (1 - 2 * p) ** (1.0 / self.rounds)) / 2


def memory_experiment(
    code: SubsystemCode,
    basis: str,
    noise: NoiseModel,
    *,
    rounds: int | None = None,
    shots: int = 2000,
    seed: int | None = None,
    defective_data: set | None = None,
    defective_ancillas: set | None = None,
    decoder_method: str = "blossom",
    decoder_aware_of_defects: bool = False,
) -> MemoryResult:
    """Run one ``basis``-memory experiment and decode it.

    By default the decoder's error model is built from the *clean*
    circuit even when defects are injected — dynamic defects strike
    unannounced, so the "no treatment" baseline of fig. 11(a) decodes
    with stale error rates.  ``decoder_aware_of_defects=True`` gives the
    decoder the defect-aware model instead (an erasure-like best case).
    """
    if rounds is None:
        rounds = max(3, min(code.n, 25))
    circuit = memory_circuit(
        code,
        basis,
        rounds,
        noise,
        defective_data=defective_data,
        defective_ancillas=defective_ancillas,
    )
    if decoder_aware_of_defects or not (defective_data or defective_ancillas):
        dem = build_dem(circuit)
    else:
        clean = memory_circuit(code, basis, rounds, noise)
        dem = build_dem(clean)
    decoder = MatchingDecoder(dem, method=decoder_method)
    detectors, observables = sample_detectors(circuit, shots, seed=seed)
    predictions = decoder.decode_batch(detectors)
    actual = (observables.sum(axis=1) % 2).astype(predictions.dtype)
    errors = int((predictions != actual).sum())
    return MemoryResult(
        basis=basis,
        rounds=rounds,
        shots=shots,
        errors=errors,
        dropped_hyperedges=dem.dropped_hyperedges,
    )


def logical_error_rate(
    code: SubsystemCode,
    noise: NoiseModel,
    *,
    rounds: int | None = None,
    shots: int = 2000,
    seed: int | None = None,
    defective_data: set | None = None,
    defective_ancillas: set | None = None,
    decoder_method: str = "blossom",
    decoder_aware_of_defects: bool = False,
) -> float:
    """Combined per-round logical error rate over both bases.

    The total logical error rate is approximately the sum of the X- and
    Z-memory rates (independent failure mechanisms to first order).
    """
    total = 0.0
    for basis in ("Z", "X"):
        result = memory_experiment(
            code,
            basis,
            noise,
            rounds=rounds,
            shots=shots,
            seed=seed,
            defective_data=defective_data,
            defective_ancillas=defective_ancillas,
            decoder_method=decoder_method,
            decoder_aware_of_defects=decoder_aware_of_defects,
        )
        total += result.per_round
    return total
