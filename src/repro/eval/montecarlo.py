"""Monte-Carlo logical-error-rate measurement (fig. 11a, 14a, 14b).

Couples the syndrome-circuit generator, the Pauli-frame sampler and the
matching decoder into the standard memory-experiment harness:

1. build a ``basis``-memory circuit for the (possibly deformed) code,
2. extract its detector error model and decoding graph,
3. sample shots, decode, count logical flips,
4. report the per-shot and per-round logical error rate.

Untreated defective qubits are passed through to the circuit generator,
which injects the paper's ≈ 50 % defect noise on them.

Decoder construction is the expensive part of an experiment — DEM
extraction propagates every elementary mechanism through the circuit
and the decoding graph precomputes all-pairs path matrices — so
``(code, basis, rounds, noise, defects)``-keyed decoders are memoised
in a bounded cache.  Sweeps that revisit the same configuration (the
Z/X bases of :func:`logical_error_rate`, repeated calls while scanning
shots or defect samples) pay for DEM + graph construction once.

Samples flow packed end to end: the sampler hands
:class:`~repro.utils.gf2.PackedBits` detector bitplanes straight to
``decode_batch`` (never materialising a ``(shots, detectors)`` uint8
array), and ``chunk_shots`` streams a large experiment through the
pipeline in bounded-memory chunks — each chunk sampled from an
independent child seed — so 10^6-shot sweeps run in a few tens of MB.

When an artifact store is active (:func:`repro.store.get_store` — via
``set_store``/``using_store`` or the ``REPRO_STORE`` env var) the same
content keys additionally persist the build products *on disk*:
compiled circuit programs, extracted DEMs, and the decoding graph's
all-pairs matrices are loaded from the store when present and written
back after a build, so fresh processes skip the expensive d ≥ 7 builds
entirely.  A corrupt entry is quarantined by the store and rebuilt
here — persistence can slow a run down, never break it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.codes import SubsystemCode
from repro.decode import MatchingDecoder
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.sim.circuit import Circuit, compile_circuit
from repro.store import get_store

__all__ = [
    "MemoryResult",
    "memory_experiment",
    "logical_error_rate",
    "clear_decoder_cache",
    "chunk_plan",
    "resolve_workers",
]

_DECODER_WORKERS_WARNED = False


def resolve_workers(
    workers: int | None, decoder_workers: int | None
) -> int | None:
    """Fold the deprecated ``decoder_workers=`` spelling into ``workers=``.

    ``workers=`` is the one canonical worker-count keyword across the
    public API (the spelling the ``Decoder`` constructor uses).  The
    pre-redesign ``decoder_workers=`` is still honoured — warning once
    per process — but passing both is an error.
    """
    if decoder_workers is None:
        return workers
    if workers is not None:
        raise TypeError(
            "pass either workers= or the deprecated decoder_workers=, "
            "not both"
        )
    global _DECODER_WORKERS_WARNED
    if not _DECODER_WORKERS_WARNED:
        _DECODER_WORKERS_WARNED = True
        import warnings

        warnings.warn(
            "decoder_workers= is deprecated; use workers= instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return decoder_workers

#: Bounded decoder memo: content-derived cache key -> MatchingDecoder.
_DECODER_CACHE: OrderedDict[tuple, MatchingDecoder] = OrderedDict()
_DECODER_CACHE_SIZE = 32


def clear_decoder_cache() -> None:
    """Drop all memoised decoders (mainly for tests and benchmarks)."""
    _DECODER_CACHE.clear()


def _code_fingerprint(code: SubsystemCode) -> tuple:
    """Content fingerprint of a code's measured structure.

    The deformation layer mutates codes in place (check substitution,
    stabilizer rewrites), so identity cannot key the cache; and sweeps
    rebuild content-identical code objects (a fresh ``SubsystemCode``
    per defect sample), so identity must not *miss* either.  The tuple
    itself is the key component — collision-safe, unlike ``hash()``.
    """
    return (
        tuple(code.qubit_order()),  # circuit qubit indexing follows this
        frozenset(
            (name, c.pauli, c.basis, c.ancilla) for name, c in code.checks.items()
        ),
        frozenset(
            (name, s.pauli, s.measured_via)
            for name, s in code.stabilizers.items()
        ),
        code.logical_x,
        code.logical_z,
    )


def _circuit_fingerprint(circuit: Circuit) -> tuple:
    """Content fingerprint of a circuit's instruction stream."""
    return (
        "circuit-v1",
        circuit.num_qubits,
        tuple(
            (inst.name, inst.targets, inst.arg)
            for inst in circuit.instructions
        ),
    )


def prime_compiled(circuit: Circuit) -> Circuit:
    """Warm a circuit's compile cache from the artifact store.

    With no active store (or an in-process compile already cached) this
    is a no-op.  Otherwise the compiled program is loaded by content
    fingerprint — or compiled now and persisted — and installed, so
    sampling and DEM extraction skip :func:`compile_circuit`.
    """
    store = get_store()
    if store is None:
        return circuit
    cached = getattr(circuit, "_compiled", None)
    if cached is not None and cached[0] == len(circuit.instructions):
        return circuit
    program = store.get_or_build(
        "compiled_circuit",
        _circuit_fingerprint(circuit),
        lambda: compile_circuit(circuit),
    )
    circuit._compiled = (len(circuit.instructions), program)
    return circuit


def _cached_decoder(
    code: SubsystemCode,
    basis: str,
    rounds: int,
    noise: NoiseModel,
    defective_data: set | None,
    defective_ancillas: set | None,
    method: str,
    circuit=None,
) -> MatchingDecoder:
    """Decoder for one experiment configuration, memoised.

    ``circuit`` may supply an already-built memory circuit matching the
    defect arguments, saving a rebuild on cache misses.  With an active
    artifact store, the DEM and (for matrix-backed methods) the
    all-pairs matrices are additionally persisted across processes,
    keyed on the same content tuple.
    """
    config_key = (
        _code_fingerprint(code),
        basis,
        rounds,
        noise,
        frozenset(defective_data or ()),
        frozenset(defective_ancillas or ()),
    )
    key = (*config_key, method)
    decoder = _DECODER_CACHE.get(key)
    if decoder is not None:
        _DECODER_CACHE.move_to_end(key)
        return decoder

    def build_circuit() -> Circuit:
        nonlocal circuit
        if circuit is None:
            circuit = memory_circuit(
                code,
                basis,
                rounds,
                noise,
                defective_data=defective_data,
                defective_ancillas=defective_ancillas,
            )
        return prime_compiled(circuit)

    store = get_store()
    if store is None:
        dem = build_dem(build_circuit())
    else:
        # The DEM is method-independent, so its artifact is shared by
        # every decoder method of the same experiment configuration.
        dem = store.get_or_build(
            "dem", config_key, lambda: build_dem(build_circuit())
        )
    decoder = MatchingDecoder(dem, method=method)
    if store is not None and decoder.use_matrices and method != "uf":
        dist, parity = store.get_or_build(
            "path_matrices", config_key, decoder.graph.ensure_matrices
        )
        decoder.graph.adopt_matrices(dist, parity)
    _DECODER_CACHE[key] = decoder
    if len(_DECODER_CACHE) > _DECODER_CACHE_SIZE:
        _DECODER_CACHE.popitem(last=False)
    return decoder


@dataclass(frozen=True)
class MemoryResult:
    """Outcome of one memory experiment."""

    basis: str
    rounds: int
    shots: int
    errors: int
    dropped_hyperedges: int

    @property
    def per_shot(self) -> float:
        return self.errors / self.shots

    @property
    def per_round(self) -> float:
        """Per-round (per-cycle) logical error rate."""
        p = min(self.per_shot, 0.5)
        if p <= 0:
            return 0.0
        # p_shot = (1 - (1 - 2 p_round)^rounds) / 2
        return (1 - (1 - 2 * p) ** (1.0 / self.rounds)) / 2


def chunk_plan(
    shots: int, chunk_shots: int | None, seed: int | None
) -> list[tuple[int | None, int]]:
    """``(seed, shots)`` per streaming chunk.

    A single chunk passes ``seed`` through untouched (so unchunked
    results are unchanged by the streaming refactor); multiple chunks
    sample independent child streams spawned from ``seed``.

    This plan is the *unit of resumability*: the checkpointed sweep
    runner (:mod:`repro.sweep`) journals completed chunks by their
    position in this list and replays only the missing ones — each
    chunk re-run standalone as ``memory_experiment(shots=n,
    seed=chunk_seed)`` draws exactly the bits the uninterrupted chunked
    run would have, so merged counts are bit-identical.
    """
    if chunk_shots is None or chunk_shots >= shots or chunk_shots < 1:
        return [(seed, shots)]
    sizes = [chunk_shots] * (shots // chunk_shots)
    if shots % chunk_shots:
        sizes.append(shots % chunk_shots)
    if seed is None:
        return [(None, n) for n in sizes]
    children = np.random.SeedSequence(seed).spawn(len(sizes))
    return [
        (int(child.generate_state(1)[0]), n)
        for child, n in zip(children, sizes, strict=True)
    ]


def memory_experiment(
    code: SubsystemCode,
    basis: str,
    noise: NoiseModel,
    *,
    rounds: int | None = None,
    shots: int = 2000,
    seed: int | None = None,
    chunk_shots: int | None = None,
    defective_data: set | None = None,
    defective_ancillas: set | None = None,
    decoder_method: str = "blossom",
    decoder_aware_of_defects: bool = False,
    workers: int | None = None,
    decoder_workers: int | None = None,
) -> MemoryResult:
    """Run one ``basis``-memory experiment and decode it.

    By default the decoder's error model is built from the *clean*
    circuit even when defects are injected — dynamic defects strike
    unannounced, so the "no treatment" baseline of fig. 11(a) decodes
    with stale error rates.  ``decoder_aware_of_defects=True`` gives the
    decoder the defect-aware model instead (an erasure-like best case).

    ``workers=N`` shards the batch's unique syndromes across ``N``
    forked processes (``MatchingDecoder.decode_batch``); dense d ≥ 7
    sweeps then scale with cores.  It only affects scheduling, never
    predictions, so it is deliberately *not* part of the decoder cache
    key — memoised decoders are reused across worker settings.  The
    pre-redesign spelling ``decoder_workers=`` is still accepted but
    deprecated (warns once per process).

    ``chunk_shots=N`` streams the experiment in bounded-memory chunks
    of at most ``N`` shots, each sampled from an independent child
    stream of ``seed``; the syndrome LRU carries across chunks, so the
    total decode work matches the one-batch run.  Chunked and unchunked
    runs of the same seed draw different (equally valid) samples.
    """
    workers = resolve_workers(workers, decoder_workers)
    if rounds is None:
        rounds = max(3, min(code.n, 25))
    circuit = prime_compiled(
        memory_circuit(
            code,
            basis,
            rounds,
            noise,
            defective_data=defective_data,
            defective_ancillas=defective_ancillas,
        )
    )
    if decoder_aware_of_defects:
        decoder_defects = (defective_data, defective_ancillas)
        decoder_circuit = circuit
    elif not (defective_data or defective_ancillas):
        decoder_defects = (None, None)
        decoder_circuit = circuit  # clean run: the sampled circuit is clean
    else:
        decoder_defects = (None, None)
        decoder_circuit = None  # decoder sees the clean model, not the strike
    decoder = _cached_decoder(
        code,
        basis,
        rounds,
        noise,
        *decoder_defects,
        decoder_method,
        circuit=decoder_circuit,
    )
    errors = 0
    for chunk_seed, chunk in chunk_plan(shots, chunk_shots, seed):
        detectors, observables = sample_detectors(
            circuit, chunk, seed=chunk_seed, output="packed"
        )
        predictions = decoder.decode_batch(detectors, workers=workers)
        actual = observables.column_parity()
        errors += int((predictions != actual).sum())
    return MemoryResult(
        basis=basis,
        rounds=rounds,
        shots=shots,
        errors=errors,
        dropped_hyperedges=decoder.graph.dem.dropped_hyperedges,
    )


def logical_error_rate(
    code: SubsystemCode,
    noise: NoiseModel,
    *,
    rounds: int | None = None,
    shots: int = 2000,
    seed: int | None = None,
    chunk_shots: int | None = None,
    defective_data: set | None = None,
    defective_ancillas: set | None = None,
    decoder_method: str = "blossom",
    decoder_aware_of_defects: bool = False,
    workers: int | None = None,
    decoder_workers: int | None = None,
) -> float:
    """Combined per-round logical error rate over both bases.

    The total logical error rate is approximately the sum of the X- and
    Z-memory rates (independent failure mechanisms to first order).
    Each basis samples an independent random stream derived from
    ``seed`` (child seeds via ``np.random.SeedSequence.spawn``), so the
    two memory experiments are decorrelated even at a fixed seed.
    """
    workers = resolve_workers(workers, decoder_workers)
    if seed is None:
        basis_seeds = {"Z": None, "X": None}
    else:
        z_child, x_child = np.random.SeedSequence(seed).spawn(2)
        basis_seeds = {
            "Z": int(z_child.generate_state(1)[0]),
            "X": int(x_child.generate_state(1)[0]),
        }
    total = 0.0
    for basis in ("Z", "X"):
        result = memory_experiment(
            code,
            basis,
            noise,
            rounds=rounds,
            shots=shots,
            seed=basis_seeds[basis],
            chunk_shots=chunk_shots,
            defective_data=defective_data,
            defective_ancillas=defective_ancillas,
            decoder_method=decoder_method,
            decoder_aware_of_defects=decoder_aware_of_defects,
            workers=workers,
        )
        total += result.per_round
    return total


#: Backwards-compatible alias (pre-sweep-runner name).
_chunk_plan = chunk_plan
