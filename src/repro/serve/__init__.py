"""Streaming decode service (the online front to windowed decoding).

One facade, four names: :class:`DecodeService` (bounded-worker asyncio
service), :class:`StreamSession` (one per-stream ingestion session),
:class:`ServiceStats` (latency percentiles + throughput snapshot), and
:class:`~repro.decode.window.WindowConfig` (the window geometry the
service decodes with), re-exported here so service users never import
from ``repro.decode.window`` directly.
"""

from repro.decode.window import SlidingWindowDecoder, WindowConfig
from repro.serve.service import DecodeService, ServiceStats, StreamSession

__all__ = [
    "DecodeService",
    "StreamSession",
    "ServiceStats",
    "SlidingWindowDecoder",
    "WindowConfig",
]
