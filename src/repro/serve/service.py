"""Asyncio decode service over sliding-window streaming decoders.

:class:`DecodeService` is the online front door to
:class:`~repro.decode.window.SlidingWindowDecoder`: syndrome chunks —
packed uint64 bitplanes straight off the sampler wire, or plain
``(shots, k x G)`` uint8 rows — arrive on per-stream
:class:`StreamSession` objects and are decoded through one bounded
thread pool shared by every session.  Backpressure is structural: each
session holds at most ``max_pending`` undecoded chunks, so a producer
that outruns the decoder blocks in ``await submit(...)`` instead of
growing an unbounded queue, and the windowed decoder underneath
guarantees each stream's memory never grows with its length.

Per-chunk service latency is measured from the moment ``submit`` is
called to the moment the chunk's window advance completes — queueing
delay included, because that is what a syndrome producer actually
experiences.  :meth:`DecodeService.stats` folds the recorded latencies
into a :class:`ServiceStats` snapshot (p50/p95/p99 milliseconds plus
decoded-shot throughput), which is what the ``service`` benchmark mode
of ``benchmarks/perf_report.py`` records in ``BENCH_decode.json``.

Timing uses ``time.perf_counter`` only, and the worker pool is a
``ThreadPoolExecutor`` — window matching is NumPy-bound and the memo
tables in the shared :class:`SlidingWindowDecoder` must stay in one
address space; a process pool would silently defeat both.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.decode.window import SlidingWindowDecoder, WindowStream
from repro.utils.gf2 import PackedBits

__all__ = ["DecodeService", "StreamSession", "ServiceStats"]

#: Queue sentinel closing a session: drain the pending chunks, then
#: decode the final window.
_FINISH = object()


@dataclass(frozen=True)
class ServiceStats:
    """One service's latency/throughput snapshot (see ``stats()``).

    Latency percentiles are per *chunk* — submit to decode-done,
    queueing included — in milliseconds; they are ``nan`` until at
    least one chunk has been decoded (the benchmark gate treats a
    non-finite p99 as "the service never ran").  Throughput counts the
    shots of *finished* streams over the wall-clock span from the
    first submit to the most recent completion.
    """

    streams: int
    chunks: int
    shots: int
    wall_seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def shots_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf") if self.shots else 0.0
        return self.shots / self.wall_seconds


class StreamSession:
    """One logical stream's service-side session.

    Created by :meth:`DecodeService.open_stream`.  ``await submit()``
    enqueues one chunk of whole detector layers (blocking only when
    ``max_pending`` chunks are already in flight); ``await finish()``
    drains the queue, decodes the final window, and returns the
    stream's per-shot observable predictions.  A decode error inside
    the worker pool surfaces from ``finish()`` — later submits are
    swallowed cheaply rather than deadlocking the producer.
    """

    def __init__(self, service: DecodeService, stream: WindowStream) -> None:
        self._service = service
        self._stream = stream
        self._queue: asyncio.Queue = asyncio.Queue(
            maxsize=service.max_pending
        )
        self._task = asyncio.get_running_loop().create_task(self._drain())
        self._closed = False

    @property
    def shots(self) -> int:
        return self._stream.shots

    async def submit(self, chunk: np.ndarray | PackedBits) -> None:
        """Enqueue one chunk of whole detector layers for decoding."""
        if self._closed:
            raise RuntimeError("session already finished")
        await self._queue.put((time.perf_counter(), chunk))

    async def finish(self) -> np.ndarray:
        """Drain, decode the final window, return the predictions."""
        if self._closed:
            raise RuntimeError("session already finished")
        self._closed = True
        await self._queue.put(_FINISH)
        return await self._task

    async def _drain(self) -> np.ndarray:
        loop = asyncio.get_running_loop()
        executor = self._service._executor
        error: BaseException | None = None
        while True:
            item = await self._queue.get()
            try:
                if item is _FINISH:
                    break
                if error is None:
                    submitted, chunk = item
                    await loop.run_in_executor(
                        executor, self._stream.push, chunk
                    )
                    self._service._chunk_done(
                        submitted, time.perf_counter()
                    )
            except BaseException as exc:  # re-raised from finish()
                error = exc
            finally:
                self._queue.task_done()
        if error is not None:
            raise error
        predictions = await loop.run_in_executor(
            executor, self._stream.finish
        )
        self._service._stream_done(self._stream.shots)
        return predictions


class DecodeService:
    """Bounded-concurrency asyncio decode service (async context manager).

    ``decoder`` is the shared :class:`SlidingWindowDecoder` whose
    window graphs and outcome memos every session reuses.  ``workers``
    is the worker-pool width, the canonical spelling shared with the
    batch decoders — ``1`` (the default) decodes strictly serially on
    one worker thread.  ``max_pending`` bounds each session's
    undecoded-chunk queue; a full queue backpressures ``submit``.

    Usage::

        service = DecodeService(window_decoder, workers=2)
        async with service:
            session = service.open_stream(shots)
            for chunk in syndrome_chunks:
                await session.submit(chunk)
            predictions = await session.finish()
        print(service.stats().p99_ms)
    """

    def __init__(
        self,
        decoder: SlidingWindowDecoder,
        *,
        workers: int | None = None,
        max_pending: int = 4,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending < 1:
            raise ValueError(
                f"max_pending must be >= 1, got {max_pending}"
            )
        self.decoder = decoder
        self.workers = 1 if workers is None else workers
        self.max_pending = max_pending
        self._executor: ThreadPoolExecutor | None = None
        self._sessions: list[StreamSession] = []
        self._latencies: list[float] = []
        self._streams = 0
        self._shots = 0
        self._first_submit: float | None = None
        self._last_done: float | None = None

    # -- lifecycle ------------------------------------------------------
    async def __aenter__(self) -> DecodeService:
        if self._executor is not None:
            raise RuntimeError("service already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        for session in self._sessions:
            if not session._closed:
                session._closed = True
                session._task.cancel()
        for session in self._sessions:
            try:
                await session._task
            except (asyncio.CancelledError, Exception):
                pass
        self._sessions.clear()
        assert self._executor is not None
        self._executor.shutdown(wait=True)
        self._executor = None

    def open_stream(self, shots: int) -> StreamSession:
        """A fresh session decoding ``shots`` parallel shots."""
        if self._executor is None:
            raise RuntimeError(
                "service not started; use 'async with service:'"
            )
        session = StreamSession(self, self.decoder.open_stream(shots))
        self._sessions.append(session)
        return session

    # -- accounting -----------------------------------------------------
    def _chunk_done(self, submitted: float, done: float) -> None:
        self._latencies.append(done - submitted)
        if self._first_submit is None or submitted < self._first_submit:
            self._first_submit = submitted
        self._last_done = done

    def _stream_done(self, shots: int) -> None:
        self._streams += 1
        self._shots += shots
        self._last_done = time.perf_counter()

    def stats(self) -> ServiceStats:
        """Latency percentiles and throughput of the work so far."""
        if self._latencies:
            p50, p95, p99 = (
                float(v)
                for v in np.percentile(
                    np.asarray(self._latencies) * 1e3, [50.0, 95.0, 99.0]
                )
            )
        else:
            p50 = p95 = p99 = float("nan")
        wall = 0.0
        if self._first_submit is not None and self._last_done is not None:
            wall = max(0.0, self._last_done - self._first_submit)
        return ServiceStats(
            streams=self._streams,
            chunks=len(self._latencies),
            shots=self._shots,
            wall_seconds=wall,
            p50_ms=p50,
            p95_ms=p95,
            p99_ms=p99,
        )
