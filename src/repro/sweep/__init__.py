"""Checkpointed, resumable, fault-tolerant Monte-Carlo sweeps.

The crash-safe substrate for figure-scale evaluation (fig. 11–14,
table 2): :func:`run_sweep` shards a grid of ``(distance, p, basis,
scenario)`` cells into chunk-level work units, durably journals each
completed chunk (:mod:`repro.sweep.journal`), and on restart skips
journaled chunks so the merged counts are bit-identical to an
uninterrupted run with the same seed.  Build products are shared
through the content-keyed artifact store (:mod:`repro.store`), chunk
execution retries with backoff under an optional wall-clock budget,
and the forked decode pool underneath degrades shard-by-shard to
serial decoding when workers die (:mod:`repro.decode.base`).
"""

from repro.sweep.journal import JOURNAL_FORMAT, append_record, read_journal
from repro.sweep.runner import (
    CellResult,
    ChunkTimeout,
    SweepCell,
    SweepError,
    SweepResult,
    SweepSpec,
    SweepSpecMismatch,
    cell_seed,
    run_sweep,
)

__all__ = [
    "JOURNAL_FORMAT",
    "append_record",
    "read_journal",
    "SweepCell",
    "SweepSpec",
    "CellResult",
    "SweepResult",
    "SweepError",
    "SweepSpecMismatch",
    "ChunkTimeout",
    "cell_seed",
    "run_sweep",
]
