"""Checkpointed, resumable Monte-Carlo sweeps.

A sweep is a grid of ``(distance, p, basis, scenario)`` cells, each a
memory experiment of ``cell.shots`` shots.  The runner shards every
cell into chunk-level work units using the *same* chunk plan the
streaming evaluator uses (:func:`repro.eval.montecarlo.chunk_plan`):
chunk ``j`` of a cell runs standalone as ``memory_experiment(shots=n,
seed=chunk_seed)``, drawing exactly the bits chunk ``j`` of an
uninterrupted ``chunk_shots``-streamed run would draw.  Completed
chunks are durably journaled (:mod:`repro.sweep.journal`) — counts
plus the chunk's derived RNG seed — so a sweep killed at any instant
resumes by replaying only the missing chunks, and the merged
logical-error counts are **bit-identical** to a run that was never
interrupted.

Robustness around each chunk:

* retry with exponential backoff (``max_attempts``, ``backoff_base``);
* an optional per-chunk wall-clock budget (``chunk_timeout``,
  SIGALRM-based, skipped off the main thread) whose expiry counts as a
  failed attempt;
* a cell whose retry budget is exhausted is recorded as failed and the
  sweep *continues* with the remaining cells — by default the failure
  is raised only after everything else completed (``strict=True``).

Builds are shared two ways: the in-process decoder memo of
:mod:`repro.eval.montecarlo`, and — when an artifact store is active —
the on-disk store, so a resumed sweep (a fresh process) skips the
compile/DEM/matrix builds its predecessor already paid for.  By
default each sweep keeps a store under ``<sweep_dir>/artifacts``; pass
``artifact_store=`` a shared :class:`~repro.store.ArtifactStore` (or
path) to pool builds across sweeps, or ``None`` to disable.
"""

from __future__ import annotations

import signal
import threading
import time
from collections.abc import Callable
from dataclasses import InitVar, dataclass, field
from pathlib import Path

import json
import os

import numpy as np

from repro.eval.montecarlo import (
    chunk_plan,
    memory_experiment,
    resolve_workers,
)
from repro.sim import NoiseModel
from repro.store import ArtifactStore, atomic_write_text, key_digest, using_store
from repro.surface import rotated_surface_code
from repro.sweep.journal import JOURNAL_FORMAT, append_record, read_journal

__all__ = [
    "SweepCell",
    "SweepSpec",
    "CellResult",
    "SweepResult",
    "SweepError",
    "SweepSpecMismatch",
    "ChunkTimeout",
    "cell_seed",
    "run_sweep",
]


class SweepError(RuntimeError):
    """A sweep-level failure (cells exhausted their retry budget)."""


class SweepSpecMismatch(SweepError):
    """A journal belongs to a different sweep than the one resuming."""


class ChunkTimeout(SweepError):
    """A chunk attempt exceeded its wall-clock budget."""


@dataclass(frozen=True)
class SweepCell:
    """One grid point: a code distance, noise level and scenario."""

    distance: int
    p: float
    basis: str = "Z"
    rounds: int | None = None
    shots: int = 2000
    defective_data: frozenset = frozenset()
    defective_ancillas: frozenset = frozenset()
    decoder_method: str = "blossom"
    decoder_aware_of_defects: bool = False
    #: Free-form scenario tag carried into results (e.g. "memory",
    #: "untreated_defect"); part of the content fingerprint.
    scenario: str = "memory"

    def label(self) -> str:
        tag = "" if self.scenario == "memory" else f"_{self.scenario}"
        return f"d{self.distance}_p{self.p:g}_{self.basis}{tag}"


@dataclass(frozen=True)
class SweepSpec:
    """The full, content-fingerprinted definition of a sweep.

    ``workers`` is the canonical worker-count field (it names the
    ``workers=`` kwarg handed to ``decode_batch``); constructing a spec
    with the pre-redesign ``decoder_workers=`` still works but warns
    once per process.  The rename changes spec fingerprints, which is
    covered by the ``JOURNAL_FORMAT`` bump to 2 — journals written by
    format-1 runners are not resumable either way.
    """

    cells: tuple[SweepCell, ...]
    seed: int = 0
    chunk_shots: int | None = None
    workers: int | None = None
    decoder_workers: InitVar[int | None] = None

    def __post_init__(self, decoder_workers: int | None) -> None:
        if decoder_workers is not None:
            resolved = resolve_workers(self.workers, decoder_workers)
            object.__setattr__(self, "workers", resolved)

    def fingerprint(self) -> str:
        """Content digest; must match for a journal to be resumable."""
        return key_digest(("sweep-spec", JOURNAL_FORMAT, self))


@dataclass(frozen=True)
class CellResult:
    """Merged outcome of one cell (possibly across several runs)."""

    cell: SweepCell
    rounds: int
    shots: int
    errors: int
    chunks: int
    failed: bool = False
    error: str | None = None

    @property
    def per_shot(self) -> float:
        return self.errors / self.shots if self.shots else 0.0

    @property
    def per_round(self) -> float:
        p = min(self.per_shot, 0.5)
        if p <= 0:
            return 0.0
        return (1 - (1 - 2 * p) ** (1.0 / self.rounds)) / 2


@dataclass
class SweepResult:
    """Everything a finished (or partially failed) sweep produced."""

    spec: SweepSpec
    cells: list[CellResult]
    journal_path: Path
    results_path: Path
    resumed_chunks: int = 0
    executed_chunks: int = 0
    failures: list[CellResult] = field(default_factory=list)

    def cell(self, label: str) -> CellResult:
        for result in self.cells:
            if result.cell.label() == label:
                return result
        raise KeyError(label)


def cell_seed(spec: SweepSpec, index: int) -> int:
    """The derived RNG seed of cell ``index`` — one independent
    ``SeedSequence`` child per cell, so cells are decorrelated and a
    cell's sample stream is independent of every other cell's."""
    children = np.random.SeedSequence(spec.seed).spawn(len(spec.cells))
    return int(children[index].generate_state(1)[0])


def _cell_plan(spec: SweepSpec, index: int) -> list[tuple[int, int]]:
    """``(chunk_seed, shots)`` work units of cell ``index``."""
    cell = spec.cells[index]
    return chunk_plan(cell.shots, spec.chunk_shots, cell_seed(spec, index))


def _resolved_rounds(cell: SweepCell, code) -> int:
    if cell.rounds is not None:
        return cell.rounds
    return max(3, min(code.n, 25))


# -- retry / timeout ----------------------------------------------------
def _chunk_guard(seconds: float | None):
    """SIGALRM-based wall-clock budget; a no-op where unusable.

    Only the main thread of the main interpreter can own SIGALRM; in
    worker threads (or on platforms without it) the budget silently
    degrades to "no timeout" — retries and journaling still protect
    the sweep, only runaway-chunk interruption is lost.
    """

    class _Guard:
        def __enter__(self):
            self.active = bool(seconds) and hasattr(signal, "SIGALRM") and (
                threading.current_thread() is threading.main_thread()
            )
            if not self.active:
                return self

            def _raise(signum, frame):
                raise ChunkTimeout(f"chunk exceeded {seconds:g}s budget")

            self._old = signal.signal(signal.SIGALRM, _raise)
            signal.setitimer(signal.ITIMER_REAL, seconds)
            return self

        def __exit__(self, *exc):
            if self.active:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, self._old)
            return False

    return _Guard()


def _with_retry(
    fn,
    *,
    max_attempts: int,
    backoff_base: float,
    sleep=time.sleep,
):
    """``(result, attempts)`` of ``fn``, retrying with exponential
    backoff; the final failure propagates to the caller."""
    for attempt in range(1, max_attempts + 1):
        try:
            return fn(), attempt
        except Exception:
            if attempt >= max_attempts:
                raise
            sleep(backoff_base * (2.0 ** (attempt - 1)))


# -- the runner ---------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    sweep_dir: str | os.PathLike,
    *,
    resume: bool = True,
    max_attempts: int = 3,
    backoff_base: float = 0.25,
    chunk_timeout: float | None = None,
    chunk_hook: Callable[[dict], object] | None = None,
    artifact_store: ArtifactStore | str | os.PathLike | None = "auto",
    strict: bool = True,
    sleep: Callable[[float], None] = time.sleep,
) -> SweepResult:
    """Run (or resume) a sweep, checkpointing after every chunk.

    ``sweep_dir`` owns the sweep's persistent state: the append-only
    ``journal.jsonl`` checkpoint log, the atomically-published
    ``results.json`` summary, and (with the default
    ``artifact_store="auto"``) an ``artifacts/`` build cache.  Calling
    again with the same spec and directory skips every journaled chunk
    and merges bit-identically with the uninterrupted run;
    ``resume=False`` refuses to touch an existing journal instead.

    ``chunk_hook(record)`` — if given — runs after each chunk commits
    (progress reporting, throttling); a hook exception is *not*
    retried, it propagates after the chunk was already journaled.
    """
    sweep_dir = Path(sweep_dir)
    sweep_dir.mkdir(parents=True, exist_ok=True)
    journal_path = sweep_dir / "journal.jsonl"
    results_path = sweep_dir / "results.json"
    fingerprint = spec.fingerprint()

    records, _corrupt = read_journal(journal_path)
    header = next((r for r in records if r.get("type") == "header"), None)
    if header is not None and not resume:
        raise SweepError(
            f"{journal_path} already holds a sweep journal; pass "
            "resume=True to continue it or use a fresh directory"
        )
    if header is not None and header.get("fingerprint") != fingerprint:
        raise SweepSpecMismatch(
            f"journal {journal_path} was written by a different sweep "
            f"spec (journal {header.get('fingerprint')!r:.20} != "
            f"spec {fingerprint!r:.20}); refusing to merge"
        )
    if header is None:
        append_record(
            journal_path,
            {
                "type": "header",
                "format": JOURNAL_FORMAT,
                "fingerprint": fingerprint,
                "cells": len(spec.cells),
                "seed": spec.seed,
                "chunk_shots": spec.chunk_shots,
            },
        )

    done: dict[tuple[int, int], dict] = {}
    for r in records:
        if r.get("type") == "chunk":
            done[(int(r["cell"]), int(r["chunk"]))] = r

    if artifact_store == "auto":
        store: ArtifactStore | None = ArtifactStore(sweep_dir / "artifacts")
    elif artifact_store is None or isinstance(artifact_store, ArtifactStore):
        store = artifact_store
    else:
        store = ArtifactStore(Path(artifact_store))

    codes: dict[int, object] = {}
    results: list[CellResult] = []
    failures: list[CellResult] = []
    resumed = executed = 0

    with using_store(store):
        for i, cell in enumerate(spec.cells):
            code = codes.get(cell.distance)
            if code is None:
                code = rotated_surface_code(cell.distance).code
                codes[cell.distance] = code
            rounds = _resolved_rounds(cell, code)
            noise = NoiseModel.uniform(cell.p)
            plan = _cell_plan(spec, i)
            errors = 0
            completed = 0
            merged_shots = 0
            failure: str | None = None
            for j, (chunk_seed, n) in enumerate(plan):
                prior = done.get((i, j))
                if prior is not None:
                    # A journaled chunk must describe the same work unit
                    # the spec derives, or the journal is not ours.
                    if prior.get("seed") != chunk_seed or prior.get("shots") != n:
                        raise SweepSpecMismatch(
                            f"journaled chunk ({i}, {j}) of {journal_path} "
                            "disagrees with the spec's chunk plan "
                            f"(seed {prior.get('seed')} != {chunk_seed} or "
                            f"shots {prior.get('shots')} != {n})"
                        )
                    errors += int(prior["errors"])
                    completed += 1
                    merged_shots += n
                    resumed += 1
                    continue

                # Loop state is bound through default args so the
                # closure can never see a later iteration's values
                # (flake8-bugbear B023).
                def run_chunk(cell=cell, code=code, noise=noise,
                              rounds=rounds, n=n, chunk_seed=chunk_seed):
                    with _chunk_guard(chunk_timeout):
                        return memory_experiment(
                            code,
                            cell.basis,
                            noise,
                            rounds=rounds,
                            shots=n,
                            seed=chunk_seed,
                            defective_data=set(cell.defective_data) or None,
                            defective_ancillas=(
                                set(cell.defective_ancillas) or None
                            ),
                            decoder_method=cell.decoder_method,
                            decoder_aware_of_defects=(
                                cell.decoder_aware_of_defects
                            ),
                            workers=spec.workers,
                        )
                try:
                    t0 = time.perf_counter()
                    result, attempts = _with_retry(
                        run_chunk,
                        max_attempts=max_attempts,
                        backoff_base=backoff_base,
                        sleep=sleep,
                    )
                except Exception as exc:
                    failure = f"{type(exc).__name__}: {exc}"
                    append_record(
                        journal_path,
                        {
                            "type": "cell_failed",
                            "cell": i,
                            "chunk": j,
                            "error": failure,
                        },
                    )
                    break
                record = append_record(
                    journal_path,
                    {
                        "type": "chunk",
                        "cell": i,
                        "chunk": j,
                        "seed": chunk_seed,
                        "shots": n,
                        "errors": int(result.errors),
                        "attempts": attempts,
                        "elapsed": round(time.perf_counter() - t0, 6),
                    },
                )
                errors += int(result.errors)
                completed += 1
                merged_shots += n
                executed += 1
                if chunk_hook is not None:
                    chunk_hook(record)

            cell_result = CellResult(
                cell=cell,
                rounds=rounds,
                shots=merged_shots,
                errors=errors,
                chunks=completed,
                failed=failure is not None,
                error=failure,
            )
            results.append(cell_result)
            if cell_result.failed:
                failures.append(cell_result)

    _write_results(results_path, spec, fingerprint, results)
    outcome = SweepResult(
        spec=spec,
        cells=results,
        journal_path=journal_path,
        results_path=results_path,
        resumed_chunks=resumed,
        executed_chunks=executed,
        failures=failures,
    )
    if failures and strict:
        labels = ", ".join(f.cell.label() for f in failures)
        raise SweepError(
            f"{len(failures)} cell(s) failed permanently ({labels}); "
            f"completed work is journaled in {journal_path} and the "
            "sweep can be resumed after the cause is fixed"
        )
    return outcome


def _write_results(
    results_path: Path,
    spec: SweepSpec,
    fingerprint: str,
    results: list[CellResult],
) -> None:
    """Publish the merged summary atomically (temp + rename)."""
    payload = {
        "format": JOURNAL_FORMAT,
        "fingerprint": fingerprint,
        "seed": spec.seed,
        "chunk_shots": spec.chunk_shots,
        "cells": [
            {
                "label": r.cell.label(),
                "distance": r.cell.distance,
                "p": r.cell.p,
                "basis": r.cell.basis,
                "scenario": r.cell.scenario,
                "decoder_method": r.cell.decoder_method,
                "rounds": r.rounds,
                "shots": r.shots,
                "errors": r.errors,
                "chunks": r.chunks,
                "per_shot": r.per_shot,
                "per_round": r.per_round,
                "failed": r.failed,
                "error": r.error,
            }
            for r in results
        ],
    }
    atomic_write_text(results_path, json.dumps(payload, indent=2) + "\n")
