"""Append-only checkpoint journal for resumable sweeps.

One JSON record per line.  Appends are fsynced
(:func:`repro.store.atomic.durable_append`), so a record returned from
:func:`append_record` survives a SIGKILL of the writer; the only
possible damage is a *torn tail* — the final line cut mid-record by a
crash mid-append — which :func:`read_journal` skips (along with any
other unparseable line) instead of failing the resume.

Record types written by the sweep runner
(:mod:`repro.sweep.runner`):

``header``
    First record of a journal: the sweep spec's content fingerprint
    plus bookkeeping.  Resume refuses a journal whose fingerprint does
    not match the spec being resumed — a checkpoint must never be
    silently merged into a *different* sweep.
``chunk``
    One completed work unit: ``(cell, chunk)`` indices, the chunk's
    derived RNG seed, its shot count and logical-error count.
``cell_failed``
    A cell abandoned after exhausting its retry budget.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.store.atomic import durable_append

__all__ = ["JOURNAL_FORMAT", "append_record", "read_journal"]

#: Bumped on incompatible journal-record changes.  Format 2: the
#: ``SweepSpec.decoder_workers`` field became ``workers`` (field names
#: enter the spec fingerprint).
JOURNAL_FORMAT = 2


def append_record(path: str | os.PathLike, record: dict) -> dict:
    """Durably append one record; returns it for convenience."""
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if "\n" in line:
        raise ValueError("journal records must serialise to one line")
    durable_append(path, line)
    return record


def read_journal(path: str | os.PathLike) -> tuple[list[dict], int]:
    """All parseable records plus the count of skipped corrupt lines.

    A missing journal reads as empty.  Unparseable lines — the torn
    tail a crash mid-append leaves, or any other damage — are counted
    and skipped; whatever chunks *were* durably recorded still resume.
    """
    records: list[dict] = []
    corrupt = 0
    try:
        text = Path(path).read_text(encoding="utf-8", errors="replace")
    except FileNotFoundError:
        return records, corrupt
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            corrupt += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            corrupt += 1
    return records, corrupt
