"""Q3DE: the fixed-enlargement baseline (Suzuki et al., MICRO 2022).

On detecting a multi-bit burst error, Q3DE doubles the patch from d to
2d using the lattice-surgery "growth" transformation, keeping the
defective qubits inside the enlarged code (no removal — issue B.1) and
always enlarging by the full fixed amount (issue B.2).  On the standard
d-spaced layout the doubled patch swallows the surrounding communication
channel (issue B.3).
"""

from __future__ import annotations

from repro.deform.instructions import patch_q_add_layer
from repro.surface.patch import SurfacePatch

__all__ = ["q3de_enlarge"]


def q3de_enlarge(patch: SurfacePatch, *, direction: str = "e") -> None:
    """Double the patch size in one direction (fig. 7b).

    Equivalent to ``d`` consecutive ``PatchQ_ADD`` layers.  Defective
    qubits are *not* removed — they stay inside and keep injecting
    errors, which is the behaviour figs. 7(b)/11(a) criticise.
    """
    if direction not in ("n", "s", "e", "w"):
        raise ValueError("direction must be one of 'n', 's', 'e', 'w'")
    d = patch.d
    for _ in range(d):
        patch_q_add_layer(patch, direction)
    # Re-truncate nothing: Q3DE keeps defects.  But the rebuild performed
    # by patch_q_add_layer resurrects previously-removed qubits, which is
    # exactly Q3DE's semantics (defects remain part of the code).
