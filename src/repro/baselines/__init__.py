"""Baseline defect-mitigation methods: ASC-S, Q3DE, plain lattice surgery."""

from repro.baselines.asc import asc_defect_removal
from repro.baselines.q3de import q3de_enlarge
from repro.baselines.methods import MethodModel, METHODS

__all__ = ["asc_defect_removal", "q3de_enlarge", "MethodModel", "METHODS"]
