"""Analytic method models for the end-to-end evaluation (Table II, fig. 12).

Large-scale programs (hundreds of logical qubits at d ≥ 19, billions of
QEC cycles) cannot be simulated shot by shot — the paper extrapolates
from the Λ-scaling regime, and so do we.  Each mitigation method is
summarised by how it responds to one defect event:

* the patch's **effective distance while the event is active** (measured
  by this repository's own fig. 11(a)/(b) experiments at small d and
  expressed as a loss against the design distance), and
* whether the enlargement **blocks the communication channels** around
  the patch.

Defaults follow our measurements: an untreated defect region of span ~4
behaves like halving the remaining distance (fig. 11a's untreated
curves); ASC-S removal loses ≈ span + 2 of distance with no recovery
(fig. 11b); Q3DE's doubled patch still contains the defect region
(fig. 11a's "enlarging while retaining defects" observation);
Surf-Deformer restores the design distance within a cycle, failing only
with the equation-1 budget-overflow probability.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MethodModel", "METHODS"]

#: Defect-region span in data-qubit units (section VII-A: "size 4").
DEFECT_SPAN = 4


@dataclass(frozen=True)
class MethodModel:
    """Per-method defect response for the analytic evaluator."""

    name: str
    #: inter-patch spacing as a function of (d, delta_d)
    inter_space: str  # "d" | "2d" | "d+delta"
    #: whether enlargement spills into the channels (Q3DE on d spacing)
    blocks_channels: bool
    #: distance while a defect event is active on the patch
    event_distance: str  # "untreated" | "removal" | "enlarged_untreated" | "restored"

    def spacing(self, d: int, delta_d: int) -> int:
        if self.inter_space == "d":
            return d
        if self.inter_space == "2d":
            return 2 * d
        return d + delta_d

    def effective_distance(self, d: int, *, span: int = DEFECT_SPAN) -> float:
        """Patch distance while one defect event is active."""
        if self.event_distance == "untreated":
            # Defective region errors are ~free for the adversary: the
            # remaining distance outside the region is halved.
            return max(1.0, (d - span) / 2.0)
        if self.event_distance == "removal":
            # Super-stabilizer removal: clean code of reduced distance.
            return max(1.0, d - (span + 2))
        if self.event_distance == "enlarged_untreated":
            # Q3DE doubles the patch but keeps the defects inside.
            return max(1.0, (2 * d - span) / 2.0)
        if self.event_distance == "restored":
            return float(d)
        raise ValueError(self.event_distance)


METHODS: dict[str, MethodModel] = {
    "lattice_surgery": MethodModel(
        name="lattice_surgery",
        inter_space="d",
        blocks_channels=False,
        event_distance="untreated",
    ),
    "asc_s": MethodModel(
        name="asc_s",
        inter_space="d",
        blocks_channels=False,
        event_distance="removal",
    ),
    "q3de": MethodModel(
        name="q3de",
        inter_space="d",
        blocks_channels=True,
        event_distance="enlarged_untreated",
    ),
    "q3de_star": MethodModel(
        name="q3de_star",
        inter_space="2d",
        blocks_channels=False,
        event_distance="enlarged_untreated",
    ),
    "surf_deformer": MethodModel(
        name="surf_deformer",
        inter_space="d+delta",
        blocks_channels=False,
        event_distance="restored",
    ),
}
