"""ASC-S: the Adaptive Surface Code baseline (Siegel et al. / Lin et al.).

ASC-S mitigates every defect with the one transformation it has — the
super-stabilizer (``DataQ_RM``) — applied uniformly:

* a defective data qubit is removed with ``DataQ_RM``;
* a defective **syndrome** qubit is handled by removing all of its data
  neighbours with ``DataQ_RM`` (fig. 7a), costing distance in both bases;
* a boundary defect disables the qubit with the minimal-disable choice —
  fixing the basis that switches off the fewest checks, with no X/Z
  balancing (fig. 8a).

No distance recovery is performed (issue A.1 of the paper).
"""

from __future__ import annotations

from repro.deform.gauge import stabilizers_containing
from repro.deform.instructions import data_q_rm, patch_q_rm
from collections.abc import Iterable

from repro.surface.lattice import Coord, is_data_coord, is_face_coord
from repro.surface.patch import SurfacePatch

__all__ = ["asc_defect_removal"]


def asc_defect_removal(patch: SurfacePatch, defects: Iterable[Coord]) -> None:
    """Apply ASC-S's uniform super-stabilizer removal to ``defects``."""
    for defect in sorted(set(defects)):
        if is_face_coord(defect):
            check = patch.check_at(defect)
            patch.defective_ancillas.add(defect)
            if check is None:
                continue
            if check.pauli.weight >= 3:
                # Uniform treatment: super-stabilize away every data
                # neighbour, even though they are intact (fig. 7a).
                for q in sorted(check.pauli.support):
                    if q in patch.code.data_qubits:
                        _asc_remove_data(patch, q)
            else:
                patch_q_rm(patch, defect)
            continue
        if not is_data_coord(defect):
            raise ValueError(f"{defect} is not a lattice coordinate")
        if defect in patch.code.data_qubits:
            _asc_remove_data(patch, defect)
        else:
            patch.defective_data.add(defect)


def _asc_remove_data(patch: SurfacePatch, q: Coord) -> None:
    n_x = len(stabilizers_containing(patch.code, q, "X"))
    n_z = len(stabilizers_containing(patch.code, q, "Z"))
    if n_x != 1 and n_z != 1:
        data_q_rm(patch, q)
        return
    # Boundary: ASC-S picks the minimal-disable option — sacrifice the
    # side with the single (cheapest to drop) stabilizer, without
    # balancing X against Z (fig. 8a).
    if n_x == 1:
        patch_q_rm(patch, q, fix_basis="Z")
    else:
        patch_q_rm(patch, q, fix_basis="X")
