"""Code distance of (deformed) CSS subsystem codes.

Two independent algorithms:

* :func:`brute_force_distance` — exact coset enumeration over GF(2);
  exponential, used for small codes and as a test oracle.
* :func:`graph_distance` — the matching-graph / odd-cycle method, exact
  whenever every data qubit participates in at most two stabilizer
  generators of the detecting basis.  All codes produced by Surf-Deformer
  deformations satisfy this, because super-stabilizers absorb the merged
  plaquettes.

Conventions: the **Z-distance** is the minimum weight of a Z-type logical
operator; Z errors are detected by **X-type** stabilizers.  Symmetrically
for the X-distance.  The full code distance is ``min(dX, dZ)``.
"""

from __future__ import annotations

from itertools import combinations

import networkx as nx
import numpy as np

from repro.codes.subsystem import SubsystemCode
from repro.utils import gf2_independent_rows

__all__ = ["brute_force_distance", "graph_distance", "code_distance"]

_DETECTING_BASIS = {"Z": "X", "X": "Z"}


def brute_force_distance(code: SubsystemCode, logical_basis: str) -> int:
    """Exact dressed distance by enumerating the logical coset.

    The dressed ``logical_basis``-distance is the minimum weight of an
    operator in ``logical · <same-basis stabilizers and gauges>`` that
    commutes with all detecting-basis stabilizers.  Because the logical
    coset is an affine subspace, we enumerate
    ``logical ⊕ span(H_basis ∪ gauges)`` directly.

    Exponential in the number of same-basis generators — only use for
    codes with ≲ 20 of them.
    """
    if logical_basis not in ("X", "Z"):
        raise ValueError("logical_basis must be 'X' or 'Z'")
    order = code.qubit_order()
    index = {q: i for i, q in enumerate(order)}
    n = len(order)

    logical = code.logical_x if logical_basis == "X" else code.logical_z
    support = logical.x_support if logical_basis == "X" else logical.z_support
    logical_vec = np.zeros(n, dtype=np.uint8)
    for q in support:
        logical_vec[index[q]] = 1

    same_basis = code.parity_matrix(logical_basis, include_gauges=True)
    # Reduce to an independent generating set to bound the enumeration.
    keep = gf2_independent_rows(same_basis)
    gens = same_basis[keep]
    k = gens.shape[0]
    if k > 24:
        raise ValueError(f"brute force infeasible: {k} same-basis generators")

    best = int(logical_vec.sum())
    for r in range(1, k + 1):
        for combo in combinations(range(k), r):
            vec = logical_vec.copy()
            for idx in combo:
                vec ^= gens[idx]
            weight = int(vec.sum())
            if weight < best:
                best = weight
    return best


def detection_graph(code: SubsystemCode, logical_basis: str) -> nx.MultiGraph:
    """Matching graph of detecting-basis stabilizers.

    Vertices are the detecting-basis stabilizer generators plus a single
    virtual ``"boundary"`` vertex.  Each data qubit becomes an edge joining
    the generators whose support contains it (or the boundary when it is
    contained in exactly one).  Edges carry:

    * ``qubit`` — the data qubit label,
    * ``crossing`` — 1 when the qubit lies in the support of the tracked
      opposite-basis logical operator (used to tell logical cycles from
      stabilizer-product cycles).
    """
    det_basis = _DETECTING_BASIS[logical_basis]
    opposite_logical = code.logical_x if logical_basis == "Z" else code.logical_z
    cross_support = (
        opposite_logical.x_support if det_basis == "X" else opposite_logical.z_support
    )

    generators = [
        (name, gen.pauli)
        for name, gen in code.stabilizers.items()
        if gen.basis == det_basis
    ]
    graph = nx.MultiGraph()
    graph.add_node("boundary")
    for name, _ in generators:
        graph.add_node(name)

    incidence: dict = {q: [] for q in code.data_qubits}
    for name, pauli in generators:
        support = pauli.x_support if det_basis == "X" else pauli.z_support
        for q in support:
            if q in incidence:
                incidence[q].append(name)

    for q, names in incidence.items():
        crossing = 1 if q in cross_support else 0
        if len(names) == 2:
            graph.add_edge(names[0], names[1], qubit=q, crossing=crossing)
        elif len(names) == 1:
            graph.add_edge(names[0], "boundary", qubit=q, crossing=crossing)
        elif len(names) == 0:
            # Gauge qubit: no detecting stabilizer touches it, so errors on
            # it are pure gauge and never affect the logical.  The tracked
            # logical representative must have been rerouted off such
            # qubits by the deformation layer.
            if crossing:
                raise ValueError(
                    "logical representative passes through undetected "
                    f"qubit {q}; reroute the logical before computing "
                    "distance"
                )
        else:
            raise ValueError(
                f"qubit {q} is in {len(names)} {det_basis}-stabilizers; "
                "the matching-graph distance requires <= 2 "
                "(non-graphlike code)"
            )
    return graph


def graph_distance(code: SubsystemCode, logical_basis: str) -> int:
    """Dressed distance via minimum-weight odd ``crossing`` cycle.

    A ``logical_basis`` error chain is undetectable iff the corresponding
    edge set has even degree at every real vertex (boundary degree is
    unconstrained).  Such a chain is a logical operator iff it
    anticommutes with the opposite logical, i.e. its total ``crossing``
    label is odd.  The minimum-weight odd cycle is found in the standard
    doubled graph: layer changes on crossing edges, shortest path from
    ``(v, 0)`` to ``(v, 1)``.

    Returns ``0`` for a code with no remaining logical (should not occur)
    and raises when the code is non-graphlike.
    """
    graph = detection_graph(code, logical_basis)

    doubled = nx.Graph()
    for u, v, data in graph.edges(data=True):
        flip = data["crossing"]
        for layer in (0, 1):
            a = (u, layer)
            b = (v, layer ^ flip)
            w = 1
            if doubled.has_edge(a, b):
                continue  # parallel edges of equal weight are redundant
            doubled.add_edge(a, b, weight=w)

    best = np.inf
    for node in graph.nodes:
        source, target = (node, 0), (node, 1)
        if source not in doubled or target not in doubled:
            continue
        try:
            length = nx.shortest_path_length(
                doubled, source, target, weight="weight"
            )
        except nx.NetworkXNoPath:
            continue
        best = min(best, length)
    if np.isinf(best):
        raise ValueError(f"no {logical_basis} logical cycle found")
    return int(best)


def code_distance(code: SubsystemCode, *, exact: bool = False) -> tuple[int, int]:
    """``(X-distance, Z-distance)`` of the code.

    ``exact=True`` forces brute-force enumeration (test oracle);
    otherwise the graph method is used.
    """
    if exact:
        return (
            brute_force_distance(code, "X"),
            brute_force_distance(code, "Z"),
        )
    return graph_distance(code, "X"), graph_distance(code, "Z")
