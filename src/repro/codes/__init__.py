"""Subsystem stabilizer code formalism (section II-C of the paper)."""

from repro.codes.subsystem import Check, SubsystemCode
from repro.codes.distance import (
    brute_force_distance,
    graph_distance,
    code_distance,
)
from repro.codes.validity import (
    check_generator_representation,
    check_measurement_set,
    check_code,
    ValidityError,
)
from repro.codes.subsystem import StabilizerGenerator

__all__ = [
    "Check",
    "StabilizerGenerator",
    "SubsystemCode",
    "brute_force_distance",
    "graph_distance",
    "code_distance",
    "check_generator_representation",
    "check_measurement_set",
    "check_code",
    "ValidityError",
]
