"""Subsystem stabilizer codes with an explicit measured-operator set.

The paper (appendix A) distinguishes between

* the *generator representation* of a code — stabilizer generators,
  logical X/Z pairs and gauge X/Z pairs (Theorem 1), and
* the *measured set* ``Meas = Stab ∪ Gauge`` — the operators a syndrome
  extraction circuit actually measures each cycle (Definition 4).

:class:`SubsystemCode` tracks both.  The stabilizer group is stored via
generators; each generator carries a decomposition into measured checks so
that detectors (deterministic round-to-round comparisons) can be produced
for the simulator even when a stabilizer is only inferred from gauge
measurements (e.g. super-stabilizers).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Optional

import numpy as np

from repro.pauli import PauliOp
from repro.utils import gf2_in_rowspace, gf2_independent_rows, gf2_rank

__all__ = ["Check", "SubsystemCode"]


@dataclass(frozen=True)
class Check:
    """A measured operator: an ordinary check or a gauge operator.

    Attributes:
        pauli: the operator measured.
        ancilla: lattice coordinate of the ancilla used, or ``None`` when
            the operator is measured destructively on a data qubit
            (weight-1 gauge measurements).
        basis: ``"X"`` or ``"Z"`` — the CSS type of the operator.
        name: stable identifier used in stabilizer decompositions.
    """

    pauli: PauliOp
    basis: str
    name: str
    ancilla: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.basis not in ("X", "Z"):
            raise ValueError(f"basis must be 'X' or 'Z', got {self.basis!r}")
        expected = self.pauli.is_x_type() if self.basis == "X" else self.pauli.is_z_type()
        if not expected:
            raise ValueError(f"check {self.name} basis {self.basis} does not match pauli")


@dataclass
class StabilizerGenerator:
    """A generator of the stabilizer group with its measurement decomposition.

    ``measured_via`` lists names of :class:`Check` objects whose product
    equals ``pauli``; comparing that product across rounds yields a
    deterministic detector.
    """

    pauli: PauliOp
    basis: str
    name: str
    measured_via: tuple[str, ...]


class SubsystemCode:
    """A CSS subsystem code over labelled data qubits.

    All codes produced by Surf-Deformer deformations are CSS, so X- and
    Z-type structure is tracked separately throughout.  The single logical
    qubit's representative operators are maintained explicitly and updated
    by the deformation layer whenever their support touches removed qubits.
    """

    def __init__(
        self,
        data_qubits: Iterable,
        stabilizers: Iterable[StabilizerGenerator],
        checks: Iterable[Check],
        logical_x: PauliOp,
        logical_z: PauliOp,
    ) -> None:
        self.data_qubits: set = set(data_qubits)
        self.stabilizers: dict[str, StabilizerGenerator] = {s.name: s for s in stabilizers}
        self.checks: dict[str, Check] = {c.name: c for c in checks}
        self.logical_x = logical_x
        self.logical_z = logical_z
        self._counter = 0

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def stabilizer_ops(self, basis: str | None = None) -> list[PauliOp]:
        """Stabilizer-group generators, optionally restricted to one basis."""
        gens = self.stabilizers.values()
        if basis is None:
            return [g.pauli for g in gens]
        return [g.pauli for g in gens if g.basis == basis]

    def check_ops(self, basis: str | None = None) -> list[PauliOp]:
        """Measured operators, optionally restricted to one basis."""
        checks = self.checks.values()
        if basis is None:
            return [c.pauli for c in checks]
        return [c.pauli for c in checks if c.basis == basis]

    def gauge_ops(self, basis: str | None = None) -> list[PauliOp]:
        """Measured operators that are *not* themselves stabilizer generators.

        These are the gauge operators: their individual outcomes are random
        round to round, only the products listed in stabilizer
        decompositions are deterministic.
        """
        stab_names = {
            name for gen in self.stabilizers.values() if len(gen.measured_via) == 1
            for name in gen.measured_via
        }
        result = []
        for name, check in self.checks.items():
            if name in stab_names:
                continue
            if basis is not None and check.basis != basis:
                continue
            result.append(check.pauli)
        return result

    @property
    def n(self) -> int:
        """Number of data qubits."""
        return len(self.data_qubits)

    def qubit_order(self) -> list:
        """Deterministic ordering of data qubits for dense linear algebra."""
        return sorted(self.data_qubits)

    # ------------------------------------------------------------------
    # Dense matrices for analysis
    # ------------------------------------------------------------------
    def parity_matrix(self, basis: str, *, include_gauges: bool = False) -> np.ndarray:
        """Support matrix of stabilizer generators (rows) over data qubits.

        With ``include_gauges`` the measured gauge operators of the same
        basis are appended as extra rows (used for dressed-logical coset
        computations).
        """
        order = self.qubit_order()
        index = {q: i for i, q in enumerate(order)}
        ops = self.stabilizer_ops(basis)
        if include_gauges:
            ops = ops + self.gauge_ops(basis)
        mat = np.zeros((len(ops), len(order)), dtype=np.uint8)
        for r, op in enumerate(ops):
            support = op.x_support if basis == "X" else op.z_support
            for q in support:
                if q in index:
                    mat[r, index[q]] = 1
        return mat

    # ------------------------------------------------------------------
    # Membership / sanity helpers
    # ------------------------------------------------------------------
    def is_stabilizer(self, op: PauliOp) -> bool:
        """Whether ``op`` lies in the stabilizer group (CSS, phase-free)."""
        if not (op.is_x_type() or op.is_z_type()):
            return False
        basis = "X" if op.is_x_type() else "Z"
        order = self.qubit_order()
        index = {q: i for i, q in enumerate(order)}
        vec = np.zeros(len(order), dtype=np.uint8)
        support = op.x_support if basis == "X" else op.z_support
        for q in support:
            if q not in index:
                return False
            vec[index[q]] = 1
        return gf2_in_rowspace(self.parity_matrix(basis), vec)

    def fresh_name(self, prefix: str) -> str:
        """A name unused by any current check or stabilizer."""
        while True:
            self._counter += 1
            name = f"{prefix}_{self._counter}"
            if name not in self.checks and name not in self.stabilizers:
                return name

    def copy(self) -> "SubsystemCode":
        """Independent deep-enough copy (Pauli ops are immutable)."""
        clone = SubsystemCode(
            data_qubits=set(self.data_qubits),
            stabilizers=[replace(s) for s in self.stabilizers.values()],
            checks=list(self.checks.values()),
            logical_x=self.logical_x,
            logical_z=self.logical_z,
        )
        clone._counter = self._counter
        return clone

    # ------------------------------------------------------------------
    # Invariant counts
    # ------------------------------------------------------------------
    def num_gauge_qubits(self) -> int:
        """l = n - k - (number of independent stabilizer generators), k=1."""
        order = self.qubit_order()
        rows = [g.pauli.to_symplectic(order) for g in self.stabilizers.values()]
        if not rows:
            return self.n - 1
        rank = gf2_rank(np.array(rows))
        return self.n - 1 - rank

    def independent_stabilizer_names(self) -> list[str]:
        """Names of a maximal independent subset of stabilizer generators."""
        names = list(self.stabilizers)
        order = self.qubit_order()
        rows = np.array(
            [self.stabilizers[n].pauli.to_symplectic(order) for n in names],
            dtype=np.uint8,
        )
        keep = gf2_independent_rows(rows)
        return [names[i] for i in keep]

    def __repr__(self) -> str:
        return (
            f"SubsystemCode(n={self.n}, stabilizers={len(self.stabilizers)}, "
            f"checks={len(self.checks)})"
        )
