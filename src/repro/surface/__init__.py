"""Rotated surface code patches on a 2D lattice (section II-A)."""

from repro.surface.lattice import (
    face_neighbors,
    face_type,
    is_data_coord,
    is_face_coord,
    data_coords,
    face_coords,
)
from repro.surface.patch import (
    SurfacePatch,
    rotated_surface_code,
    rotated_rect_patch,
    check_name,
)

__all__ = [
    "SurfacePatch",
    "rotated_surface_code",
    "rotated_rect_patch",
    "check_name",
    "face_neighbors",
    "face_type",
    "is_data_coord",
    "is_face_coord",
    "data_coords",
    "face_coords",
]
