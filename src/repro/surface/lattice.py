"""Lattice geometry for rotated surface codes.

Doubled-coordinate convention (matching Stim's generated circuits):

* data qubits sit at odd-odd coordinates ``(2i+1, 2j+1)``,
* check (syndrome) ancillas sit at even-even *face* coordinates
  ``(2a, 2b)``,
* a face at ``(2a, 2b)`` touches the (up to four) data qubits at
  ``(2a±1, 2b±1)``.

For a distance-``d`` patch with origin ``(0, 0)`` the data qubits span
``x, y ∈ {1, 3, …, 2d−1}``.  The checkerboard colouring assigns a face
index ``(a, b)`` type ``X`` when ``a+b`` is odd and ``Z`` when even.
X-type half-checks live on the north/south boundaries (``b = 0, d``) and
Z-type on the west/east (``a = 0, d``), so:

* the **Z logical** is a horizontal row (terminates on west/east), and
* the **X logical** is a vertical column (terminates on north/south).
"""

from __future__ import annotations

from typing import Iterator

Coord = tuple[int, int]

__all__ = [
    "face_neighbors",
    "face_type",
    "is_data_coord",
    "is_face_coord",
    "data_coords",
    "face_coords",
]


def is_data_coord(coord: Coord) -> bool:
    """Whether ``coord`` is an odd-odd (data qubit) lattice site."""
    x, y = coord
    return x % 2 == 1 and y % 2 == 1


def is_face_coord(coord: Coord) -> bool:
    """Whether ``coord`` is an even-even (face / ancilla) lattice site."""
    x, y = coord
    return x % 2 == 0 and y % 2 == 0


def face_type(coord: Coord) -> str:
    """CSS type of the face at even-even ``coord``: ``"X"`` or ``"Z"``."""
    if not is_face_coord(coord):
        raise ValueError(f"{coord} is not a face coordinate")
    a, b = coord[0] // 2, coord[1] // 2
    return "X" if (a + b) % 2 == 1 else "Z"


def face_neighbors(coord: Coord) -> list[Coord]:
    """The four diagonal data-qubit sites around a face (unclipped)."""
    x, y = coord
    return [(x - 1, y - 1), (x - 1, y + 1), (x + 1, y - 1), (x + 1, y + 1)]


def data_coords(d: int, origin: Coord = (0, 0)) -> Iterator[Coord]:
    """All data-qubit coordinates of a distance-``d`` patch at ``origin``."""
    ox, oy = origin
    for i in range(d):
        for j in range(d):
            yield (ox + 2 * i + 1, oy + 2 * j + 1)


def face_coords(d: int, origin: Coord = (0, 0)) -> Iterator[Coord]:
    """Face coordinates of the checks used by a distance-``d`` patch.

    Yields interior faces plus the boundary half-check faces selected by
    the north/south-X, west/east-Z convention.
    """
    ox, oy = origin
    for a in range(d + 1):
        for b in range(d + 1):
            interior = 0 < a < d and 0 < b < d
            ftype_is_x = (a + b) % 2 == 1
            if interior:
                yield (ox + 2 * a, oy + 2 * b)
            elif (b == 0 or b == d) and 0 < a < d and ftype_is_x:
                yield (ox + 2 * a, oy + 2 * b)
            elif (a == 0 or a == d) and 0 < b < d and not ftype_is_x:
                yield (ox + 2 * a, oy + 2 * b)


def clipped_face_neighbors(coord: Coord, data: set[Coord]) -> list[Coord]:
    """Face neighbours restricted to an existing data-qubit set."""
    return [q for q in face_neighbors(coord) if q in data]
