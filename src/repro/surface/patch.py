"""Surface code patch construction and geometric bookkeeping.

A :class:`SurfacePatch` couples a :class:`~repro.codes.SubsystemCode`
with the lattice geometry the deformation instructions reason about:
which qubits are interior / boundary / corner, which side of the patch a
boundary qubit lies on, and which qubits have been removed so far.
"""

from __future__ import annotations

from repro.codes import Check, StabilizerGenerator, SubsystemCode
from repro.pauli import PauliOp
from repro.surface.lattice import (
    Coord,
    face_neighbors,
    face_type,
    is_data_coord,
    is_face_coord,
)

__all__ = ["SurfacePatch", "rotated_surface_code", "check_name"]


def check_name(basis: str, coord: Coord) -> str:
    """Canonical check name for a face: e.g. ``"X:4,2"``."""
    return f"{basis}:{coord[0]},{coord[1]}"


def rotated_surface_code(d: int, origin: Coord = (0, 0)) -> "SurfacePatch":
    """Build a distance-``d`` rotated surface code patch.

    ``origin`` must have both coordinates even; a ``(0, 0)``-style origin
    with both coordinates ≡ 0 (mod 4) keeps the conventional colouring.
    """
    return rotated_rect_patch(d, d, origin, target_d=d)


def rotated_rect_patch(
    width: int, height: int, origin: Coord = (0, 0), *, target_d: int | None = None
) -> "SurfacePatch":
    """Build a ``width × height`` rotated surface code rectangle.

    The Z-distance equals ``width`` (west–east extent) and the X-distance
    ``height``.  Boundary half-checks follow the global convention:
    X-type on the north/south rims, Z-type on the west/east rims, with
    face types taken from the absolute checkerboard colouring so that
    patches built at different (even) origins tile consistently.
    """
    if width < 2 or height < 2:
        raise ValueError("patch extents must be >= 2")
    ox, oy = origin
    if ox % 2 or oy % 2:
        raise ValueError("patch origin coordinates must be even")

    data = {
        (ox + 2 * i + 1, oy + 2 * j + 1)
        for i in range(width)
        for j in range(height)
    }
    min_x, max_x = ox + 1, ox + 2 * width - 1
    min_y, max_y = oy + 1, oy + 2 * height - 1

    faces: list[Coord] = []
    for fx in range(ox, ox + 2 * width + 1, 2):
        for fy in range(oy, oy + 2 * height + 1, 2):
            support = [q for q in face_neighbors((fx, fy)) if q in data]
            if len(support) == 4:
                faces.append((fx, fy))
            elif len(support) == 2:
                basis = face_type((fx, fy))
                on_ns = fy in (oy, oy + 2 * height)
                on_we = fx in (ox, ox + 2 * width)
                if on_ns and not on_we and basis == "X":
                    faces.append((fx, fy))
                elif on_we and not on_ns and basis == "Z":
                    faces.append((fx, fy))

    checks: list[Check] = []
    stabilizers: list[StabilizerGenerator] = []
    for face in faces:
        basis = face_type(face)
        support = [q for q in face_neighbors(face) if q in data]
        pauli = PauliOp.x_on(support) if basis == "X" else PauliOp.z_on(support)
        name = check_name(basis, face)
        checks.append(Check(pauli=pauli, basis=basis, name=name, ancilla=face))
        stabilizers.append(
            StabilizerGenerator(pauli=pauli, basis=basis, name=name, measured_via=(name,))
        )

    logical_z = PauliOp.z_on([(x, min_y) for x in range(min_x, max_x + 1, 2)])
    logical_x = PauliOp.x_on([(min_x, y) for y in range(min_y, max_y + 1, 2)])

    code = SubsystemCode(
        data_qubits=data,
        stabilizers=stabilizers,
        checks=checks,
        logical_x=logical_x,
        logical_z=logical_z,
    )
    return SurfacePatch(
        code=code, d=target_d if target_d is not None else min(width, height),
        origin=origin,
    )


class SurfacePatch:
    """A surface code patch with geometric classification helpers.

    Attributes:
        code: the underlying subsystem code (mutated by deformations).
        d: the patch's *target* code distance (original design distance).
        origin: lattice origin of the patch.
        defective_data: persistent memory of known-bad data positions
            (whether or not currently inside the patch footprint).
        defective_ancillas: persistent memory of known-bad face positions.
    """

    def __init__(self, code: SubsystemCode, d: int, origin: Coord) -> None:
        self.code = code
        self.d = d
        self.origin = origin
        self.defective_data: set[Coord] = set()
        self.defective_ancillas: set[Coord] = set()
        # Design footprint over data coordinates; grows monotonically with
        # PatchQ_ADD so defect removal inside a layer cannot shrink it.
        self.footprint: tuple[int, int, int, int] = self.bounds()

    def copy(self) -> "SurfacePatch":
        """Independent copy (used by balancing trials)."""
        clone = SurfacePatch(code=self.code.copy(), d=self.d, origin=self.origin)
        clone.defective_data = set(self.defective_data)
        clone.defective_ancillas = set(self.defective_ancillas)
        clone.footprint = self.footprint
        return clone

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounds(self) -> tuple[int, int, int, int]:
        """``(min_x, min_y, max_x, max_y)`` over active data qubits."""
        xs = [q[0] for q in self.code.data_qubits]
        ys = [q[1] for q in self.code.data_qubits]
        return min(xs), min(ys), max(xs), max(ys)

    def ancilla_coords(self) -> set[Coord]:
        """Face coordinates of all ancillas currently in use."""
        return {
            c.ancilla for c in self.code.checks.values() if c.ancilla is not None
        }

    def all_qubit_coords(self) -> set[Coord]:
        """Active data plus ancilla coordinates (physical qubit footprint)."""
        return set(self.code.data_qubits) | self.ancilla_coords()

    def physical_qubit_count(self) -> int:
        """Total physical qubits (data + ancilla) the patch occupies."""
        return len(self.all_qubit_coords())

    # ------------------------------------------------------------------
    # Classification (inputs to Algorithm 1)
    # ------------------------------------------------------------------
    def data_sides(self, coord: Coord) -> set[str]:
        """Boundary sides (``n/s/w/e``) that an active data qubit lies on.

        Empty set ⇒ interior.  Two sides ⇒ corner.  Classification is
        against the current bounding box, which tracks boundary
        deformation as qubits are removed or added.
        """
        min_x, min_y, max_x, max_y = self.bounds()
        sides = set()
        x, y = coord
        if x == min_x:
            sides.add("w")
        if x == max_x:
            sides.add("e")
        if y == min_y:
            sides.add("s")
        if y == max_y:
            sides.add("n")
        return sides

    def classify(self, coord: Coord) -> tuple[str, str]:
        """``(kind, region)`` of a defective physical qubit.

        ``kind`` is ``"data"`` or ``"syndrome"``; ``region`` is
        ``"interior"``, ``"edge_x"`` (north/south, X half-check edges),
        ``"edge_z"`` (west/east) or ``"corner"``.
        """
        if is_data_coord(coord):
            if coord not in self.code.data_qubits:
                raise ValueError(f"{coord} is not an active data qubit")
            sides = self.data_sides(coord)
            return "data", _region_from_sides(sides)
        if is_face_coord(coord):
            weight = self._ancilla_check_weight(coord)
            if weight is None:
                raise ValueError(f"{coord} is not an active ancilla")
            region = "interior" if weight >= 4 else self._boundary_face_region(coord)
            return "syndrome", region
        raise ValueError(f"{coord} is not a lattice qubit coordinate")

    def _ancilla_check_weight(self, coord: Coord) -> int | None:
        for check in self.code.checks.values():
            if check.ancilla == coord:
                return check.pauli.weight
        return None

    def _boundary_face_region(self, coord: Coord) -> str:
        basis = face_type(coord)
        return "edge_x" if basis == "X" else "edge_z"

    def check_at(self, coord: Coord) -> Check | None:
        """The check whose ancilla sits at ``coord``, if any."""
        for check in self.code.checks.values():
            if check.ancilla == coord:
                return check
        return None

    def checks_on(self, coord: Coord, basis: str | None = None) -> list[Check]:
        """Checks whose support contains the data qubit ``coord``."""
        result = []
        for check in self.code.checks.values():
            if basis is not None and check.basis != basis:
                continue
            if coord in check.pauli.support:
                result.append(check)
        return result

    def stabilizers_on(
        self, coord: Coord, basis: str | None = None
    ) -> list:
        """Stabilizer generators whose support contains ``coord``."""
        result = []
        for gen in self.code.stabilizers.values():
            if basis is not None and gen.basis != basis:
                continue
            if coord in gen.pauli.support:
                result.append(gen)
        return result

    def __repr__(self) -> str:
        return (
            f"SurfacePatch(d={self.d}, origin={self.origin}, "
            f"n_data={len(self.code.data_qubits)}, "
            f"defective={len(self.defective_data)})"
        )


def _region_from_sides(sides: set[str]) -> str:
    if not sides:
        return "interior"
    if len(sides) >= 2:
        return "corner"
    side = next(iter(sides))
    return "edge_x" if side in ("n", "s") else "edge_z"
