"""Circuit-level noise models (section VII-A).

The paper's physical error model associates probability ``p = 1e-3`` with
single-qubit depolarizing after one-qubit gates, two-qubit depolarizing
after two-qubit gates, and X flips on measurement and reset.  Dynamic
defects raise the local error rate of affected qubits to ``p_defect ≈
0.5`` for the duration of the event; fig. 14(a)'s robustness study
varies the two-qubit (correlated) error rate independently.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NoiseModel"]


@dataclass(frozen=True)
class NoiseModel:
    """Parameters of the circuit-level error model.

    Attributes:
        p1: depolarizing probability after single-qubit gates.
        p2: depolarizing probability after two-qubit gates (the
            "correlated" error rate of fig. 14a).
        p_meas: X-flip probability on measurement.
        p_reset: X-flip probability after reset.
        p_data_round: per-round depolarizing on idle data qubits.
        p_defect: per-round depolarizing probability applied to qubits
            inside an untreated defect region (≈ 0.5 in the paper).
        defect_meas_flip: outcome-flip probability of a defective
            ancilla's measurement.
    """

    p1: float = 1e-3
    p2: float = 1e-3
    p_meas: float = 1e-3
    p_reset: float = 1e-3
    p_data_round: float = 1e-3
    p_defect: float = 0.5
    defect_meas_flip: float = 0.5

    @classmethod
    def uniform(cls, p: float) -> "NoiseModel":
        """The paper's standard model with every channel at ``p``."""
        return cls(p1=p, p2=p, p_meas=p, p_reset=p, p_data_round=p)

    def with_correlated(self, p2: float) -> "NoiseModel":
        """fig. 14(a): scale only the two-qubit correlated error rate."""
        return NoiseModel(
            p1=self.p1,
            p2=p2,
            p_meas=self.p_meas,
            p_reset=self.p_reset,
            p_data_round=self.p_data_round,
            p_defect=self.p_defect,
            defect_meas_flip=self.defect_meas_flip,
        )
