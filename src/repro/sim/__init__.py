"""Clifford stabilizer-circuit simulation (the Stim substitute).

Pauli-frame sampling is exactly equivalent to full stabilizer simulation
for sampling detector and observable outcomes of Clifford circuits with
Pauli noise, which covers every experiment in the paper.
"""

from repro.sim.circuit import Circuit, GateTarget
from repro.sim.frame import FrameSampler, sample_detectors
from repro.sim.dem import DetectorErrorModel, ErrorMechanism, build_dem
from repro.sim.noise import NoiseModel
from repro.sim.syndrome import memory_circuit
from repro.utils.gf2 import PackedBits

__all__ = [
    "Circuit",
    "GateTarget",
    "FrameSampler",
    "sample_detectors",
    "PackedBits",
    "DetectorErrorModel",
    "ErrorMechanism",
    "build_dem",
    "NoiseModel",
    "memory_circuit",
]
