"""Syndrome-extraction circuit generation for arbitrary (deformed) codes.

Generates a memory experiment in a chosen basis for any
:class:`~repro.codes.SubsystemCode`, including codes produced by
Surf-Deformer instructions:

* ordinary checks are measured through their ancilla (reset, optional
  basis change, CNOT ladder, measure);
* weight-1 gauge operators (from ``SyndromeQ_RM``) are measured directly
  on the data qubit;
* detectors compare, between consecutive rounds, the product of measured
  checks listed in each stabilizer generator's ``measured_via`` — so
  super-stabilizers inferred from gauge measurements produce
  deterministic detectors even though the individual gauge outcomes are
  random.

Untreated defective qubits (the "no treatment" baseline of fig. 11a)
receive extra per-round depolarizing noise at the defect rate, and
defective ancillas produce near-random outcomes.
"""

from __future__ import annotations

from repro.codes import SubsystemCode
from repro.sim.circuit import Circuit
from repro.sim.noise import NoiseModel

__all__ = ["memory_circuit"]


def memory_circuit(
    code: SubsystemCode,
    basis: str,
    rounds: int,
    noise: NoiseModel,
    *,
    defective_data: set | None = None,
    defective_ancillas: set | None = None,
) -> Circuit:
    """Build a ``basis``-memory experiment circuit for ``code``.

    The data qubits are initialised in the ``basis`` eigenbasis, syndrome
    extraction runs for ``rounds`` rounds, and the data qubits are
    measured out in ``basis``; the logical observable is the tracked
    ``basis`` logical operator.  Detectors are defined for ``basis``-type
    stabilizer generators only (the ones protecting that observable).

    ``defective_data`` / ``defective_ancillas`` inject the paper's defect
    noise on qubits that are still part of the code (the untreated
    baseline); qubits the deformation removed are simply absent.
    """
    if basis not in ("X", "Z"):
        raise ValueError("basis must be 'X' or 'Z'")
    defective_data = set(defective_data or ())
    defective_ancillas = set(defective_ancillas or ())

    data_order = code.qubit_order()
    index: dict = {q: i for i, q in enumerate(data_order)}
    next_index = len(data_order)
    ancilla_index: dict = {}
    for check in code.checks.values():
        if check.ancilla is not None:
            ancilla_index[check.name] = next_index
            next_index += 1

    circuit = Circuit()
    data_ids = [index[q] for q in data_order]

    # --- initialisation -------------------------------------------------
    if basis == "Z":
        circuit.reset(*data_ids)
        circuit.x_error(noise.p_reset, *data_ids)
    else:
        circuit.reset_x(*data_ids)
        circuit.z_error(noise.p_reset, *data_ids)

    check_names = sorted(code.checks)
    # measurement record index of each check, per round
    last_round_records: dict[str, int] = {}
    generators = [g for g in code.stabilizers.values() if g.basis == basis]

    for rnd in range(rounds):
        circuit.depolarize1(noise.p_data_round, *data_ids)
        bad_data = [index[q] for q in defective_data if q in index]
        if bad_data:
            circuit.depolarize1(noise.p_defect, *bad_data)

        this_round_records: dict[str, int] = {}
        for name in check_names:
            check = code.checks[name]
            rec = _measure_check(
                circuit,
                check,
                index,
                ancilla_index,
                noise,
                defective=check.ancilla in defective_ancillas,
            )
            this_round_records[name] = rec

        for gen in generators:
            recs = [this_round_records[n] for n in gen.measured_via]
            if rnd == 0:
                # First-round outcome is deterministic for same-basis
                # generators given the product-state initialisation.
                circuit.detector(recs)
            else:
                prev = [last_round_records[n] for n in gen.measured_via]
                circuit.detector(recs + prev)
        last_round_records = this_round_records

    # --- final data measurement -----------------------------------------
    if basis == "Z":
        circuit.x_error(noise.p_meas, *data_ids)
        final = circuit.measure(*data_ids)
    else:
        circuit.z_error(noise.p_meas, *data_ids)
        final = circuit.measure_x(*data_ids)
    final_rec = {q: final[i] for i, q in enumerate(data_order)}

    for gen in generators:
        support = gen.pauli.x_support if basis == "X" else gen.pauli.z_support
        recs = [final_rec[q] for q in support]
        recs += [last_round_records[n] for n in gen.measured_via]
        circuit.detector(recs)

    logical = code.logical_x if basis == "X" else code.logical_z
    support = logical.x_support if basis == "X" else logical.z_support
    circuit.observable([final_rec[q] for q in support])
    return circuit


# CNOT ladder orders (offsets from the ancilla), chosen so that the
# weight-2 "hook" error a mid-ladder ancilla fault creates is aligned
# *across* the logical operator it threatens rather than along it — the
# standard zigzag schedule of rotated-surface-code circuits.  Without
# this the effective circuit-level distance halves.
_ORDER_X = [(1, 1), (-1, 1), (1, -1), (-1, -1)]
_ORDER_Z = [(1, 1), (1, -1), (-1, 1), (-1, -1)]


def _ladder_order(check) -> list:
    """Support of ``check`` in hook-safe measurement order."""
    support = set(check.pauli.support)
    if check.ancilla is None:
        return sorted(support)
    ax, ay = check.ancilla
    offsets = _ORDER_X if check.basis == "X" else _ORDER_Z
    ordered = [
        (ax + dx, ay + dy) for dx, dy in offsets if (ax + dx, ay + dy) in support
    ]
    if len(ordered) == len(support):
        return ordered
    # Deformed checks (e.g. truncated supports not adjacent to the
    # ancilla) fall back to a deterministic order.
    return sorted(support)


def _measure_check(
    circuit: Circuit,
    check,
    index: dict,
    ancilla_index: dict,
    noise: NoiseModel,
    *,
    defective: bool,
) -> int:
    """Emit one check measurement; returns the record index."""
    support = _ladder_order(check)
    flip_p = noise.defect_meas_flip if defective else noise.p_meas

    if check.ancilla is None:
        # Direct single-qubit gauge measurement on the data qubit.
        (q,) = support
        qid = index[q]
        if check.basis == "X":
            circuit.z_error(flip_p, qid)
            (rec,) = circuit.measure_x(qid)
        else:
            circuit.x_error(flip_p, qid)
            (rec,) = circuit.measure(qid)
        return rec

    anc = ancilla_index[check.name]
    circuit.reset(anc)
    circuit.x_error(noise.p_reset, anc)
    if check.basis == "X":
        circuit.h(anc)
        circuit.depolarize1(noise.p1, anc)
        for q in support:
            circuit.cx(anc, index[q])
            circuit.depolarize2(noise.p2, anc, index[q])
        circuit.h(anc)
        circuit.depolarize1(noise.p1, anc)
    else:
        for q in support:
            circuit.cx(index[q], anc)
            circuit.depolarize2(noise.p2, index[q], anc)
    circuit.x_error(flip_p, anc)
    (rec,) = circuit.measure(anc)
    return rec
