"""A minimal Clifford circuit IR with Pauli noise and detector annotations.

Supported operations (all the paper's experiments need):

=============== =========================================================
``H``            Hadamard on each target qubit
``CX``           CNOTs on (control, target) pairs
``R`` / ``RX``   reset to ``|0⟩`` / ``|+⟩``
``M`` / ``MX``   destructive-free measurement in the Z / X basis
``X_ERROR``      independent X flip with probability ``arg``
``Z_ERROR``      independent Z flip with probability ``arg``
``DEPOLARIZE1``  single-qubit depolarizing channel, probability ``arg``
``DEPOLARIZE2``  two-qubit depolarizing channel on pairs, prob ``arg``
``DETECTOR``     XOR of absolute measurement indices (deterministic
                 without noise)
``OBSERVABLE``   XOR of absolute measurement indices defining a logical
                 observable
=============== =========================================================

Qubits are dense integer indices; the syndrome-circuit generator keeps a
coordinate↔index map.  Measurement indices are absolute (0-based in
program order), which keeps detector bookkeeping simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

GateTarget = int

_GATES_1Q = {"H", "R", "RX", "M", "MX", "X_ERROR", "Z_ERROR", "DEPOLARIZE1"}
_GATES_2Q = {"CX", "DEPOLARIZE2"}
_ANNOTATIONS = {"DETECTOR", "OBSERVABLE"}

__all__ = ["Circuit", "Instruction", "GateTarget"]


@dataclass(frozen=True)
class Instruction:
    """One circuit operation."""

    name: str
    targets: tuple[int, ...]
    arg: float = 0.0


@dataclass
class Circuit:
    """An ordered list of instructions plus measurement bookkeeping."""

    instructions: list[Instruction] = field(default_factory=list)
    num_qubits: int = 0
    num_measurements: int = 0
    num_detectors: int = 0
    num_observables: int = 0

    def append(self, name: str, targets: Sequence[int], arg: float = 0.0) -> None:
        """Append an operation, updating counters and validating shape."""
        targets = tuple(int(t) for t in targets)
        if name in _GATES_2Q:
            if len(targets) % 2:
                raise ValueError(f"{name} needs an even number of targets")
        elif name not in _GATES_1Q and name not in _ANNOTATIONS:
            raise ValueError(f"unknown instruction {name!r}")
        if name in _ANNOTATIONS:
            for t in targets:
                if t >= self.num_measurements:
                    raise ValueError(
                        f"{name} references measurement {t} before it happens"
                    )
        else:
            self.num_qubits = max(self.num_qubits, max(targets, default=-1) + 1)
        if name in ("M", "MX"):
            self.num_measurements += len(targets)
        if name == "DETECTOR":
            self.num_detectors += 1
        if name == "OBSERVABLE":
            self.num_observables += 1
        self.instructions.append(Instruction(name, targets, arg))

    # Convenience wrappers keep the syndrome generator readable.
    def h(self, *qubits: int) -> None:
        self.append("H", qubits)

    def cx(self, *qubits: int) -> None:
        self.append("CX", qubits)

    def reset(self, *qubits: int) -> None:
        self.append("R", qubits)

    def reset_x(self, *qubits: int) -> None:
        self.append("RX", qubits)

    def measure(self, *qubits: int) -> list[int]:
        """Z-basis measurement; returns the absolute record indices."""
        start = self.num_measurements
        self.append("M", qubits)
        return list(range(start, start + len(qubits)))

    def measure_x(self, *qubits: int) -> list[int]:
        start = self.num_measurements
        self.append("MX", qubits)
        return list(range(start, start + len(qubits)))

    def x_error(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("X_ERROR", qubits, p)

    def z_error(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("Z_ERROR", qubits, p)

    def depolarize1(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("DEPOLARIZE1", qubits, p)

    def depolarize2(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("DEPOLARIZE2", qubits, p)

    def detector(self, records: Iterable[int]) -> int:
        """Define a detector over absolute measurement indices."""
        index = self.num_detectors
        self.append("DETECTOR", tuple(records))
        return index

    def observable(self, records: Iterable[int]) -> int:
        index = self.num_observables
        self.append("OBSERVABLE", tuple(records))
        return index

    def noise_instructions(self) -> list[tuple[int, Instruction]]:
        """(position, instruction) of every stochastic channel."""
        return [
            (i, inst)
            for i, inst in enumerate(self.instructions)
            if inst.name in ("X_ERROR", "Z_ERROR", "DEPOLARIZE1", "DEPOLARIZE2")
            and inst.arg > 0
        ]

    def __len__(self) -> int:
        return len(self.instructions)
