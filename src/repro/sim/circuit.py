"""A minimal Clifford circuit IR with Pauli noise and detector annotations.

Supported operations (all the paper's experiments need):

=============== =========================================================
``H``            Hadamard on each target qubit
``CX``           CNOTs on (control, target) pairs
``R`` / ``RX``   reset to ``|0⟩`` / ``|+⟩``
``M`` / ``MX``   destructive-free measurement in the Z / X basis
``X_ERROR``      independent X flip with probability ``arg``
``Z_ERROR``      independent Z flip with probability ``arg``
``DEPOLARIZE1``  single-qubit depolarizing channel, probability ``arg``
``DEPOLARIZE2``  two-qubit depolarizing channel on pairs, prob ``arg``
``DETECTOR``     XOR of absolute measurement indices (deterministic
                 without noise)
``OBSERVABLE``   XOR of absolute measurement indices defining a logical
                 observable
=============== =========================================================

Qubits are dense integer indices; the syndrome-circuit generator keeps a
coordinate↔index map.  Measurement indices are absolute (0-based in
program order), which keeps detector bookkeeping simple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

GateTarget = int

_GATES_1Q = {"H", "R", "RX", "M", "MX", "X_ERROR", "Z_ERROR", "DEPOLARIZE1"}
_GATES_2Q = {"CX", "DEPOLARIZE2"}
_ANNOTATIONS = {"DETECTOR", "OBSERVABLE"}
_NOISE = {"X_ERROR", "Z_ERROR", "DEPOLARIZE1", "DEPOLARIZE2"}

__all__ = ["Circuit", "CompiledCircuit", "CompiledOp", "Instruction", "GateTarget"]


@dataclass(frozen=True)
class Instruction:
    """One circuit operation."""

    name: str
    targets: tuple[int, ...]
    arg: float = 0.0


@dataclass(frozen=True)
class CompiledOp:
    """One step of a compiled program: an op kind plus gather indices.

    ``targets`` / ``targets2`` are precomputed ``intp`` index arrays:
    for ``CX`` they are the (controls, targets) columns, for
    ``DEPOLARIZE2`` the (first, second) qubits of each pair; other ops
    use only ``targets``.  ``position`` is the instruction index of the
    first fused instruction (noise ops are never fused, so a noise op's
    ``position`` is exactly its instruction index — the anchor used for
    fault-injection scheduling).  ``m_start`` is the absolute record
    index written by a measurement op.
    """

    kind: str
    targets: np.ndarray
    targets2: np.ndarray | None = None
    arg: float = 0.0
    position: int = 0
    m_start: int = 0
    #: Row index into the compiled sparse-noise tables (noise ops only).
    noise_slot: int = -1
    #: Scalar qubit indices for single-target specialized kinds
    #: ("H1"/"R1"/"M1"/"MX1"/"CX1"), letting the engine use basic row
    #: views instead of fancy-index gather copies.
    t1: int = -1
    t2: int = -1


@dataclass(frozen=True)
class CompiledCircuit:
    """A circuit lowered to numpy-indexable form, built once and cached.

    The instruction list is fused into a compact program:

    * gate/noise ops become :class:`CompiledOp` entries with
      ready-to-use index arrays (no per-shot Python target parsing);
      runs of consecutive ``R``/``RX`` (idempotent zeroing), same-kind
      measurements (contiguous record slices) and disjoint ``H``
      instructions are merged into single ops;
    * ``DETECTOR``/``OBSERVABLE`` annotations leave the op stream
      entirely and become a sparse CSR map from measurement records to
      detector/observable bits (``*_indices``/``*_offsets``), applied
      in one pass after propagation.  Annotations with no records
      reference the all-zero dummy record row ``num_measurements``, so
      every CSR group is non-empty.

    ``op_positions`` is the (sorted) original instruction index of each
    op, used to schedule Pauli injections "before instruction ``pos``"
    onto the fused stream.  ``noise_slots``/``noise_probs`` tabulate the
    per-shot Bernoulli trial count and probability of every noise op
    (indexed by ``CompiledOp.noise_slot``), so a sampler can draw all
    Binomial flip counts for a run in one vectorised call.
    """

    num_qubits: int
    num_measurements: int
    num_detectors: int
    num_observables: int
    ops: tuple[CompiledOp, ...]
    op_positions: np.ndarray
    det_indices: np.ndarray
    det_offsets: np.ndarray
    obs_indices: np.ndarray
    obs_offsets: np.ndarray
    noise_slots: np.ndarray
    noise_probs: np.ndarray
    #: Uniform draws consumed per flip (2 when a Pauli letter is also
    #: drawn — depolarizing channels — else 1), per noise op.
    noise_umult: np.ndarray


def _fuse(ops: list[CompiledOp]) -> list[CompiledOp]:
    """Merge adjacent ops where the combined gather is equivalent."""
    fused: list[CompiledOp] = []
    for op in ops:
        prev = fused[-1] if fused else None
        if prev is not None and prev.kind == op.kind:
            if op.kind == "R":
                # Zeroing is idempotent: duplicates between runs are fine.
                fused[-1] = CompiledOp(
                    "R",
                    np.unique(np.concatenate([prev.targets, op.targets])),
                    position=prev.position,
                )
                continue
            if op.kind in ("M", "MX") and (
                op.m_start == prev.m_start + len(prev.targets)
            ):
                fused[-1] = CompiledOp(
                    op.kind,
                    np.concatenate([prev.targets, op.targets]),
                    position=prev.position,
                    m_start=prev.m_start,
                )
                continue
            if op.kind == "H":
                merged = np.concatenate([prev.targets, op.targets])
                if len(np.unique(merged)) == len(merged):  # disjoint only
                    fused[-1] = CompiledOp("H", merged, position=prev.position)
                    continue
        fused.append(op)
    return fused


def _csr_wiring(
    groups: list[tuple[int, ...]], dummy: int
) -> tuple[np.ndarray, np.ndarray]:
    """(indices, offsets) CSR arrays; empty groups point at ``dummy``."""
    indices: list[int] = []
    offsets = [0]
    for g in groups:
        indices.extend(g if g else (dummy,))
        offsets.append(len(indices))
    return (
        np.asarray(indices, dtype=np.intp),
        np.asarray(offsets, dtype=np.intp),
    )


def compile_circuit(circuit: "Circuit") -> CompiledCircuit:
    """Lower ``circuit`` to a :class:`CompiledCircuit` program."""
    ops: list[CompiledOp] = []
    detectors: list[tuple[int, ...]] = []
    observables: list[tuple[int, ...]] = []
    m_idx = 0
    for pos, inst in enumerate(circuit.instructions):
        name = inst.name
        if name == "DETECTOR":
            detectors.append(inst.targets)
            continue
        if name == "OBSERVABLE":
            observables.append(inst.targets)
            continue
        t = np.asarray(inst.targets, dtype=np.intp)
        if name in ("CX", "DEPOLARIZE2"):
            ops.append(CompiledOp(name, t[0::2], t[1::2], inst.arg, pos))
        elif name in ("M", "MX"):
            ops.append(CompiledOp(name, t, position=pos, m_start=m_idx))
            m_idx += len(t)
        elif name in ("R", "RX"):
            # R and RX act identically on the frame (clear both planes).
            ops.append(CompiledOp("R", t, position=pos))
        else:  # H and single-qubit noise channels
            ops.append(CompiledOp(name, t, arg=inst.arg, position=pos))
    ops = [_specialize(op) for op in _fuse(ops)]
    noise_slots: list[int] = []
    noise_probs: list[float] = []
    noise_umult: list[int] = []
    for i, op in enumerate(ops):
        if op.kind in _NOISE:
            single = len(op.targets) == 1
            ops[i] = CompiledOp(
                op.kind,
                op.targets,
                op.targets2,
                op.arg,
                op.position,
                noise_slot=len(noise_slots),
                t1=int(op.targets[0]) if single else -1,
                t2=int(op.targets2[0]) if single and op.targets2 is not None else -1,
            )
            noise_slots.append(len(op.targets))
            noise_probs.append(op.arg)
            noise_umult.append(2 if op.kind.startswith("DEPOLARIZE") else 1)
    det_indices, det_offsets = _csr_wiring(detectors, circuit.num_measurements)
    obs_indices, obs_offsets = _csr_wiring(observables, circuit.num_measurements)
    return CompiledCircuit(
        num_qubits=circuit.num_qubits,
        num_measurements=circuit.num_measurements,
        num_detectors=circuit.num_detectors,
        num_observables=circuit.num_observables,
        ops=tuple(ops),
        op_positions=np.asarray([op.position for op in ops], dtype=np.intp),
        det_indices=det_indices,
        det_offsets=det_offsets,
        obs_indices=obs_indices,
        obs_offsets=obs_offsets,
        noise_slots=np.asarray(noise_slots, dtype=np.intp),
        noise_probs=np.asarray(noise_probs, dtype=np.float64),
        noise_umult=np.asarray(noise_umult, dtype=np.intp),
    )


def _specialize(op: CompiledOp) -> CompiledOp:
    """Single-target gate/measure ops get scalar-indexed fast kinds."""
    if op.kind in ("H", "R", "M", "MX") and len(op.targets) == 1:
        return CompiledOp(
            op.kind + "1",
            op.targets,
            position=op.position,
            m_start=op.m_start,
            t1=int(op.targets[0]),
        )
    if op.kind == "CX" and len(op.targets) == 1:
        return CompiledOp(
            "CX1",
            op.targets,
            op.targets2,
            position=op.position,
            t1=int(op.targets[0]),
            t2=int(op.targets2[0]),
        )
    return op


@dataclass
class Circuit:
    """An ordered list of instructions plus measurement bookkeeping."""

    instructions: list[Instruction] = field(default_factory=list)
    num_qubits: int = 0
    num_measurements: int = 0
    num_detectors: int = 0
    num_observables: int = 0

    def append(self, name: str, targets: Sequence[int], arg: float = 0.0) -> None:
        """Append an operation, updating counters and validating shape."""
        targets = tuple(int(t) for t in targets)
        if name in _GATES_2Q:
            if len(targets) % 2:
                raise ValueError(f"{name} needs an even number of targets")
        elif name not in _GATES_1Q and name not in _ANNOTATIONS:
            raise ValueError(f"unknown instruction {name!r}")
        if name in _ANNOTATIONS:
            for t in targets:
                if t >= self.num_measurements:
                    raise ValueError(
                        f"{name} references measurement {t} before it happens"
                    )
        else:
            self.num_qubits = max(self.num_qubits, max(targets, default=-1) + 1)
        if name in ("M", "MX"):
            self.num_measurements += len(targets)
        if name == "DETECTOR":
            self.num_detectors += 1
        if name == "OBSERVABLE":
            self.num_observables += 1
        self.instructions.append(Instruction(name, targets, arg))

    # Convenience wrappers keep the syndrome generator readable.
    def h(self, *qubits: int) -> None:
        self.append("H", qubits)

    def cx(self, *qubits: int) -> None:
        self.append("CX", qubits)

    def reset(self, *qubits: int) -> None:
        self.append("R", qubits)

    def reset_x(self, *qubits: int) -> None:
        self.append("RX", qubits)

    def measure(self, *qubits: int) -> list[int]:
        """Z-basis measurement; returns the absolute record indices."""
        start = self.num_measurements
        self.append("M", qubits)
        return list(range(start, start + len(qubits)))

    def measure_x(self, *qubits: int) -> list[int]:
        start = self.num_measurements
        self.append("MX", qubits)
        return list(range(start, start + len(qubits)))

    def x_error(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("X_ERROR", qubits, p)

    def z_error(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("Z_ERROR", qubits, p)

    def depolarize1(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("DEPOLARIZE1", qubits, p)

    def depolarize2(self, p: float, *qubits: int) -> None:
        if p > 0 and qubits:
            self.append("DEPOLARIZE2", qubits, p)

    def detector(self, records: Iterable[int]) -> int:
        """Define a detector over absolute measurement indices."""
        index = self.num_detectors
        self.append("DETECTOR", tuple(records))
        return index

    def observable(self, records: Iterable[int]) -> int:
        index = self.num_observables
        self.append("OBSERVABLE", tuple(records))
        return index

    def compiled(self) -> CompiledCircuit:
        """The compiled program for this circuit, built once and cached.

        The cache is invalidated by length: :meth:`append` is the only
        mutator, so a changed instruction count means a changed program.
        """
        cached = getattr(self, "_compiled", None)
        if cached is not None and cached[0] == len(self.instructions):
            return cached[1]
        program = compile_circuit(self)
        self._compiled = (len(self.instructions), program)
        return program

    def noise_instructions(self) -> list[tuple[int, Instruction]]:
        """(position, instruction) of every stochastic channel."""
        return [
            (i, inst)
            for i, inst in enumerate(self.instructions)
            if inst.name in ("X_ERROR", "Z_ERROR", "DEPOLARIZE1", "DEPOLARIZE2")
            and inst.arg > 0
        ]

    def __len__(self) -> int:
        return len(self.instructions)
