"""Detector error model (DEM) extraction exploiting GF(2) linearity.

Each stochastic channel in a circuit is expanded into its elementary
Pauli mechanisms (X/Y/Z components with their probabilities).  Frame
propagation is linear over GF(2), so instead of propagating every
mechanism as its own pseudo-shot, the builder propagates only the
**elementary basis injections** — a deduplicated ``X_q`` / ``Z_q`` at
each (noise position, qubit) — through the packed bitplane engine
(:func:`repro.sim.frame.propagate_injections_packed`, one bit column
per injection), then composes every mechanism's detector/observable
signature by XOR of its basis columns:

* a ``Y`` is ``X ⊕ Z``;
* a two-qubit Pauli is the XOR of its single-qubit parts;
* a ``DEPOLARIZE2`` pair needs 4 basis injections instead of 15
  mechanism rows (and shares them with every other channel touching
  the same position/qubit).

Mechanisms with identical signatures are then merged by probability
combination in one vectorised pass (first-appearance order, identical
to the legacy sequential merge since ``p ← p₁(1−p₂) + p₂(1−p₁)`` is
``(1 − ∏(1−2pᵢ))/2``), yielding the weighted decoding (hyper)graph the
MWPM decoder consumes.  The propagate-every-mechanism path is kept as
``build_dem(..., method="legacy")``; ``tests/test_sim_packed.py`` pins
the two paths mechanism-for-mechanism against each other.

This mirrors what Stim's ``circuit.detector_error_model()`` does for
the same class of circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.circuit import Circuit
from repro.utils.gf2 import gf2_pack, gf2_unpack

__all__ = ["ErrorMechanism", "DetectorErrorModel", "build_dem"]

#: Basis injections composing each Pauli letter.
_LETTER_BASES = {"X": ("X",), "Z": ("Z",), "Y": ("X", "Z")}


@dataclass(frozen=True)
class ErrorMechanism:
    """An independent error source in the decoding graph."""

    probability: float
    detectors: tuple[int, ...]
    observable_flip: bool


@dataclass
class DetectorErrorModel:
    """The merged set of error mechanisms of a circuit."""

    mechanisms: list[ErrorMechanism]
    num_detectors: int
    num_observables: int
    dropped_hyperedges: int = 0

    def graphlike(self) -> list[ErrorMechanism]:
        """Mechanisms touching at most two detectors (matchable edges)."""
        return [m for m in self.mechanisms if 1 <= len(m.detectors) <= 2]

    def undetectable_logical_rate(self) -> float:
        """Total probability mass of mechanisms flipping the observable
        while triggering no detector — irreducible logical errors."""
        total = 0.0
        for m in self.mechanisms:
            if not m.detectors and m.observable_flip:
                total = total + m.probability - 2 * total * m.probability
        return total


def _expand_channels(circuit: Circuit) -> list[tuple[int, dict[int, str], float]]:
    """Elementary (position, pauli, probability) mechanisms of a circuit."""
    mechanisms: list[tuple[int, dict[int, str], float]] = []
    for pos, inst in circuit.noise_instructions():
        p = inst.arg
        if inst.name == "X_ERROR":
            for q in inst.targets:
                mechanisms.append((pos, {q: "X"}, p))
        elif inst.name == "Z_ERROR":
            for q in inst.targets:
                mechanisms.append((pos, {q: "Z"}, p))
        elif inst.name == "DEPOLARIZE1":
            for q in inst.targets:
                for letter in "XYZ":
                    mechanisms.append((pos, {q: letter}, p / 3))
        elif inst.name == "DEPOLARIZE2":
            pairs = list(zip(inst.targets[0::2], inst.targets[1::2], strict=True))
            letters = ["I", "X", "Y", "Z"]
            for a, b in pairs:
                for la in letters:
                    for lb in letters:
                        if la == "I" and lb == "I":
                            continue
                        pauli = {}
                        if la != "I":
                            pauli[a] = la
                        if lb != "I":
                            pauli[b] = lb
                        mechanisms.append((pos, pauli, p / 15))
    return mechanisms


def _mechanism_signatures(
    circuit: Circuit, raw: list[tuple[int, dict[int, str], float]]
) -> np.ndarray:
    """Packed (detectors‖observables) signature words, one row per mechanism.

    Deduplicates the elementary basis injections across all mechanisms,
    propagates them in one packed pass, transposes the result to
    per-injection signature rows, and XOR-composes each mechanism from
    its (at most 4) basis rows.
    """
    from repro.sim.frame import propagate_injections_packed

    inj_of: dict[tuple[int, int, str], int] = {}
    mech_inj: list[list[int]] = []
    for pos, pauli, _ in raw:
        idxs: list[int] = []
        for q, letter in pauli.items():
            for basis in _LETTER_BASES[letter]:
                key = (pos, q, basis)
                j = inj_of.get(key)
                if j is None:
                    j = len(inj_of)
                    inj_of[key] = j
                idxs.append(j)
        mech_inj.append(idxs)

    injections = list(inj_of)
    det_words, obs_words = propagate_injections_packed(circuit, injections)
    num_inj = len(injections)

    # Transpose bit-column-per-injection words into one packed
    # (detector bits ‖ observable bits) signature row per injection.
    parts = []
    for words, n_bits in (
        (det_words, circuit.num_detectors),
        (obs_words, circuit.num_observables),
    ):
        if n_bits:
            parts.append(gf2_pack(gf2_unpack(words, num_inj).T))
        else:
            parts.append(np.zeros((num_inj, 0), dtype=np.uint64))
    sig = np.concatenate(parts, axis=1)
    # Padding row: composition below gathers index num_inj for "no injection".
    sig = np.concatenate([sig, np.zeros((1, sig.shape[1]), dtype=np.uint64)])

    width = max((len(idxs) for idxs in mech_inj), default=0)
    index = np.full((len(raw), width), num_inj, dtype=np.intp)
    for k, idxs in enumerate(mech_inj):
        index[k, : len(idxs)] = idxs
    mech_sig = sig[index[:, 0]] if width else np.zeros(
        (len(raw), sig.shape[1]), dtype=np.uint64
    )
    for col in range(1, width):
        mech_sig ^= sig[index[:, col]]
    return mech_sig


def _det_words(circuit: Circuit) -> int:
    return (circuit.num_detectors + 63) // 64 if circuit.num_detectors else 0


def build_dem(
    circuit: Circuit, *, merge: bool = True, method: str = "packed"
) -> DetectorErrorModel:
    """Extract the detector error model of ``circuit``.

    With ``merge=True`` mechanisms with identical (detectors, observable)
    signatures are combined via ``p ← p₁(1−p₂) + p₂(1−p₁)``; with
    ``merge=False`` probabilities are summed (clipped at 1).
    ``method="packed"`` (default) composes signatures from propagated
    basis injections; ``method="legacy"`` propagates every mechanism as
    its own pseudo-shot — the reference both paths are tested against.
    """
    if method == "legacy":
        return _build_dem_legacy(circuit, merge=merge)
    if method != "packed":
        raise ValueError(f"unknown DEM method {method!r}")

    raw = _expand_channels(circuit)
    if not raw:
        return DetectorErrorModel([], circuit.num_detectors, circuit.num_observables)

    mech_sig = _mechanism_signatures(circuit, raw)
    probs = np.asarray([p for _, _, p in raw])

    keep = mech_sig.any(axis=1)
    mech_sig = mech_sig[keep]
    probs = probs[keep]
    if not len(mech_sig):
        return DetectorErrorModel([], circuit.num_detectors, circuit.num_observables)

    uniq, first, inverse = np.unique(
        mech_sig, axis=0, return_index=True, return_inverse=True
    )
    if merge:
        # ∏(1−2pᵢ) per group ≡ the sequential p+p'−2pp' combination.
        factors = np.ones(len(uniq))
        np.multiply.at(factors, inverse, 1.0 - 2.0 * probs)
        merged_p = (1.0 - factors) / 2.0
    else:
        merged_p = np.zeros(len(uniq))
        np.add.at(merged_p, inverse, probs)
        merged_p = np.minimum(merged_p, 1.0)

    kd = _det_words(circuit)
    if circuit.num_detectors:
        det_bits = gf2_unpack(uniq[:, :kd], circuit.num_detectors)
    else:
        det_bits = np.zeros((len(uniq), 0), dtype=np.uint8)
    if circuit.num_observables:
        obs_any = gf2_unpack(uniq[:, kd:], circuit.num_observables).any(axis=1)
    else:
        obs_any = np.zeros(len(uniq), dtype=bool)

    mechanisms = [
        ErrorMechanism(
            probability=float(merged_p[g]),
            detectors=tuple(np.nonzero(det_bits[g])[0].tolist()),
            observable_flip=bool(obs_any[g]),
        )
        for g in np.argsort(first, kind="stable")
    ]
    dropped = sum(1 for m in mechanisms if len(m.detectors) > 2)
    return DetectorErrorModel(
        mechanisms=mechanisms,
        num_detectors=circuit.num_detectors,
        num_observables=circuit.num_observables,
        dropped_hyperedges=dropped,
    )


def _build_dem_legacy(circuit: Circuit, *, merge: bool) -> DetectorErrorModel:
    """Propagate every mechanism as a pseudo-shot (reference path)."""
    from repro.sim.frame import FrameSampler

    raw = _expand_channels(circuit)
    if not raw:
        return DetectorErrorModel([], circuit.num_detectors, circuit.num_observables)

    sampler = FrameSampler(circuit)
    injections = [(pos, pauli) for pos, pauli, _ in raw]
    det_flips, obs_flips = sampler.propagate_mechanisms(injections)

    merged: dict[tuple[tuple[int, ...], bool], float] = {}
    order: list[tuple[tuple[int, ...], bool]] = []
    for k, (_, _, p) in enumerate(raw):
        dets = tuple(np.nonzero(det_flips[k])[0].tolist())
        obs = bool(obs_flips[k].any())
        if not dets and not obs:
            continue
        key = (dets, obs)
        if key not in merged:
            merged[key] = 0.0
            order.append(key)
        if merge:
            prev = merged[key]
            merged[key] = prev + p - 2 * prev * p
        else:
            merged[key] = min(1.0, merged[key] + p)

    mechanisms = [
        ErrorMechanism(probability=merged[key], detectors=key[0], observable_flip=key[1])
        for key in order
    ]
    dropped = sum(1 for m in mechanisms if len(m.detectors) > 2)
    return DetectorErrorModel(
        mechanisms=mechanisms,
        num_detectors=circuit.num_detectors,
        num_observables=circuit.num_observables,
        dropped_hyperedges=dropped,
    )
