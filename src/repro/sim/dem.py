"""Detector error model (DEM) extraction by exhaustive error propagation.

Each stochastic channel in a circuit is expanded into its elementary
Pauli mechanisms (X/Y/Z components with their probabilities); every
mechanism is propagated through the rest of the circuit — all of them in
one vectorised pass — to find which detectors and observables it flips.
Mechanisms with identical signatures are merged by probability
combination, yielding the weighted decoding (hyper)graph the MWPM
decoder consumes.

This mirrors what Stim's ``circuit.detector_error_model()`` does for the
same class of circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.circuit import Circuit

__all__ = ["ErrorMechanism", "DetectorErrorModel", "build_dem"]


@dataclass(frozen=True)
class ErrorMechanism:
    """An independent error source in the decoding graph."""

    probability: float
    detectors: tuple[int, ...]
    observable_flip: bool


@dataclass
class DetectorErrorModel:
    """The merged set of error mechanisms of a circuit."""

    mechanisms: list[ErrorMechanism]
    num_detectors: int
    num_observables: int
    dropped_hyperedges: int = 0

    def graphlike(self) -> list[ErrorMechanism]:
        """Mechanisms touching at most two detectors (matchable edges)."""
        return [m for m in self.mechanisms if 1 <= len(m.detectors) <= 2]

    def undetectable_logical_rate(self) -> float:
        """Total probability mass of mechanisms flipping the observable
        while triggering no detector — irreducible logical errors."""
        total = 0.0
        for m in self.mechanisms:
            if not m.detectors and m.observable_flip:
                total = total + m.probability - 2 * total * m.probability
        return total


def _expand_channels(circuit: Circuit) -> list[tuple[int, dict[int, str], float]]:
    """Elementary (position, pauli, probability) mechanisms of a circuit."""
    mechanisms: list[tuple[int, dict[int, str], float]] = []
    for pos, inst in circuit.noise_instructions():
        p = inst.arg
        if inst.name == "X_ERROR":
            for q in inst.targets:
                mechanisms.append((pos, {q: "X"}, p))
        elif inst.name == "Z_ERROR":
            for q in inst.targets:
                mechanisms.append((pos, {q: "Z"}, p))
        elif inst.name == "DEPOLARIZE1":
            for q in inst.targets:
                for letter in "XYZ":
                    mechanisms.append((pos, {q: letter}, p / 3))
        elif inst.name == "DEPOLARIZE2":
            pairs = list(zip(inst.targets[0::2], inst.targets[1::2]))
            letters = ["I", "X", "Y", "Z"]
            for a, b in pairs:
                for la in letters:
                    for lb in letters:
                        if la == "I" and lb == "I":
                            continue
                        pauli = {}
                        if la != "I":
                            pauli[a] = la
                        if lb != "I":
                            pauli[b] = lb
                        mechanisms.append((pos, pauli, p / 15))
    return mechanisms


def build_dem(circuit: Circuit, *, merge: bool = True) -> DetectorErrorModel:
    """Extract the detector error model of ``circuit``.

    With ``merge=True`` mechanisms with identical (detectors, observable)
    signatures are combined via ``p ← p₁(1−p₂) + p₂(1−p₁)``.
    """
    from repro.sim.frame import FrameSampler

    raw = _expand_channels(circuit)
    if not raw:
        return DetectorErrorModel([], circuit.num_detectors, circuit.num_observables)

    sampler = FrameSampler(circuit)
    injections = [(pos, pauli) for pos, pauli, _ in raw]
    det_flips, obs_flips = sampler.propagate_mechanisms(injections)

    merged: dict[tuple[tuple[int, ...], bool], float] = {}
    order: list[tuple[tuple[int, ...], bool]] = []
    for k, (_, _, p) in enumerate(raw):
        dets = tuple(np.nonzero(det_flips[k])[0].tolist())
        obs = bool(obs_flips[k].any())
        if not dets and not obs:
            continue
        key = (dets, obs)
        if key not in merged:
            merged[key] = 0.0
            order.append(key)
        if merge:
            prev = merged[key]
            merged[key] = prev + p - 2 * prev * p
        else:
            merged[key] = min(1.0, merged[key] + p)

    mechanisms = [
        ErrorMechanism(probability=merged[key], detectors=key[0], observable_flip=key[1])
        for key in order
    ]
    dropped = sum(1 for m in mechanisms if len(m.detectors) > 2)
    return DetectorErrorModel(
        mechanisms=mechanisms,
        num_detectors=circuit.num_detectors,
        num_observables=circuit.num_observables,
        dropped_hyperedges=dropped,
    )
