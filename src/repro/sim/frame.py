"""Vectorised Pauli-frame sampling on bit-packed uint64 bitplanes.

A Pauli frame tracks, per shot, the Pauli difference between the noisy
run and a noiseless reference run.  For Clifford circuits with Pauli
noise, propagating the frame through each gate and XORing the frame's
anticommuting component into every measurement reproduces the exact
detector/observable statistics of full stabilizer simulation — this is
the same trick Stim's sampler uses.

Two engines implement that propagation:

* **Packed** (the default): frames live in transposed
  ``(num_qubits, ceil(shots/64))`` ``uint64`` bitplanes (one bit per
  shot, packed with the :mod:`repro.utils.gf2` little-endian layout), so
  every gate on every shot is a handful of word-wide XORs.  The circuit
  is lowered once to a :class:`~repro.sim.circuit.CompiledCircuit` —
  precomputed gather/scatter index arrays per op plus sparse CSR
  detector/observable wiring — which removes the per-instruction Python
  target parsing from the hot loop.  Noise channels with small ``p``
  draw a Binomial number of flips and scatter them as individual bits
  (exact: the flipped positions form a uniform without-replacement
  subset, equivalent to i.i.d. Bernoulli trials), instead of generating
  one float per (shot, qubit) trial; channels with large ``p`` fall
  back to dense mask generation + ``packbits``.

* **Unpacked** (``packed=False``): the original per-instruction loop
  over ``(shots, qubits)`` ``uint8`` arrays, kept as the reference
  implementation.  Both engines accept a shared pre-drawn noise mask
  (:meth:`FrameSampler.draw_masks` / :meth:`FrameSampler.sample_masked`)
  and then agree bit-for-bit, which is how the equivalence is pinned by
  ``tests/test_sim_packed.py``.

The packed engine also powers deterministic fault propagation for DEM
extraction: :func:`propagate_injections_packed` assigns one *elementary
basis injection* (an ``X_q`` or ``Z_q`` inserted before a given
instruction) to each bit column and propagates all of them in one pass
— see :mod:`repro.sim.dem` for how mechanism signatures are composed
from those columns by GF(2) linearity.
"""

from __future__ import annotations

import numpy as np

from repro.sim.circuit import Circuit, CompiledCircuit
from repro.utils.gf2 import PackedBits, gf2_pack, gf2_unpack, gf2_xor_csr

__all__ = [
    "FrameSampler",
    "sample_detectors",
    "propagate_injections_packed",
]

#: Channels at or above this probability generate dense masks; below it
#: flips are Binomial-sampled and scattered bit by bit (both exact).
_SPARSE_NOISE_MAX_P = 0.05

_ONE = np.uint64(1)
#: Lookup table bit index → uint64 single-bit mask (avoids shift casts).
_BIT = _ONE << np.arange(64, dtype=np.uint64)


def _distinct_positions(rng: np.random.Generator, n_total: int, k: int) -> np.ndarray:
    """``k`` distinct uniform draws from ``range(n_total)`` (exact).

    Repeated batch draws keeping first-seen distinct values reproduce
    sequential rejection sampling, whose output is a uniform k-subset.
    """
    if k >= n_total:
        return np.arange(n_total)
    chosen = np.unique(rng.integers(0, n_total, size=k))
    while chosen.size < k:
        extra = rng.integers(0, n_total, size=k - chosen.size)
        chosen = np.unique(np.concatenate([chosen, extra]))
    return chosen


#: Flip sets at or below this size use the scalar (pure-Python) scatter.
_SCALAR_FLIP_LIMIT = 24


def _scatter_bits(plane: np.ndarray, rows: np.ndarray, shots_idx: np.ndarray) -> None:
    """XOR single bits (``rows[i]``, bit ``shots_idx[i]``) into a bitplane."""
    if rows.size:
        np.bitwise_xor.at(plane, (rows, shots_idx >> 6), _BIT[shots_idx & 63])


def _xor_mask(plane: np.ndarray, targets: np.ndarray, mask: np.ndarray) -> None:
    """XOR a dense ``(len(targets), shots)`` 0/1 mask into a bitplane."""
    plane[targets] ^= gf2_pack(mask)


class _PackedEngine:
    """One packed propagation pass over a compiled program."""

    def __init__(self, program: CompiledCircuit, num_bits: int) -> None:
        self.program = program
        self.num_bits = num_bits
        words = (num_bits + 63) // 64
        self.x = np.zeros((program.num_qubits, words), dtype=np.uint64)
        self.z = np.zeros((program.num_qubits, words), dtype=np.uint64)
        # One trailing all-zero row backs empty detector/observable groups.
        self.records = np.zeros((program.num_measurements + 1, words), dtype=np.uint64)

    def run(
        self,
        *,
        rng: np.random.Generator | None = None,
        masks: dict[int, np.ndarray] | None = None,
        injections: dict[int, list[tuple[str, np.ndarray, np.ndarray]]] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Execute the program; returns packed (detectors, observables).

        Noise is drawn from ``rng``, read from pre-drawn ``masks``
        (instruction position → choice array, see
        :meth:`FrameSampler.draw_masks`), or skipped entirely when both
        are ``None`` (deterministic propagation).  ``injections`` maps
        an op index to ``(plane, qubit_rows, bit_columns)`` Pauli
        injections applied before that op executes.
        """
        x, z = self.x, self.z
        records = self.records
        xor = np.bitwise_xor
        if rng is not None and len(self.program.noise_probs):
            # All Binomial flip counts and the uniforms that turn them
            # into (position, Pauli letter) draws, in three vectorised
            # calls for the whole run; per-op noise handling then only
            # slices this stream.
            counts = rng.binomial(
                self.program.noise_slots * self.num_bits, self.program.noise_probs
            )
            offsets = np.zeros(len(counts) + 1, dtype=np.intp)
            np.cumsum(counts * self.program.noise_umult, out=offsets[1:])
            self._flip_counts = counts
            self._uniform = rng.random(int(offsets[-1]))
            self._uniform_offsets = offsets
        for i, op in enumerate(self.program.ops):
            if injections is not None:
                for plane_name, rows, bits in injections.get(i, ()):
                    _scatter_bits(x if plane_name == "X" else z, rows, bits)
            kind = op.kind
            if kind == "CX1":
                xor(x[op.t2], x[op.t1], out=x[op.t2])
                xor(z[op.t1], z[op.t2], out=z[op.t1])
            elif kind == "M1":
                records[op.m_start] = x[op.t1]
            elif kind == "MX1":
                records[op.m_start] = z[op.t1]
            elif kind == "R1":
                x[op.t1] = 0
                z[op.t1] = 0
            elif kind == "H1":
                t = op.t1
                tmp = x[t].copy()
                x[t] = z[t]
                z[t] = tmp
            elif kind == "CX":
                t = op.targets
                x[op.targets2] ^= x[t]
                z[t] ^= z[op.targets2]
            elif kind == "H":
                t = op.targets
                tmp = x[t].copy()
                x[t] = z[t]
                z[t] = tmp
            elif kind == "M":
                t = op.targets
                records[op.m_start : op.m_start + len(t)] = x[t]
            elif kind == "MX":
                t = op.targets
                records[op.m_start : op.m_start + len(t)] = z[t]
            elif kind == "R":
                t = op.targets
                x[t] = 0
                z[t] = 0
            elif masks is not None:
                self._apply_mask(op, masks[op.position])
            elif rng is not None:
                self._apply_noise(op, rng)
        det = gf2_xor_csr(records, self.program.det_indices, self.program.det_offsets)
        obs = gf2_xor_csr(records, self.program.obs_indices, self.program.obs_offsets)
        return det, obs

    # --- noise ----------------------------------------------------------
    def _apply_mask(self, op, mask: np.ndarray) -> None:
        """Apply a pre-drawn choice mask (see ``draw_masks`` for codes)."""
        kind = op.kind
        if kind == "X_ERROR":
            _xor_mask(self.x, op.targets, mask)
        elif kind == "Z_ERROR":
            _xor_mask(self.z, op.targets, mask)
        elif kind == "DEPOLARIZE1":
            _xor_mask(self.x, op.targets, (mask == 1) | (mask == 2))
            _xor_mask(self.z, op.targets, (mask == 2) | (mask == 3))
        elif kind == "DEPOLARIZE2":
            pa, pb = mask // 4, mask % 4
            _xor_mask(self.x, op.targets, (pa == 1) | (pa == 2))
            _xor_mask(self.z, op.targets, (pa == 2) | (pa == 3))
            _xor_mask(self.x, op.targets2, (pb == 1) | (pb == 2))
            _xor_mask(self.z, op.targets2, (pb == 2) | (pb == 3))

    def _apply_noise(self, op, rng: np.random.Generator) -> None:
        kind = op.kind
        shots = self.num_bits
        n = len(op.targets)
        if op.arg >= _SPARSE_NOISE_MAX_P:
            self._apply_mask(op, _draw_mask(rng, op, shots))
            return
        k = int(self._flip_counts[op.noise_slot])
        if not k:
            return
        total = n * shots
        off = int(self._uniform_offsets[op.noise_slot])
        letters = kind.startswith("DEPOLARIZE")
        if k <= _SCALAR_FLIP_LIMIT:
            # Tiny flip sets: scalar bit twiddling beats numpy call
            # overhead by an order of magnitude.
            chunk = self._uniform[off : off + (2 * k if letters else k)].tolist()
            # min() guards the 2^-53 float-rounding edge u*total == total.
            positions = [min(int(u * total), total - 1) for u in chunk[:k]]
            if len(set(positions)) < k:  # rare: reject batch, redraw exact
                positions = _distinct_positions(rng, total, k).tolist()
            self._scatter_scalar(op, positions, chunk[k:])
            return
        pos = (self._uniform[off : off + k] * total).astype(np.intp)
        np.minimum(pos, total - 1, out=pos)
        pos.sort()
        if (pos[1:] == pos[:-1]).any():
            pos = _distinct_positions(rng, total, k)
        which, shot = pos // shots, pos % shots
        if kind == "X_ERROR":
            _scatter_bits(self.x, op.targets[which], shot)
        elif kind == "Z_ERROR":
            _scatter_bits(self.z, op.targets[which], shot)
        elif kind == "DEPOLARIZE1":
            letter = (self._uniform[off + k : off + 2 * k] * 3).astype(np.int64)
            is_x, is_z = letter < 2, letter > 0  # 0=X, 1=Y, 2=Z
            _scatter_bits(self.x, op.targets[which[is_x]], shot[is_x])
            _scatter_bits(self.z, op.targets[which[is_z]], shot[is_z])
        elif kind == "DEPOLARIZE2":
            c = (self._uniform[off + k : off + 2 * k] * 15).astype(np.int64) + 1
            pa, pb = c // 4, c % 4
            for plane, rows, sel in (
                (self.x, op.targets, (pa == 1) | (pa == 2)),
                (self.z, op.targets, (pa == 2) | (pa == 3)),
                (self.x, op.targets2, (pb == 1) | (pb == 2)),
                (self.z, op.targets2, (pb == 2) | (pb == 3)),
            ):
                _scatter_bits(plane, rows[which[sel]], shot[sel])

    def _scatter_scalar(self, op, positions: list[int], letters: list[float]) -> None:
        """Apply a handful of flips one bit at a time (see _apply_noise)."""
        kind = op.kind
        shots = self.num_bits
        x, z = self.x, self.z
        single = op.t1 >= 0
        targets = None if single else op.targets
        for i, pos in enumerate(positions):
            w, s = divmod(pos, shots)
            word, mask = s >> 6, _BIT[s & 63]
            if kind == "X_ERROR":
                x[op.t1 if single else targets[w], word] ^= mask
            elif kind == "Z_ERROR":
                z[op.t1 if single else targets[w], word] ^= mask
            elif kind == "DEPOLARIZE1":
                row = op.t1 if single else targets[w]
                c = int(letters[i] * 3)  # 0=X, 1=Y, 2=Z
                if c < 2:
                    x[row, word] ^= mask
                if c > 0:
                    z[row, word] ^= mask
            else:  # DEPOLARIZE2
                a = op.t1 if single else op.targets[w]
                b = op.t2 if single else op.targets2[w]
                c = int(letters[i] * 15) + 1  # 1..15 two-qubit Pauli
                pa, pb = c >> 2, c & 3
                if pa == 1 or pa == 2:
                    x[a, word] ^= mask
                if pa == 2 or pa == 3:
                    z[a, word] ^= mask
                if pb == 1 or pb == 2:
                    x[b, word] ^= mask
                if pb == 2 or pb == 3:
                    z[b, word] ^= mask


def _draw_mask(rng: np.random.Generator, op, shots: int) -> np.ndarray:
    """Draw one channel's choice mask, matching the legacy distributions.

    ``X_ERROR``/``Z_ERROR`` masks are 0/1 flips; ``DEPOLARIZE1`` values
    are 0=I, 1=X, 2=Y, 3=Z; ``DEPOLARIZE2`` values are ``4*pa + pb`` in
    the same letter code, one entry per qubit pair.
    """
    n = len(op.targets)
    r = rng.random((n, shots))
    p = op.arg
    if op.kind in ("X_ERROR", "Z_ERROR"):
        return (r < p).astype(np.uint8)
    if op.kind == "DEPOLARIZE1":
        return np.where(r < p, (r / p * 3).astype(np.int64) + 1, 0)
    return np.where(r < p, (r / p * 15).astype(np.int64) + 1, 0)


def _unpack_results(
    det_words: np.ndarray, obs_words: np.ndarray, shots: int
) -> tuple[np.ndarray, np.ndarray]:
    """Packed (rows=bits, cols=shots) words → (shots, rows) uint8 arrays."""

    def unpack(words: np.ndarray) -> np.ndarray:
        if words.shape[0] == 0 or shots == 0:
            return np.zeros((shots, words.shape[0]), dtype=np.uint8)
        return np.ascontiguousarray(gf2_unpack(words, shots).T)

    return unpack(det_words), unpack(obs_words)


class FrameSampler:
    """Samples detector and observable flips of a noisy Clifford circuit.

    ``packed=True`` (default) runs the compiled uint64-bitplane engine;
    ``packed=False`` runs the original unpacked ``(shots, qubits)``
    reference loop.  The two produce statistically identical samples,
    and bit-identical ones under a shared mask from :meth:`draw_masks`.
    """

    def __init__(
        self, circuit: Circuit, *, seed: int | None = None, packed: bool = True
    ) -> None:
        self.circuit = circuit
        self.packed = packed
        self._rng = np.random.default_rng(seed)

    def sample(self, shots: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``shots`` runs.

        Returns ``(detectors, observables)`` with shapes
        ``(shots, num_detectors)`` and ``(shots, num_observables)``; each
        entry is the XOR of the referenced measurement *flips*, i.e. a 1
        marks a detection event / logical flip relative to noiseless.
        """
        if self.packed:
            engine = _PackedEngine(self.circuit.compiled(), shots)
            det, obs = engine.run(rng=self._rng)
            return _unpack_results(det, obs, shots)
        return self._sample_unpacked(shots, masks=None)

    def sample_packed(self, shots: int) -> tuple[PackedBits, PackedBits]:
        """Sample ``shots`` runs without unpacking the result.

        Returns ``(detectors, observables)`` as
        :class:`~repro.utils.gf2.PackedBits` bitplanes — one row per
        detector/observable, one bit per shot — the format
        ``Decoder.decode_batch`` consumes directly, so a
        ``(shots, detectors)`` uint8 array is never materialised.
        The random stream is shared with :meth:`sample`: at equal
        sampler state the two return the same bits, packed vs not.

        A ``packed=False`` sampler runs the unpacked reference engine
        and packs its output, so both engines expose the same streaming
        interface (the property tests rely on this).
        """
        c = self.circuit
        if self.packed:
            engine = _PackedEngine(c.compiled(), shots)
            det, obs = engine.run(rng=self._rng)
        else:
            det_rows, obs_rows = self._sample_unpacked(shots, masks=None)
            det = gf2_pack(det_rows.T) if shots else np.zeros(
                (c.num_detectors, 0), dtype=np.uint64
            )
            obs = gf2_pack(obs_rows.T) if shots else np.zeros(
                (c.num_observables, 0), dtype=np.uint64
            )
        return (
            PackedBits(det, shots),
            PackedBits(obs, shots),
        )

    def draw_masks(self, shots: int) -> dict[int, np.ndarray]:
        """Pre-draw every noise channel's outcome for ``shots`` runs.

        Returns instruction position → ``(n_targets_or_pairs, shots)``
        choice array (codes as in the packed engine: 0/1 flips for
        X/Z_ERROR, 0..3 letters for DEPOLARIZE1, ``4*pa+pb`` for
        DEPOLARIZE2).  Feeding the same dict to a packed and an
        unpacked sampler yields bit-identical results.
        """
        program = self.circuit.compiled()
        return {
            op.position: _draw_mask(self._rng, op, shots)
            for op in program.ops
            if op.kind in ("X_ERROR", "Z_ERROR", "DEPOLARIZE1", "DEPOLARIZE2")
        }

    def sample_masked(
        self, masks: dict[int, np.ndarray], shots: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Propagate pre-drawn noise (from :meth:`draw_masks`) exactly."""
        if self.packed:
            engine = _PackedEngine(self.circuit.compiled(), shots)
            det, obs = engine.run(masks=masks)
            return _unpack_results(det, obs, shots)
        return self._sample_unpacked(shots, masks=masks)

    # --- unpacked reference engine ---------------------------------------
    def _sample_unpacked(
        self, shots: int, masks: dict[int, np.ndarray] | None
    ) -> tuple[np.ndarray, np.ndarray]:
        c = self.circuit
        x = np.zeros((shots, c.num_qubits), dtype=np.uint8)  # X component
        z = np.zeros((shots, c.num_qubits), dtype=np.uint8)  # Z component
        records = np.zeros((shots, c.num_measurements), dtype=np.uint8)
        detectors = np.zeros((shots, c.num_detectors), dtype=np.uint8)
        observables = np.zeros((shots, c.num_observables), dtype=np.uint8)
        m_idx = 0
        d_idx = 0
        o_idx = 0
        rng = self._rng

        for pos, inst in enumerate(c.instructions):
            name = inst.name
            t = list(inst.targets)
            if name == "H":
                x[:, t], z[:, t] = z[:, t].copy(), x[:, t].copy()
            elif name == "CX":
                ctrl, targ = t[0::2], t[1::2]
                x[:, targ] ^= x[:, ctrl]
                z[:, ctrl] ^= z[:, targ]
            elif name == "R" or name == "RX":
                x[:, t] = 0
                z[:, t] = 0
            elif name == "M":
                n = len(t)
                records[:, m_idx : m_idx + n] = x[:, t]
                m_idx += n
            elif name == "MX":
                n = len(t)
                records[:, m_idx : m_idx + n] = z[:, t]
                m_idx += n
            elif name == "X_ERROR":
                if masks is not None:
                    flips = masks[pos].T.astype(bool)
                else:
                    flips = rng.random((shots, len(t))) < inst.arg
                x[:, t] ^= flips.astype(np.uint8)
            elif name == "Z_ERROR":
                if masks is not None:
                    flips = masks[pos].T.astype(bool)
                else:
                    flips = rng.random((shots, len(t))) < inst.arg
                z[:, t] ^= flips.astype(np.uint8)
            elif name == "DEPOLARIZE1":
                if masks is not None:
                    v = masks[pos].T
                    is_x = (v == 1) | (v == 2)
                    is_z = (v == 2) | (v == 3)
                else:
                    r = rng.random((shots, len(t)))
                    p = inst.arg
                    is_x = (r < p / 3) | ((r >= p / 3) & (r < 2 * p / 3))
                    is_z = (r >= p / 3) & (r < p)
                x[:, t] ^= is_x.astype(np.uint8)
                z[:, t] ^= is_z.astype(np.uint8)
            elif name == "DEPOLARIZE2":
                a, b = t[0::2], t[1::2]
                if masks is not None:
                    choice = masks[pos].T
                else:
                    r = rng.random((shots, len(a)))
                    p = inst.arg
                    # Draw one of 15 non-identity two-qubit Paulis uniformly.
                    choice = np.where(r < p, (r / p * 15).astype(np.int64) + 1, 0)
                pa, pb = choice // 4, choice % 4  # 0=I,1=X,2=Y,3=Z per qubit
                x[:, a] ^= ((pa == 1) | (pa == 2)).astype(np.uint8)
                z[:, a] ^= ((pa == 2) | (pa == 3)).astype(np.uint8)
                x[:, b] ^= ((pb == 1) | (pb == 2)).astype(np.uint8)
                z[:, b] ^= ((pb == 2) | (pb == 3)).astype(np.uint8)
            elif name == "DETECTOR":
                if t:
                    detectors[:, d_idx] = records[:, t].sum(axis=1) % 2
                d_idx += 1
            elif name == "OBSERVABLE":
                if t:
                    observables[:, o_idx] = records[:, t].sum(axis=1) % 2
                o_idx += 1
            else:  # pragma: no cover - guarded by Circuit.append
                raise ValueError(f"unknown instruction {name}")
        return detectors, observables

    def propagate_mechanisms(
        self, injections: list[tuple[int, dict[int, str]]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministically propagate one Pauli injection per pseudo-shot.

        ``injections[k] = (position, {qubit: 'X'|'Y'|'Z'})`` injects the
        given Pauli immediately *at* instruction index ``position`` (i.e.
        before the instruction at that index executes) in pseudo-shot
        ``k``, with all stochastic channels disabled.  Returns the flipped
        detectors/observables per pseudo-shot — the rows of the detector
        error model.  This is the unpacked reference path; the packed DEM
        builder uses :func:`propagate_injections_packed` instead.
        """
        c = self.circuit
        shots = len(injections)
        x = np.zeros((shots, c.num_qubits), dtype=np.uint8)
        z = np.zeros((shots, c.num_qubits), dtype=np.uint8)
        records = np.zeros((shots, c.num_measurements), dtype=np.uint8)
        detectors = np.zeros((shots, c.num_detectors), dtype=np.uint8)
        observables = np.zeros((shots, c.num_observables), dtype=np.uint8)
        by_position: dict[int, list[tuple[int, dict[int, str]]]] = {}
        for k, (pos, pauli) in enumerate(injections):
            by_position.setdefault(pos, []).append((k, pauli))
        m_idx = d_idx = o_idx = 0

        for i, inst in enumerate(c.instructions):
            for k, pauli in by_position.get(i, ()):
                for q, letter in pauli.items():
                    if letter in ("X", "Y"):
                        x[k, q] ^= 1
                    if letter in ("Z", "Y"):
                        z[k, q] ^= 1
            name = inst.name
            t = list(inst.targets)
            if name == "H":
                x[:, t], z[:, t] = z[:, t].copy(), x[:, t].copy()
            elif name == "CX":
                ctrl, targ = t[0::2], t[1::2]
                x[:, targ] ^= x[:, ctrl]
                z[:, ctrl] ^= z[:, targ]
            elif name in ("R", "RX"):
                x[:, t] = 0
                z[:, t] = 0
            elif name == "M":
                n = len(t)
                records[:, m_idx : m_idx + n] = x[:, t]
                m_idx += n
            elif name == "MX":
                n = len(t)
                records[:, m_idx : m_idx + n] = z[:, t]
                m_idx += n
            elif name == "DETECTOR":
                if t:
                    detectors[:, d_idx] = records[:, t].sum(axis=1) % 2
                d_idx += 1
            elif name == "OBSERVABLE":
                if t:
                    observables[:, o_idx] = records[:, t].sum(axis=1) % 2
                o_idx += 1
            # Stochastic channels: disabled during propagation.
        return detectors, observables


def propagate_injections_packed(
    circuit: Circuit, injections: list[tuple[int, int, str]]
) -> tuple[np.ndarray, np.ndarray]:
    """Propagate elementary basis injections, one per bit column.

    ``injections[j] = (position, qubit, 'X'|'Z')`` injects that
    single-qubit Pauli before instruction ``position`` into bit column
    ``j``, with all stochastic channels disabled.  Returns packed
    ``(num_detectors, ceil(len(injections)/64))`` and matching
    observable word arrays: bit ``j`` of a row marks that injection
    flipping that detector/observable.

    Positions are anchored onto the compiled op stream with a binary
    search ("first op at or after ``position``"), which is exact for
    injections at noise-channel positions (noise ops are never fused).
    """
    program = circuit.compiled()
    by_op: dict[int, list[tuple[str, np.ndarray, np.ndarray]]] = {}
    if injections:
        positions = np.asarray([pos for pos, _, _ in injections])
        op_of = np.searchsorted(program.op_positions, positions, side="left")
        grouped: dict[tuple[int, str], tuple[list[int], list[int]]] = {}
        for j, ((_, qubit, basis), op_i) in enumerate(zip(injections, op_of, strict=True)):
            rows, bits = grouped.setdefault((int(op_i), basis), ([], []))
            rows.append(qubit)
            bits.append(j)
        for (op_i, basis), (rows, bits) in grouped.items():
            by_op.setdefault(op_i, []).append(
                (basis, np.asarray(rows, dtype=np.intp), np.asarray(bits))
            )
    engine = _PackedEngine(program, len(injections))
    return engine.run(injections=by_op)


def sample_detectors(
    circuit: Circuit,
    shots: int,
    *,
    seed: int | None = None,
    packed: bool = True,
    output: str | None = None,
    packed_output: bool | None = None,
) -> tuple[np.ndarray, np.ndarray] | tuple[PackedBits, PackedBits]:
    """One-call convenience wrapper around :class:`FrameSampler`.

    ``packed`` selects the propagation engine; ``output`` selects the
    sample container: ``"rows"`` (the default) returns ``(shots, n)``
    uint8 arrays, ``"packed"`` returns
    :class:`~repro.utils.gf2.PackedBits` detector/observable bitplanes
    (see :meth:`FrameSampler.sample_packed`).  The same ``seed`` yields
    the same bits either way.

    .. deprecated::
        The boolean ``packed_output`` flag is superseded by ``output``;
        it is still accepted (``True`` means ``output="packed"``) but
        warns once per process.
    """
    if packed_output is not None:
        _warn_packed_output_once()
        if output is not None:
            raise TypeError(
                "pass either output= or the deprecated packed_output=, "
                "not both"
            )
        output = "packed" if packed_output else "rows"
    elif output is None:
        output = "rows"
    if output not in ("packed", "rows"):
        raise ValueError(
            f"output must be 'packed' or 'rows', got {output!r}"
        )
    sampler = FrameSampler(circuit, seed=seed, packed=packed)
    if output == "packed":
        return sampler.sample_packed(shots)
    return sampler.sample(shots)


_PACKED_OUTPUT_WARNED = False


def _warn_packed_output_once() -> None:
    global _PACKED_OUTPUT_WARNED
    if not _PACKED_OUTPUT_WARNED:
        _PACKED_OUTPUT_WARNED = True
        import warnings

        warnings.warn(
            "sample_detectors(packed_output=...) is deprecated; use "
            "output='packed' or output='rows' instead",
            DeprecationWarning,
            stacklevel=3,
        )
