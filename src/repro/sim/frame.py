"""Vectorised Pauli-frame sampling.

A Pauli frame tracks, per shot, the Pauli difference between the noisy
run and a noiseless reference run.  For Clifford circuits with Pauli
noise, propagating the frame through each gate and XORing the frame's
anticommuting component into every measurement reproduces the exact
detector/observable statistics of full stabilizer simulation — this is
the same trick Stim's sampler uses.

Frames for all shots are propagated simultaneously as ``(shots, qubits)``
uint8 arrays, so the sampler is a handful of numpy XORs per instruction.
"""

from __future__ import annotations

import numpy as np

from repro.sim.circuit import Circuit, Instruction

__all__ = ["FrameSampler", "sample_detectors"]


class FrameSampler:
    """Samples detector and observable flips of a noisy Clifford circuit."""

    def __init__(self, circuit: Circuit, *, seed: int | None = None) -> None:
        self.circuit = circuit
        self._rng = np.random.default_rng(seed)

    def sample(self, shots: int) -> tuple[np.ndarray, np.ndarray]:
        """Sample ``shots`` runs.

        Returns ``(detectors, observables)`` with shapes
        ``(shots, num_detectors)`` and ``(shots, num_observables)``; each
        entry is the XOR of the referenced measurement *flips*, i.e. a 1
        marks a detection event / logical flip relative to noiseless.
        """
        c = self.circuit
        x = np.zeros((shots, c.num_qubits), dtype=np.uint8)  # X component
        z = np.zeros((shots, c.num_qubits), dtype=np.uint8)  # Z component
        records = np.zeros((shots, c.num_measurements), dtype=np.uint8)
        detectors = np.zeros((shots, c.num_detectors), dtype=np.uint8)
        observables = np.zeros((shots, c.num_observables), dtype=np.uint8)
        m_idx = 0
        d_idx = 0
        o_idx = 0
        rng = self._rng

        for inst in c.instructions:
            name = inst.name
            t = list(inst.targets)
            if name == "H":
                x[:, t], z[:, t] = z[:, t].copy(), x[:, t].copy()
            elif name == "CX":
                ctrl, targ = t[0::2], t[1::2]
                x[:, targ] ^= x[:, ctrl]
                z[:, ctrl] ^= z[:, targ]
            elif name == "R" or name == "RX":
                x[:, t] = 0
                z[:, t] = 0
            elif name == "M":
                n = len(t)
                records[:, m_idx : m_idx + n] = x[:, t]
                m_idx += n
            elif name == "MX":
                n = len(t)
                records[:, m_idx : m_idx + n] = z[:, t]
                m_idx += n
            elif name == "X_ERROR":
                flips = rng.random((shots, len(t))) < inst.arg
                x[:, t] ^= flips.astype(np.uint8)
            elif name == "Z_ERROR":
                flips = rng.random((shots, len(t))) < inst.arg
                z[:, t] ^= flips.astype(np.uint8)
            elif name == "DEPOLARIZE1":
                r = rng.random((shots, len(t)))
                p = inst.arg
                is_x = (r < p / 3) | ((r >= p / 3) & (r < 2 * p / 3))
                is_z = (r >= p / 3) & (r < p)
                x[:, t] ^= is_x.astype(np.uint8)
                z[:, t] ^= is_z.astype(np.uint8)
            elif name == "DEPOLARIZE2":
                a, b = t[0::2], t[1::2]
                r = rng.random((shots, len(a)))
                p = inst.arg
                # Draw one of 15 non-identity two-qubit Paulis uniformly.
                choice = np.where(r < p, (r / p * 15).astype(np.int64) + 1, 0)
                pa, pb = choice // 4, choice % 4  # 0=I,1=X,2=Y,3=Z per qubit
                x[:, a] ^= ((pa == 1) | (pa == 2)).astype(np.uint8)
                z[:, a] ^= ((pa == 2) | (pa == 3)).astype(np.uint8)
                x[:, b] ^= ((pb == 1) | (pb == 2)).astype(np.uint8)
                z[:, b] ^= ((pb == 2) | (pb == 3)).astype(np.uint8)
            elif name == "DETECTOR":
                if t:
                    detectors[:, d_idx] = records[:, t].sum(axis=1) % 2
                d_idx += 1
            elif name == "OBSERVABLE":
                if t:
                    observables[:, o_idx] = records[:, t].sum(axis=1) % 2
                o_idx += 1
            else:  # pragma: no cover - guarded by Circuit.append
                raise ValueError(f"unknown instruction {name}")
        return detectors, observables

    def propagate_mechanisms(
        self, injections: list[tuple[int, dict[int, str]]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Deterministically propagate one Pauli injection per pseudo-shot.

        ``injections[k] = (position, {qubit: 'X'|'Y'|'Z'})`` injects the
        given Pauli immediately *at* instruction index ``position`` (i.e.
        before the instruction at that index executes) in pseudo-shot
        ``k``, with all stochastic channels disabled.  Returns the flipped
        detectors/observables per pseudo-shot — the rows of the detector
        error model.
        """
        c = self.circuit
        shots = len(injections)
        x = np.zeros((shots, c.num_qubits), dtype=np.uint8)
        z = np.zeros((shots, c.num_qubits), dtype=np.uint8)
        records = np.zeros((shots, c.num_measurements), dtype=np.uint8)
        detectors = np.zeros((shots, c.num_detectors), dtype=np.uint8)
        observables = np.zeros((shots, c.num_observables), dtype=np.uint8)
        by_position: dict[int, list[tuple[int, dict[int, str]]]] = {}
        for k, (pos, pauli) in enumerate(injections):
            by_position.setdefault(pos, []).append((k, pauli))
        m_idx = d_idx = o_idx = 0

        for i, inst in enumerate(c.instructions):
            for k, pauli in by_position.get(i, ()):
                for q, letter in pauli.items():
                    if letter in ("X", "Y"):
                        x[k, q] ^= 1
                    if letter in ("Z", "Y"):
                        z[k, q] ^= 1
            name = inst.name
            t = list(inst.targets)
            if name == "H":
                x[:, t], z[:, t] = z[:, t].copy(), x[:, t].copy()
            elif name == "CX":
                ctrl, targ = t[0::2], t[1::2]
                x[:, targ] ^= x[:, ctrl]
                z[:, ctrl] ^= z[:, targ]
            elif name in ("R", "RX"):
                x[:, t] = 0
                z[:, t] = 0
            elif name == "M":
                n = len(t)
                records[:, m_idx : m_idx + n] = x[:, t]
                m_idx += n
            elif name == "MX":
                n = len(t)
                records[:, m_idx : m_idx + n] = z[:, t]
                m_idx += n
            elif name == "DETECTOR":
                if t:
                    detectors[:, d_idx] = records[:, t].sum(axis=1) % 2
                d_idx += 1
            elif name == "OBSERVABLE":
                if t:
                    observables[:, o_idx] = records[:, t].sum(axis=1) % 2
                o_idx += 1
            # Stochastic channels: disabled during propagation.
        return detectors, observables


def sample_detectors(
    circuit: Circuit, shots: int, *, seed: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """One-call convenience wrapper around :class:`FrameSampler`."""
    return FrameSampler(circuit, seed=seed).sample(shots)
