"""The four Surf-Deformer deformation instructions (section IV, fig. 6).

============== ==============================================================
Instruction     Effect
============== ==============================================================
``DataQ_RM``    remove one interior data qubit; the two same-basis
                plaquettes on each side merge into super-stabilizers
                (fig. 6a — coincides with ASC-S's super-stabilizer move).
``SyndromeQ_RM``remove one interior syndrome (ancilla) qubit; its check is
                re-measured through single-qubit gauge operators on its
                data neighbours, and only the *opposite*-basis plaquettes
                merge (fig. 6b — preserves one basis' distance entirely).
``PatchQ_RM``   remove a boundary data or syndrome qubit by deforming the
                patch boundary, fixing the chosen basis (fig. 6c/8).
``PatchQ_ADD``  incorporate a new scale layer of qubits on one side of the
                patch (fig. 6d), used by adaptive enlargement.
============== ==============================================================

Each instruction is a composition of the atomic gauge transformations of
section II-C; logical representatives are rerouted (Theorem 5) before the
stabilizer group is modified, so the encoded state is preserved — the test
suite re-validates the Theorem-1/Definition-4 invariants after every call.
"""

from __future__ import annotations

from dataclasses import replace

from repro.codes import Check
from repro.codes.subsystem import SubsystemCode
from repro.deform.gauge import reroute_logical_off, s2s_merge, stabilizers_containing
from repro.pauli import PauliOp, commutes
from repro.surface.lattice import Coord, is_data_coord, is_face_coord
from repro.surface.patch import SurfacePatch, rotated_rect_patch

__all__ = ["data_q_rm", "syndrome_q_rm", "patch_q_rm", "patch_q_add_layer"]

_OPPOSITE = {"X": "Z", "Z": "X"}


# ----------------------------------------------------------------------
# Shared low-level steps
# ----------------------------------------------------------------------
def _truncate_checks(code: SubsystemCode, q0: Coord) -> None:
    """Drop ``q0`` from the support of every measured check.

    Checks reduced to identity are deleted and unreferenced from
    stabilizer decompositions (their contribution was exactly the removed
    qubit, which cancels against the paired generator truncation).
    """
    for name, check in list(code.checks.items()):
        if q0 not in check.pauli.support:
            continue
        new_support = check.pauli.support - {q0}
        if not new_support:
            del code.checks[name]
            _drop_check_reference(code, name)
        else:
            new_pauli = (
                PauliOp.x_on(new_support)
                if check.basis == "X"
                else PauliOp.z_on(new_support)
            )
            code.checks[name] = replace(check, pauli=new_pauli)


def _drop_check_reference(code: SubsystemCode, check_name: str) -> None:
    for gen in code.stabilizers.values():
        if check_name in gen.measured_via:
            gen.measured_via = tuple(n for n in gen.measured_via if n != check_name)


def _purge_anticommuting_checks(code: SubsystemCode) -> None:
    """Stop measuring checks that anticommute with a stabilizer generator.

    Measuring such an operator would randomise the stabilizer it
    anticommutes with; the boundary-deformation instructions sacrifice
    these checks deliberately.  It is an internal error for a purged check
    to still appear in a stabilizer decomposition.
    """
    stab_paulis = [g.pauli for g in code.stabilizers.values()]
    for name, check in list(code.checks.items()):
        if all(commutes(check.pauli, s) for s in stab_paulis):
            continue
        for gen in code.stabilizers.values():
            if name in gen.measured_via:
                raise RuntimeError(
                    f"check {name} anticommutes with a stabilizer but is "
                    f"required to measure {gen.name}"
                )
        del code.checks[name]


def _remove_data_qubit(patch: SurfacePatch, q0: Coord) -> None:
    code = patch.code
    _truncate_checks(code, q0)
    code.data_qubits.discard(q0)
    patch.defective_data.add(q0)
    for name, gen in list(code.stabilizers.items()):
        if gen.pauli.is_identity():
            del code.stabilizers[name]


# ----------------------------------------------------------------------
# DataQ_RM
# ----------------------------------------------------------------------
def data_q_rm(patch: SurfacePatch, q0: Coord) -> None:
    """Remove the interior data qubit at ``q0`` (fig. 6a).

    Gauge-transformation content: four S2G introduce the anticommuting
    pair ``X_q0, Z_q0`` (turning the four touching plaquettes into gauge
    operators), four G2G strip ``q0`` from those gauge operators, and the
    plaquette pairs re-enter the stabilizer group as the two
    super-stabilizers ``s1·s2`` and ``g1·g2``.
    """
    code = patch.code
    if q0 not in code.data_qubits:
        raise ValueError(f"{q0} is not an active data qubit")
    reroute_logical_off(code, {q0}, "X")
    reroute_logical_off(code, {q0}, "Z")
    for basis in ("X", "Z"):
        gens = stabilizers_containing(code, q0, basis)
        if len(gens) == 2:
            s2s_merge(code, [g.name for g in gens])
        elif len(gens) == 1:
            raise ValueError(
                f"{q0} touches only one {basis} stabilizer — a boundary "
                "qubit; use PatchQ_RM"
            )
    _remove_data_qubit(patch, q0)


# ----------------------------------------------------------------------
# SyndromeQ_RM
# ----------------------------------------------------------------------
def syndrome_q_rm(patch: SurfacePatch, a0: Coord) -> None:
    """Remove the interior syndrome qubit (ancilla) at face ``a0`` (fig. 6b).

    The check measured by ``a0`` survives as a stabilizer: it is inferred
    from new single-qubit gauge measurements on its data neighbours.  The
    opposite-basis plaquettes touching those neighbours merge into one
    super-stabilizer (the octagon of fig. 6b), so only the opposite
    basis' distance is reduced — the key advantage over ASC-S's
    four-``DataQ_RM`` treatment (fig. 7a).
    """
    code = patch.code
    c0 = patch.check_at(a0)
    if c0 is None:
        raise ValueError(f"no active check uses ancilla {a0}")
    basis = c0.basis
    other = _OPPOSITE[basis]
    neighbors = sorted(c0.pauli.support)

    reroute_logical_off(code, set(neighbors), "X")
    reroute_logical_off(code, set(neighbors), "Z")

    # The opposite-basis generators touching the neighbours lose their
    # individual determinism once the single-qubit gauges are measured;
    # only products whose support excludes the neighbours survive.
    # Merge per connected component (generators linked by a shared
    # neighbour) — the clean interior case gives exactly the fig. 6(b)
    # octagon; components whose product still touches a neighbour are
    # demoted to pure gauge.
    affected = {
        gen.name: gen
        for q in neighbors
        for gen in stabilizers_containing(code, q, other)
    }
    components = _components_by_shared_qubits(affected, set(neighbors))
    for component in components:  # validate everything before mutating
        product = PauliOp.identity()
        for name in component:
            product = product * affected[name].pauli
        if product.support & set(neighbors):
            # No product of the touched generators avoids the gauge
            # qubits: the clean inference of fig. 6(b) does not exist
            # here (dense defect cluster).  Callers fall back to the
            # super-stabilizer treatment.
            raise ValueError(
                f"SyndromeQ_RM at {a0}: opposite-basis generators cannot "
                "be re-inferred around the gauge qubits"
            )
    for component in components:
        if len(component) >= 2:
            s2s_merge(code, sorted(component))

    gauge_names = []
    for q in neighbors:
        gname = code.fresh_name(f"{basis.lower()}g")
        pauli = PauliOp.x_on([q]) if basis == "X" else PauliOp.z_on([q])
        code.checks[gname] = Check(pauli=pauli, basis=basis, name=gname, ancilla=None)
        gauge_names.append(gname)

    del code.checks[c0.name]
    for gen in code.stabilizers.values():
        if c0.name in gen.measured_via:
            via = set(gen.measured_via)
            via.discard(c0.name)
            via |= set(gauge_names)
            gen.measured_via = tuple(sorted(via))

    patch.defective_ancillas.add(a0)
    _purge_anticommuting_checks(code)


# ----------------------------------------------------------------------
# PatchQ_RM
# ----------------------------------------------------------------------
def _components_by_shared_qubits(
    gens: dict, qubits: set
) -> list[set[str]]:
    """Connected components of generators linked through ``qubits``."""
    by_qubit: dict = {}
    for name, gen in gens.items():
        for q in gen.pauli.support & qubits:
            by_qubit.setdefault(q, []).append(name)
    parent = {name: name for name in gens}

    def find(a):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for names in by_qubit.values():
        for other in names[1:]:
            parent[find(other)] = find(names[0])
    groups: dict = {}
    for name in gens:
        groups.setdefault(find(name), set()).add(name)
    return list(groups.values())


def patch_q_rm(patch: SurfacePatch, q0: Coord, fix_basis: str | None = None) -> None:
    """Remove a boundary qubit by deforming the patch boundary (fig. 6c).

    For a **data** qubit, ``fix_basis`` selects which single-qubit
    operator is fixed as a stabilizer (fig. 8): fixing ``Z`` keeps the
    Z-type checks (truncated) as stabilizers and sacrifices the
    anticommuting X-type plaquette, receding the X-check boundary; and
    vice versa.  When ``fix_basis`` is omitted it defaults to the
    boundary type the qubit sits on (west/east → Z, north/south → X);
    corner qubits should be decided by :func:`repro.deform.balancing`.

    For a **syndrome** qubit (boundary half-check ancilla), the
    half-check is simply disabled — there is no intact ancilla left that
    could infer it.
    """
    code = patch.code
    if is_face_coord(q0):
        _disable_check(patch, q0)
        return
    if not is_data_coord(q0) or q0 not in code.data_qubits:
        raise ValueError(f"{q0} is not an active lattice qubit")

    if fix_basis is None:
        sides = patch.data_sides(q0)
        if not sides:
            raise ValueError(f"{q0} is interior; use DataQ_RM")
        side = next(iter(sides))
        fix_basis = "Z" if side in ("w", "e") else "X"
    if fix_basis not in ("X", "Z"):
        raise ValueError("fix_basis must be 'X' or 'Z'")
    sacrifice = _OPPOSITE[fix_basis]

    reroute_logical_off(code, {q0}, "X")
    reroute_logical_off(code, {q0}, "Z")

    gens = stabilizers_containing(code, q0, sacrifice)
    if len(gens) >= 2:
        s2s_merge(code, [g.name for g in gens])
    elif len(gens) == 1:
        del code.stabilizers[gens[0].name]

    for gen in stabilizers_containing(code, q0, fix_basis):
        new_support = gen.pauli.support - {q0}
        gen.pauli = (
            PauliOp.x_on(new_support)
            if fix_basis == "X"
            else PauliOp.z_on(new_support)
        )

    _remove_data_qubit(patch, q0)
    _purge_anticommuting_checks(code)


def _disable_check(patch: SurfacePatch, a0: Coord) -> None:
    """Disable the check whose ancilla is at ``a0`` (boundary syndrome defect).

    A data qubit whose *only* same-basis stabilizer coverage flows through
    this check would be left with an undetectable weight-1 error, so such
    orphans are excised first by deforming the boundary around them
    (``PatchQ_RM`` sacrificing this very check — fig. 6c's removal of the
    boundary syndrome q5 together with its orphaned data qubits).
    """
    code = patch.code
    check = patch.check_at(a0)
    patch.defective_ancillas.add(a0)
    if check is None:
        return
    basis = check.basis
    for q in sorted(check.pauli.support):
        gens = stabilizers_containing(code, q, basis)
        if gens and all(check.name in g.measured_via for g in gens):
            patch_q_rm(patch, q, fix_basis=_OPPOSITE[basis])
            if patch.check_at(a0) is None:
                return
    check = patch.check_at(a0)
    if check is None:
        return
    for name, gen in list(code.stabilizers.items()):
        if check.name in gen.measured_via:
            del code.stabilizers[name]
    del code.checks[check.name]


# ----------------------------------------------------------------------
# PatchQ_ADD
# ----------------------------------------------------------------------
def patch_q_add_layer(patch: SurfacePatch, side: str) -> list[Coord]:
    """Incorporate one scale layer of new qubits on ``side`` (fig. 6d/9).

    New data qubits are initialised in ``|0⟩`` for west/east growth (the
    new single-qubit ``Z`` stabilizers merge into the extended patch) and
    ``|+⟩`` for north/south growth, then the regular lattice over the
    enlarged bounding box is measured.  Previously removed defective
    qubits that fall inside the new footprint are re-included by the
    rebuild and **must be re-excluded by the caller** — Algorithm 2 runs
    the Defect Removal subroutine on the returned list (fig. 9's
    "temporarily disregard, then exclude" step).

    Returns the physical qubit coordinates (data and ancilla) inside the
    new footprint that are known defective.
    """
    if side not in ("n", "s", "e", "w"):
        raise ValueError("side must be one of 'n', 's', 'e', 'w'")
    # Grow from the design footprint, not the (possibly dented) active
    # bounds, so fully-defective layers are not re-grown forever.
    min_x, min_y, max_x, max_y = patch.footprint
    if side == "e":
        max_x += 2
    elif side == "w":
        min_x -= 2
    elif side == "n":
        max_y += 2
    else:
        min_y -= 2

    origin = (min_x - 1, min_y - 1)
    width = (max_x - min_x) // 2 + 1
    height = (max_y - min_y) // 2 + 1
    fresh = rotated_rect_patch(width, height, origin, target_d=patch.d)

    patch.code = fresh.code
    patch.origin = origin
    patch.footprint = (min_x, min_y, max_x, max_y)

    pending: list[Coord] = [
        q for q in sorted(patch.defective_data) if q in patch.code.data_qubits
    ]
    pending += [
        a for a in sorted(patch.defective_ancillas) if patch.check_at(a) is not None
    ]
    return pending
