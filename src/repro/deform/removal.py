"""Defect Removal subroutine — Algorithm 1 of the paper.

Routes each defective qubit to the appropriate instruction:

* interior data qubit → ``DataQ_RM``
* interior syndrome qubit → ``SyndromeQ_RM``
* boundary qubit → ``PatchQ_RM``, with the fixed basis chosen by the
  qubit's edge type, or by :func:`balancing` for corner qubits (fig. 8):
  the option that best balances the X- and Z-distances wins.

Returns the distance lost relative to the pre-removal code (Algorithm 1's
return value feeds Adaptive Enlargement).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.distance import graph_distance
from repro.deform.gauge import stabilizers_containing
from repro.deform.instructions import data_q_rm, patch_q_rm, syndrome_q_rm
from repro.surface.lattice import Coord, is_data_coord, is_face_coord
from repro.surface.patch import SurfacePatch

__all__ = ["defect_removal", "balancing", "RemovalReport"]


@dataclass
class RemovalReport:
    """Outcome of one Defect Removal pass."""

    handled: list[tuple[Coord, str]] = field(default_factory=list)
    skipped: list[Coord] = field(default_factory=list)
    distance_before: tuple[int, int] = (0, 0)
    distance_after: tuple[int, int] = (0, 0)

    @property
    def distance_loss(self) -> tuple[int, int]:
        """``(ΔdX, ΔdZ)`` lost to the removal pass."""
        return (
            self.distance_before[0] - self.distance_after[0],
            self.distance_before[1] - self.distance_after[1],
        )


def balancing(patch: SurfacePatch, q0: Coord) -> str:
    """Choose the fixed basis for a corner defect (fig. 8).

    Tries both options on copies and picks the one maximising the code
    distance ``min(dX, dZ)``, breaking ties towards the larger total —
    i.e. the balanced choice of fig. 8(b) rather than ASC-S's fixed
    minimal-disable choice of fig. 8(a).
    """
    best_basis, best_key = "Z", None
    for basis in ("Z", "X"):
        trial = patch.copy()
        try:
            patch_q_rm(trial, q0, fix_basis=basis)
            dx = graph_distance(trial.code, "X")
            dz = graph_distance(trial.code, "Z")
        except (ValueError, RuntimeError):
            continue
        key = (min(dx, dz), dx + dz)
        if best_key is None or key > best_key:
            best_basis, best_key = basis, key
    return best_basis


def defect_removal(
    patch: SurfacePatch,
    defects: set[Coord] | list[Coord],
    *,
    compute_distances: bool = True,
) -> RemovalReport:
    """Algorithm 1: remove every defective qubit from the code.

    ``defects`` may contain data-qubit coordinates (odd, odd) and ancilla
    face coordinates (even, even).  Already-removed qubits are skipped —
    the subroutine is idempotent, so the deformation unit can feed it the
    full persisted defect map each cycle.

    ``compute_distances=False`` skips the before/after distance
    measurement (used in hot loops where the caller measures anyway).
    """
    report = RemovalReport()
    if compute_distances:
        report.distance_before = (
            graph_distance(patch.code, "X"),
            graph_distance(patch.code, "Z"),
        )

    # Data defects first: once defective data qubits are excised, the
    # checks of nearby defective ancillas are already truncated, so
    # SyndromeQ_RM never places gauge measurements on doomed qubits.
    ordered = sorted(
        set(defects), key=lambda c: (0 if is_data_coord(c) else 1, c)
    )
    for defect in ordered:
        action = _route_defect(patch, defect)
        if action is None:
            report.skipped.append(defect)
        else:
            report.handled.append((defect, action))

    if compute_distances:
        report.distance_after = (
            graph_distance(patch.code, "X"),
            graph_distance(patch.code, "Z"),
        )
    return report


def _score_and_adopt(
    patch: SurfacePatch,
    candidates: list[tuple[str, "SurfacePatch"]],
    defect: Coord,
) -> str:
    """Adopt the validated candidate treatment with the best distance.

    Candidates failing the code validity audit (e.g. a boundary fix that
    would orphan a qubit) are discarded; earlier candidates win ties, so
    list the preferred instruction first.
    """
    from repro.codes.validity import ValidityError, check_code

    best = None
    best_key = None
    for priority, (action, trial) in enumerate(candidates):
        try:
            check_code(trial.code)
            dx = graph_distance(trial.code, "X")
            dz = graph_distance(trial.code, "Z")
        except (ValueError, RuntimeError, ValidityError):
            continue
        key = (min(dx, dz), dx + dz, -priority)
        if best_key is None or key > best_key:
            best, best_key = (action, trial), key
    if best is None:
        raise ValueError(f"defect {defect}: no consistent removal exists")
    _adopt(patch, best[1])
    return best[0]


def _route_defect(patch: SurfacePatch, defect: Coord) -> str | None:
    """Dispatch one defect to an instruction; returns the action name.

    Every applicable instruction is attempted on a copy, validated, and
    scored by the resulting code distance; the best consistent option is
    adopted.  This realises Algorithm 1's dispatch *and* the fig. 8
    balancing in one mechanism, and degrades gracefully on dense defect
    clusters where the textbook instruction is inconsistent.
    """
    if is_data_coord(defect):
        if defect not in patch.code.data_qubits:
            patch.defective_data.add(defect)
            return None
        n_x = len(stabilizers_containing(patch.code, defect, "X"))
        n_z = len(stabilizers_containing(patch.code, defect, "Z"))
        candidates: list[tuple[str, SurfacePatch]] = []
        if n_x != 1 and n_z != 1:
            trial = patch.copy()
            try:
                data_q_rm(trial, defect)
                candidates.append(("DataQ_RM", trial))
            except (ValueError, RuntimeError):
                pass
        for basis in ("Z", "X"):
            trial = patch.copy()
            try:
                patch_q_rm(trial, defect, fix_basis=basis)
                candidates.append((f"PatchQ_RM[fix={basis}]", trial))
            except (ValueError, RuntimeError):
                pass
        return _score_and_adopt(patch, candidates, defect)

    if is_face_coord(defect):
        check = patch.check_at(defect)
        if check is None:
            patch.defective_ancillas.add(defect)
            return None
        return _remove_syndrome_validated(patch, defect)

    raise ValueError(f"{defect} is not a lattice coordinate")


def _remove_syndrome_validated(patch: SurfacePatch, defect: Coord) -> str:
    """Defective-ancilla removal with validation and fallbacks.

    Three candidate treatments run on copies and the one preserving the
    larger code distance (and passing the validity audit) is adopted:

    1. ``SyndromeQ_RM`` — the fig. 6(b) gauge-inference construction
       (preferred; exact for isolated interior syndrome defects).
    2. Plain boundary disable (``PatchQ_RM`` on the ancilla).
    3. Super-stabilizer fallback — remove the check's remaining data
       neighbours, then disable what is left (ASC-style; always
       available, even in dense defect clusters).
    """
    candidates: list[tuple[str, SurfacePatch]] = []

    trial = patch.copy()
    try:
        syndrome_q_rm(trial, defect)
        candidates.append(("SyndromeQ_RM", trial))
    except (ValueError, RuntimeError):
        pass

    disable = patch.copy()
    try:
        patch_q_rm(disable, defect)
        candidates.append(("PatchQ_RM[disable]", disable))
    except (ValueError, RuntimeError):
        pass

    fallback = patch.copy()
    try:
        check = fallback.check_at(defect)
        fallback.defective_ancillas.add(defect)
        for q in sorted(check.pauli.support):
            if q in fallback.code.data_qubits:
                _route_defect(fallback, q)
        if fallback.check_at(defect) is not None:
            patch_q_rm(fallback, defect)
        candidates.append(("SyndromeQ_RM[fallback]", fallback))
    except (ValueError, RuntimeError):
        pass

    return _score_and_adopt(patch, candidates, defect)


def _adopt(patch: SurfacePatch, trial: SurfacePatch) -> None:
    patch.code = trial.code
    patch.origin = trial.origin
    patch.footprint = trial.footprint
    patch.defective_data = trial.defective_data
    patch.defective_ancillas = trial.defective_ancillas
