"""Gauge-transformation primitives shared by the deformation instructions.

The paper's four atomic transformations (S2G, G2S, S2S, G2G — section
II-C) appear here in the operational form the instructions need:

* :func:`s2s_merge` — S2S: replace a set of same-basis stabilizer
  generators by their product (super-stabilizer formation).
* :func:`reroute_logical_off` — the Theorem-5 representative change:
  multiply a logical operator by stabilizer generators so its support
  avoids a forbidden qubit set.  Every instruction calls this *before*
  mutating the group, which is exactly the alternative-generator
  construction used in the appendix proofs.

The S2G/G2S bookkeeping (which measured checks stop or start being
stabilizer generators) is performed inside the instructions themselves,
where the lattice context determines the new gauge operators.
"""

from __future__ import annotations

from repro.codes import StabilizerGenerator, SubsystemCode
from repro.pauli import PauliOp

__all__ = ["stabilizers_containing", "s2s_merge", "reroute_logical_off"]


def stabilizers_containing(
    code: SubsystemCode, qubit: object, basis: str
) -> list[StabilizerGenerator]:
    """Stabilizer generators of ``basis`` whose support contains ``qubit``."""
    return [
        gen
        for gen in code.stabilizers.values()
        if gen.basis == basis and qubit in gen.pauli.support
    ]


def s2s_merge(code: SubsystemCode, names: list[str]) -> StabilizerGenerator:
    """S2S: replace generators ``names`` by their single product generator.

    The product's measurement decomposition is the symmetric difference of
    the constituents' decompositions (shared checks cancel, matching the
    Pauli product).  Returns the new generator.
    """
    if len(names) < 2:
        raise ValueError("s2s_merge needs at least two generators")
    gens = [code.stabilizers[n] for n in names]
    basis = gens[0].basis
    if any(g.basis != basis for g in gens):
        raise ValueError("cannot merge generators of different bases")
    product = PauliOp.identity()
    via: set[str] = set()
    for gen in gens:
        product = product * gen.pauli
        via ^= set(gen.measured_via)
    for name in names:
        del code.stabilizers[name]
    new_name = code.fresh_name(f"{basis}super")
    merged = StabilizerGenerator(
        pauli=product,
        basis=basis,
        name=new_name,
        measured_via=tuple(sorted(via)),
    )
    code.stabilizers[new_name] = merged
    return merged


def reroute_logical_off(code: SubsystemCode, forbidden: set, basis: str) -> None:
    """Move the tracked ``basis`` logical representative off ``forbidden``.

    Finds (by GF(2) elimination over the same-basis stabilizer
    generators) a product of stabilizers whose restriction to the
    forbidden qubits matches the logical's, and multiplies it in.  This
    is exactly the representative change of Theorem 5 — the logical class
    is untouched; only its written form moves.

    Raises ``ValueError`` when no rerouting exists (the forbidden set
    cuts every equivalent representative: the defect pattern has
    destroyed the logical qubit).
    """
    import numpy as np

    from repro.utils import gf2_solve

    logical = code.logical_x if basis == "X" else code.logical_z
    support = logical.x_support if basis == "X" else logical.z_support
    overlap = support & forbidden
    if not overlap:
        return

    order = code.qubit_order()
    index = {q: i for i, q in enumerate(order)}
    h = code.parity_matrix(basis)
    forbidden_cols = [index[q] for q in sorted(forbidden) if q in index]
    target = np.zeros(len(forbidden_cols), dtype=np.uint8)
    for pos, col in enumerate(forbidden_cols):
        if order[col] in support:
            target[pos] = 1

    x = gf2_solve(h[:, forbidden_cols], target) if forbidden_cols else None
    if x is not None:
        logical_vec = np.zeros(len(order), dtype=np.uint8)
        for q in support:
            logical_vec[index[q]] = 1
        new_vec = (logical_vec + x @ h) % 2
        new_support = {order[i] for i in np.nonzero(new_vec)[0]}
    else:
        # Super-stabilizer merges can make a qubit unreachable by pure
        # stabilizer multiplication even though an equivalent logical
        # exists: recompute a representative of the (unique, k = 1)
        # logical class from scratch, constrained off the forbidden set.
        new_support = _fresh_logical_avoiding(code, basis, forbidden)
        if new_support is None:
            raise ValueError(
                f"cannot reroute logical {basis} off {sorted(forbidden)}: "
                "defects disconnect the patch"
            )
    rerouted = (
        PauliOp.x_on(new_support) if basis == "X" else PauliOp.z_on(new_support)
    )
    if basis == "X":
        code.logical_x = rerouted
    else:
        code.logical_z = rerouted


def _fresh_logical_avoiding(
    code: SubsystemCode, basis: str, forbidden: set
) -> set | None:
    """A ``basis``-logical representative with no support on ``forbidden``.

    Searches the nullspace of the detecting-basis measured operators
    (restricted to allowed qubits) for a vector outside the same-basis
    stabilizer/gauge rowspace.  Returns its support set, or ``None`` when
    every representative of the class must cross ``forbidden``.
    """
    import numpy as np

    from repro.utils import gf2_in_rowspace, gf2_nullspace

    detect = "Z" if basis == "X" else "X"
    order = [q for q in code.qubit_order() if q not in forbidden]
    if not order:
        return None
    index = {q: i for i, q in enumerate(order)}

    detect_ops = code.stabilizer_ops(detect) + code.check_ops(detect)
    a = np.zeros((len(detect_ops), len(order)), dtype=np.uint8)
    for r, op in enumerate(detect_ops):
        sup = op.x_support if detect == "X" else op.z_support
        for q in sup:
            if q in index:
                a[r, index[q]] = 1

    same_ops = code.stabilizer_ops(basis) + code.gauge_ops(basis)
    b = np.zeros((len(same_ops), len(order)), dtype=np.uint8)
    for r, op in enumerate(same_ops):
        sup = op.x_support if basis == "X" else op.z_support
        for q in sup:
            if q in index:
                b[r, index[q]] = 1

    # If every nullspace basis vector is trivial (in the rowspace of b),
    # every combination is too, so checking the basis suffices.
    for candidate in gf2_nullspace(a):
        if not candidate.any():
            continue
        if not gf2_in_rowspace(b, candidate):
            return {order[i] for i in np.nonzero(candidate)[0]}
    return None
