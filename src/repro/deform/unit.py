"""The Code Deformation Unit (section V, fig. 5).

Runtime component invoked before every QEC cycle (or whenever the defect
detector reports new events).  Receives the current surface-code
configuration (a :class:`~repro.surface.SurfacePatch`) and fresh defect
information, then executes the two subroutines in order:

1. **Defect Removal** (Algorithm 1) — excise defective qubits.
2. **Adaptive Enlargement** (Algorithm 2) — restore the design distance
   within the layout's Δd budget.

The emitted :class:`DeformationReport` is what the execution unit would
consume to retarget its syndrome-extraction schedule; the paper notes the
update completes within a single QEC cycle, which holds here because the
instructions only reconfigure which checks are measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.deform.enlargement import EnlargementReport, adaptive_enlargement
from repro.deform.removal import RemovalReport, defect_removal
from repro.surface.lattice import Coord
from repro.surface.patch import SurfacePatch

__all__ = ["CodeDeformationUnit", "DeformationReport"]


@dataclass
class DeformationReport:
    """Joint outcome of one removal + enlargement cycle."""

    removal: RemovalReport
    enlargement: EnlargementReport | None
    instructions: list[str] = field(default_factory=list)

    @property
    def final_distance(self) -> tuple[int, int]:
        if self.enlargement is not None:
            return self.enlargement.final_distance
        return self.removal.distance_after

    @property
    def restored(self) -> bool:
        """Whether the design distance was fully restored."""
        if self.enlargement is None:
            return self.removal.distance_loss == (0, 0)
        return self.enlargement.restored


class CodeDeformationUnit:
    """Runtime defect-mitigation engine for a single logical patch.

    Args:
        max_layers_per_side: the layout generator's Δd budget — how many
            scale layers may be added in each direction before the patch
            would encroach on the communication channel (section VI).
        enlarge: when ``False`` the unit degrades to a pure defect-removal
            policy (the ASC-S-like ablation).
    """

    def __init__(self, *, max_layers_per_side: int = 4, enlarge: bool = True) -> None:
        self.max_layers_per_side = max_layers_per_side
        self.enlarge = enlarge

    def deform(
        self,
        patch: SurfacePatch,
        defects: set[Coord] | list[Coord],
        *,
        environment_defects: set[Coord] | None = None,
    ) -> DeformationReport:
        """Mitigate ``defects`` on ``patch``.

        ``environment_defects`` are defective physical qubits in the
        surrounding inter-space (not currently part of the patch); growth
        into them triggers the fig. 9 defective-layer handling.
        """
        removal = defect_removal(patch, defects)
        instructions = [f"{coord}:{action}" for coord, action in removal.handled]
        enlargement = None
        if self.enlarge:
            enlargement = adaptive_enlargement(
                patch,
                max_layers_per_side=self.max_layers_per_side,
                extra_defects=environment_defects,
            )
            instructions += [f"PatchQ_ADD[{side}]" for side in enlargement.layers_added]
        return DeformationReport(
            removal=removal, enlargement=enlargement, instructions=instructions
        )
