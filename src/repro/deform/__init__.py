"""Surf-Deformer's code deformation layer (sections IV and V).

Exposes the four deformation instructions, the two runtime subroutines
(Defect Removal — Algorithm 1; Adaptive Enlargement — Algorithm 2) and the
Code Deformation Unit that chains them each QEC cycle.
"""

from repro.deform.gauge import (
    reroute_logical_off,
    s2s_merge,
    stabilizers_containing,
)
from repro.deform.instructions import (
    data_q_rm,
    syndrome_q_rm,
    patch_q_rm,
    patch_q_add_layer,
)
from repro.deform.removal import defect_removal, balancing
from repro.deform.enlargement import adaptive_enlargement
from repro.deform.unit import CodeDeformationUnit, DeformationReport

__all__ = [
    "reroute_logical_off",
    "s2s_merge",
    "stabilizers_containing",
    "data_q_rm",
    "syndrome_q_rm",
    "patch_q_rm",
    "patch_q_add_layer",
    "defect_removal",
    "balancing",
    "adaptive_enlargement",
    "CodeDeformationUnit",
    "DeformationReport",
]
