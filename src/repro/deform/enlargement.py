"""Adaptive Enlargement subroutine — Algorithm 2 of the paper.

After defect removal the code distance may have dropped below the design
distance.  This subroutine restores it by adding scale layers
(``PatchQ_ADD``) one at a time, on the side whose prospective layer
contains the fewest known defects (Algorithm 2's ``min(layer1, layer2)``),
re-running Defect Removal whenever the rebuilt footprint re-covers known
defective qubits (fig. 9's irregular-boundary / defective-layer cases).

Enlargement is bounded by ``max_layers_per_side`` so the layout's Δd
inter-space budget (section VI) is respected.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codes.distance import graph_distance
from repro.deform.instructions import patch_q_add_layer
from repro.deform.removal import defect_removal
from repro.surface.lattice import Coord
from repro.surface.patch import SurfacePatch

__all__ = ["adaptive_enlargement", "EnlargementReport"]


@dataclass
class EnlargementReport:
    """Outcome of one Adaptive Enlargement pass."""

    layers_added: list[str] = field(default_factory=list)
    qubits_added: int = 0
    final_distance: tuple[int, int] = (0, 0)
    restored: bool = False


def _prospective_layer_coords(patch: SurfacePatch, side: str) -> list[Coord]:
    """Data coordinates a growth on ``side`` would add."""
    min_x, min_y, max_x, max_y = patch.footprint
    if side == "e":
        return [(max_x + 2, y) for y in range(min_y, max_y + 1, 2)]
    if side == "w":
        return [(min_x - 2, y) for y in range(min_y, max_y + 1, 2)]
    if side == "n":
        return [(x, max_y + 2) for x in range(min_x, max_x + 1, 2)]
    return [(x, min_y - 2) for x in range(min_x, max_x + 1, 2)]


def _pick_side(
    patch: SurfacePatch,
    sides: tuple[str, str],
    budget: dict[str, int],
    extra_defects: set[Coord],
) -> str | None:
    """The growth side with remaining budget and fewest layer defects."""
    candidates = []
    for side in sides:
        if budget.get(side, 0) <= 0:
            continue
        layer = _prospective_layer_coords(patch, side)
        bad = sum(
            1
            for q in layer
            if q in patch.defective_data or q in extra_defects
        )
        candidates.append((bad, len(layer), side))
    if not candidates:
        return None
    candidates.sort()
    return candidates[0][2]


def adaptive_enlargement(
    patch: SurfacePatch,
    target_dx: int | None = None,
    target_dz: int | None = None,
    *,
    max_layers_per_side: int = 4,
    extra_defects: set[Coord] | None = None,
) -> EnlargementReport:
    """Algorithm 2: restore the code distance by adaptive growth.

    ``target_dx``/``target_dz`` default to the patch's design distance
    ``d``.  ``extra_defects`` are qubits known to be defective beyond the
    patch's own memory (e.g. defects already detected in the inter-space
    the layer will grow into); they are removed after each growth step.
    ``max_layers_per_side`` is the layout's Δd budget per direction.
    """
    target_dx = patch.d if target_dx is None else target_dx
    target_dz = patch.d if target_dz is None else target_dz
    extra = set(extra_defects or ())

    report = EnlargementReport()
    before = patch.physical_qubit_count()
    dead_sides: set[str] = set()

    for _ in range(4 * max_layers_per_side + 4):
        dx = graph_distance(patch.code, "X")
        dz = graph_distance(patch.code, "Z")
        if dx >= target_dx and dz >= target_dz:
            report.restored = True
            break
        if dz < target_dz:
            sides = ("e", "w")
            budget = _budget(report, ("e", "w"), max_layers_per_side)
        else:
            sides = ("n", "s")
            budget = _budget(report, ("n", "s"), max_layers_per_side)
        for side in dead_sides:
            budget[side] = 0
        side = _pick_side(patch, sides, budget, extra)
        if side is None:
            break  # Δd budget exhausted in the needed direction
        snapshot = patch.copy()
        try:
            pending = patch_q_add_layer(patch, side)
            pending_set = set(pending)
            pending_set |= {q for q in extra if q in patch.code.data_qubits}
            pending_set |= {a for a in extra if patch.check_at(a) is not None}
            if pending_set:
                defect_removal(patch, pending_set, compute_distances=False)
        except ValueError:
            # A defect pattern in this layer disconnects the patch (e.g.
            # a fully-defective column): revert and never grow this way.
            _restore(patch, snapshot)
            dead_sides.add(side)
            continue
        report.layers_added.append(side)

    report.qubits_added = patch.physical_qubit_count() - before
    report.final_distance = (
        graph_distance(patch.code, "X"),
        graph_distance(patch.code, "Z"),
    )
    report.restored = (
        report.final_distance[0] >= target_dx
        and report.final_distance[1] >= target_dz
    )
    return report


def _budget(
    report: EnlargementReport, sides: tuple[str, str], max_per_side: int
) -> dict[str, int]:
    return {
        side: max_per_side - report.layers_added.count(side) for side in sides
    }


def _restore(patch: SurfacePatch, snapshot: SurfacePatch) -> None:
    patch.code = snapshot.code
    patch.origin = snapshot.origin
    patch.footprint = snapshot.footprint
    patch.defective_data = snapshot.defective_data
    patch.defective_ancillas = snapshot.defective_ancillas
