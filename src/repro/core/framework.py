"""The Surf-Deformer framework: layout generation + runtime deformation.

Mirrors fig. 5's integration into the surface-code workflow:

* at **compile time**, :meth:`SurfDeformer.plan` runs the layout
  generator on the program's resource profile, producing code distance,
  Δd inter-space and the placed layout;
* at **runtime**, :meth:`SurfDeformer.on_defects` feeds each detector
  report through the Code Deformation Unit, returning the instruction
  schedule the execution unit would apply.

Example::

    from repro import SurfDeformer, rotated_surface_code
    from repro.compiler import paper_benchmark

    framework = SurfDeformer()
    plan = framework.plan(paper_benchmark("QFT-100-20"), target_risk=0.01)
    patch = rotated_surface_code(plan.spec.d)
    report = framework.on_defects(patch, {(5, 5)})
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler import Program
from repro.defects import CosmicRayModel, DefectDetector
from repro.deform import CodeDeformationUnit, DeformationReport
from repro.eval.lambda_model import LambdaModel
from repro.layout.generator import LayoutGenerator, LayoutSpec
from repro.layout.grid import LogicalLayout
from repro.surface.lattice import Coord
from repro.surface.patch import SurfacePatch
from repro.surgery import estimate_schedule

__all__ = ["SurfDeformer", "CompiledPlan"]


@dataclass(frozen=True)
class CompiledPlan:
    """Compile-time output: layout spec, placed layout, runtime estimate."""

    spec: LayoutSpec
    layout: LogicalLayout
    total_cycles: float


class SurfDeformer:
    """End-to-end adaptive defect-mitigation framework.

    Args:
        lambda_model: calibrated logical-error scaling (defaults to this
            simulator's measured constants at p = 1e-3).
        defect_model: the dynamic defect environment.
        detector: optionally imperfect defect detector (fig. 14b).
    """

    def __init__(
        self,
        lambda_model: LambdaModel | None = None,
        defect_model: CosmicRayModel | None = None,
        detector: DefectDetector | None = None,
    ) -> None:
        self.lambda_model = lambda_model or LambdaModel()
        self.defect_model = defect_model or CosmicRayModel()
        self.detector = detector or DefectDetector()
        self.layout_generator = LayoutGenerator(self.lambda_model, self.defect_model)

    # ------------------------------------------------------------------
    # Compile time
    # ------------------------------------------------------------------
    def plan(self, program: Program, *, target_risk: float = 1e-3) -> CompiledPlan:
        """Generate the layout for ``program`` (fig. 5, compile time)."""
        # The schedule length depends on d and d depends on the schedule
        # length; iterate to the fixed point (converges in 2-3 steps).
        d = 15
        schedule = None
        for _ in range(4):
            schedule = estimate_schedule(
                cx_count=program.cx_count,
                t_count=program.t_count,
                num_logical=program.num_qubits,
                d=d,
            )
            refined = self.layout_generator.choose_distance(
                program.num_qubits, schedule.total_cycles, target_risk
            )
            if refined == d:
                break
            d = refined
        spec = self.layout_generator.generate(
            program.num_qubits,
            schedule.total_cycles,
            target_risk=target_risk,
            d=d,
        )
        return CompiledPlan(
            spec=spec,
            layout=LogicalLayout(spec=spec),
            total_cycles=schedule.total_cycles,
        )

    # ------------------------------------------------------------------
    # Runtime
    # ------------------------------------------------------------------
    def deformation_unit(self, spec: LayoutSpec) -> CodeDeformationUnit:
        """A Code Deformation Unit budgeted by the layout's Δd."""
        layers = max(1, spec.delta_d // 2)
        return CodeDeformationUnit(max_layers_per_side=layers)

    def on_defects(
        self,
        patch: SurfacePatch,
        true_defects: set[Coord],
        *,
        spec: LayoutSpec | None = None,
        environment_defects: set[Coord] | None = None,
    ) -> DeformationReport:
        """Process one defect-detector report on ``patch`` (fig. 5, runtime).

        Returns the deformation report whose ``instructions`` field is
        the schedule handed to the execution unit.  Detection noise (if
        the framework was built with an imperfect detector) is applied
        to ``true_defects`` first.
        """
        healthy = patch.all_qubit_coords() - set(true_defects)
        reported, _missed = self.detector.report(set(true_defects), healthy)
        if spec is None:
            unit = CodeDeformationUnit()
        else:
            unit = self.deformation_unit(spec)
        return unit.deform(
            patch, reported, environment_defects=environment_defects
        )
