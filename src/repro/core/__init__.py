"""The Surf-Deformer framework facade (fig. 5)."""

from repro.core.framework import SurfDeformer

__all__ = ["SurfDeformer"]
