"""Pauli operators over an arbitrary set of hashable qubit labels.

A :class:`PauliOp` stores, per qubit, whether the operator acts with an X
component and/or a Z component (``Y = XZ`` up to phase; global phases are
irrelevant for stabilizer bookkeeping and are not tracked).  Qubits are
identified by arbitrary hashable labels — the surface-code layer uses
``(x, y)`` lattice coordinates — so deformation instructions can add and
remove qubits without re-indexing a dense array.

The dense binary-symplectic form needed by :mod:`repro.utils.gf2` is
produced on demand via :meth:`PauliOp.to_symplectic`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping
from typing import Any

import numpy as np

Qubit = Hashable

_VALID = {"I", "X", "Y", "Z"}

__all__ = ["PauliOp", "commutes", "symplectic_product"]


class PauliOp:
    """An n-qubit Pauli operator (phase-free) on labelled qubits.

    Internally two frozensets: the X-support and the Z-support.  A qubit in
    both supports carries a Y.  Instances are immutable and hashable so they
    can live in stabilizer/gauge sets.
    """

    __slots__ = ("_xs", "_zs", "_hash")

    def __init__(
        self,
        x_support: Iterable[Qubit] = (),
        z_support: Iterable[Qubit] = (),
    ) -> None:
        self._xs = frozenset(x_support)
        self._zs = frozenset(z_support)
        self._hash = hash((self._xs, self._zs))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_label(cls, mapping: Mapping[Qubit, str]) -> "PauliOp":
        """Build from ``{qubit: 'X'|'Y'|'Z'|'I'}``."""
        xs, zs = [], []
        for qubit, letter in mapping.items():
            if letter not in _VALID:
                raise ValueError(f"invalid Pauli letter {letter!r}")
            if letter in ("X", "Y"):
                xs.append(qubit)
            if letter in ("Z", "Y"):
                zs.append(qubit)
        return cls(xs, zs)

    @classmethod
    def x_on(cls, qubits: Iterable[Qubit]) -> "PauliOp":
        """Pure-X operator on an iterable of qubit labels.

        Qubit labels are often tuples (lattice coordinates), so a single
        qubit must be wrapped: ``PauliOp.x_on([(1, 1)])``.
        """
        return cls(tuple(qubits), ())

    @classmethod
    def z_on(cls, qubits: Iterable[Qubit]) -> "PauliOp":
        """Pure-Z operator on an iterable of qubit labels (see :meth:`x_on`)."""
        return cls((), tuple(qubits))

    @classmethod
    def identity(cls) -> "PauliOp":
        return cls((), ())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def x_support(self) -> frozenset[Qubit]:
        return self._xs

    @property
    def z_support(self) -> frozenset[Qubit]:
        return self._zs

    @property
    def support(self) -> frozenset[Qubit]:
        """All qubits acted on non-trivially."""
        return self._xs | self._zs

    @property
    def weight(self) -> int:
        """Number of qubits acted on non-trivially."""
        return len(self.support)

    def is_identity(self) -> bool:
        return not self._xs and not self._zs

    def is_x_type(self) -> bool:
        """Only X components (CSS X-type)."""
        return not self._zs

    def is_z_type(self) -> bool:
        """Only Z components (CSS Z-type)."""
        return not self._xs

    def letter(self, qubit: Qubit) -> str:
        """The single-qubit Pauli letter at ``qubit``."""
        x = qubit in self._xs
        z = qubit in self._zs
        if x and z:
            return "Y"
        if x:
            return "X"
        if z:
            return "Z"
        return "I"

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def __mul__(self, other: "PauliOp") -> "PauliOp":
        """Phase-free Pauli product (XOR of supports)."""
        if not isinstance(other, PauliOp):
            return NotImplemented
        return PauliOp(self._xs ^ other._xs, self._zs ^ other._zs)

    def commutes_with(self, other: "PauliOp") -> bool:
        """True iff the two operators commute."""
        return symplectic_product(self, other) == 0

    def restricted_to(self, qubits: Iterable[Qubit]) -> "PauliOp":
        """The operator with support clipped to ``qubits``."""
        keep = set(qubits)
        return PauliOp(self._xs & keep, self._zs & keep)

    def to_symplectic(self, qubit_order: list[Qubit]) -> np.ndarray:
        """Dense ``[x | z]`` binary-symplectic row for the given ordering."""
        n = len(qubit_order)
        row = np.zeros(2 * n, dtype=np.uint8)
        index = {q: i for i, q in enumerate(qubit_order)}
        for q in self._xs:
            if q in index:
                row[index[q]] = 1
        for q in self._zs:
            if q in index:
                row[n + index[q]] = 1
        return row

    @classmethod
    def from_symplectic(cls, row: np.ndarray, qubit_order: list[Qubit]) -> "PauliOp":
        """Inverse of :meth:`to_symplectic`."""
        n = len(qubit_order)
        row = np.asarray(row, dtype=np.uint8).reshape(-1)
        if row.shape[0] != 2 * n:
            raise ValueError("symplectic row length must be twice the qubit count")
        xs = [qubit_order[i] for i in np.nonzero(row[:n])[0]]
        zs = [qubit_order[i] for i in np.nonzero(row[n:])[0]]
        return cls(xs, zs)

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, PauliOp):
            return NotImplemented
        return self._xs == other._xs and self._zs == other._zs

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        terms = []
        for q in sorted(self.support, key=repr):
            terms.append(f"{self.letter(q)}{q}")
        body = " ".join(terms) if terms else "I"
        return f"PauliOp({body})"


def symplectic_product(a: PauliOp, b: PauliOp) -> int:
    """Symplectic inner product: 0 when ``a`` and ``b`` commute, 1 otherwise."""
    anti = len(a.x_support & b.z_support) + len(a.z_support & b.x_support)
    return anti % 2


def commutes(a: PauliOp, b: PauliOp) -> bool:
    """Convenience wrapper for ``a.commutes_with(b)``."""
    return symplectic_product(a, b) == 0
