"""Pauli operators in binary-symplectic representation."""

from repro.pauli.pauli import PauliOp, commutes, symplectic_product

__all__ = ["PauliOp", "commutes", "symplectic_product"]
