"""Durable filesystem write primitives.

Everything the crash-safe runtime persists — artifact-cache entries,
checkpoint journals, benchmark reports — goes through these helpers so
a process killed at any instant can never leave a *partially written*
file where a committed one is expected:

* :func:`atomic_write_bytes` / :func:`atomic_write_text` write to a
  temporary sibling in the destination directory, flush + fsync it,
  then publish with ``os.replace`` — readers see either the old
  content or the complete new content, never a truncation.
* :func:`durable_append` appends one record to an append-only log and
  fsyncs before returning.  A crash mid-append can leave at most one
  torn record at the *tail* of the file; log readers are expected to
  tolerate (skip) a torn tail, which is exactly what
  :mod:`repro.sweep.journal` does.

``fsync`` of the containing directory after a rename is best-effort:
it is what makes the rename itself durable across power loss, but some
filesystems refuse ``open(O_RDONLY)`` on directories, in which case the
entry survives process crashes (the threat model here) regardless.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

__all__ = ["atomic_write_bytes", "atomic_write_text", "durable_append"]


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` all-or-nothing (temp + ``os.replace``).

    The temporary carries the pid and a random suffix so concurrent
    writers of the same path never collide; last publisher wins, and
    every intermediate state on disk is a complete file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex[:8]}"
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def atomic_write_text(
    path: str | os.PathLike, text: str, *, encoding: str = "utf-8"
) -> None:
    """Text-mode :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


def durable_append(path: str | os.PathLike, line: str) -> None:
    """Append ``line`` (newline added if missing) and fsync.

    The single ``write`` call keeps the torn-write window to the tail
    of this one record; by the time this returns, the record is on
    disk and survives a SIGKILL of the appender.
    """
    if not line.endswith("\n"):
        line += "\n"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as f:
        f.write(line)
        f.flush()
        os.fsync(f.fileno())
