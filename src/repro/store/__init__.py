"""Crash-safe persistence: atomic writes + content-keyed artifact cache.

Two layers:

* :mod:`repro.store.atomic` — write-temp-then-rename file publication
  and fsynced append-only logging; every persistent file the runtime
  commits goes through these.
* :mod:`repro.store.artifacts` — :class:`ArtifactStore`, the
  content-keyed on-disk cache for build products (compiled circuits,
  DEMs, all-pairs path matrices) with checksum verification on load
  and quarantine-and-rebuild on corruption.

A process-wide default store wires the cache into the evaluation layer
without threading a handle through every call: :func:`set_store`
installs one (``None`` disables), :func:`get_store` reads it, and
:func:`using_store` scopes one to a ``with`` block.  When nothing is
installed, the ``REPRO_STORE`` environment variable (a directory path)
enables it for a whole process tree — which is how sweep worker
processes inherit the parent's store.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

from repro.store.artifacts import STORE_FORMAT, ArtifactStore, key_digest
from repro.store.atomic import atomic_write_bytes, atomic_write_text, durable_append
from repro.utils.env import env_str

__all__ = [
    "ArtifactStore",
    "key_digest",
    "STORE_FORMAT",
    "atomic_write_bytes",
    "atomic_write_text",
    "durable_append",
    "get_store",
    "set_store",
    "using_store",
]

#: Sentinel distinguishing "never configured" from "explicitly None".
_UNSET = object()
_ACTIVE_STORE: object = _UNSET
#: Memoised env-configured store: (path, ArtifactStore), so repeated
#: ``get_store()`` calls share one instance (and its hit/miss stats).
_ENV_STORE: tuple[str, ArtifactStore] | None = None


def set_store(store: ArtifactStore | str | os.PathLike | None) -> None:
    """Install the process-wide artifact store (a path builds one)."""
    global _ACTIVE_STORE
    if store is None or isinstance(store, ArtifactStore):
        _ACTIVE_STORE = store
    else:
        _ACTIVE_STORE = ArtifactStore(Path(store))


def get_store() -> ArtifactStore | None:
    """The active store: explicit ``set_store`` wins, else ``REPRO_STORE``."""
    global _ENV_STORE
    if _ACTIVE_STORE is not _UNSET:
        return _ACTIVE_STORE  # type: ignore[return-value]
    env = env_str("REPRO_STORE")
    if env is None:
        return None
    if _ENV_STORE is None or _ENV_STORE[0] != env:
        _ENV_STORE = (env, ArtifactStore(Path(env)))
    return _ENV_STORE[1]


@contextmanager
def using_store(
    store: ArtifactStore | str | os.PathLike | None,
) -> Iterator[ArtifactStore | None]:
    """Scope the process-wide store to a ``with`` block."""
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    set_store(store)
    try:
        yield get_store()
    finally:
        _ACTIVE_STORE = previous
