"""Content-keyed on-disk artifact cache with corruption quarantine.

The expensive build products of an experiment configuration — compiled
circuit programs, detector error models, all-pairs path matrices — are
pure functions of *content* fingerprints (the same tuples
``repro.eval.montecarlo`` already keys its in-process decoder memo on).
:class:`ArtifactStore` persists them across processes so a figure-scale
sweep pays the d = 9 build once per machine instead of once per run.

Layout under the store root::

    objects/<kind>/<dd>/<digest>.art     committed entries
    quarantine/<kind>-<digest>-<pid>...  corrupt entries, moved aside

Entry format (one file): a JSON header line carrying the payload's
length and SHA-256, then the pickled payload bytes.  Writes go through
:func:`repro.store.atomic.atomic_write_bytes`, so a crash mid-write
never publishes a partial entry.  Loads verify length and checksum
*before* unpickling; any mismatch — truncation, bit flip, a foreign
file — quarantines the entry (``os.replace`` into ``quarantine/``) and
reports a miss, so the caller rebuilds and re-persists.  Corruption is
therefore never a crash and never poisons later runs.

Keys are arbitrary content tuples; :func:`key_digest` canonicalises
nested tuples / frozensets / dataclasses into a stable representation
and hashes it, so unordered collections (the check/stabilizer
frozensets of a code fingerprint) digest identically across processes
(``hash()`` randomisation never enters the key path).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import uuid
from pathlib import Path

from collections.abc import Callable

from repro.store.atomic import atomic_write_bytes

__all__ = ["ArtifactStore", "key_digest", "STORE_FORMAT"]

#: Bumped whenever the entry format or canonicalisation changes;
#: participates in every digest so incompatible entries simply miss.
STORE_FORMAT = 1

_MAGIC = "repro-artifact"


def _canonical(obj: object) -> str:
    """Deterministic textual form of a content key.

    Unordered collections are sorted by their canonical forms and
    dataclasses flattened to ``(class, field=value, ...)``, so two
    processes building the same key tuple — in any construction order —
    produce the same digest.  Unknown types fall back to ``repr``,
    which keys like the code fingerprints never hit.
    """
    if isinstance(obj, (frozenset, set)):
        return "{" + ",".join(sorted(_canonical(x) for x in obj)) + "}"
    if isinstance(obj, (tuple, list)):
        return "(" + ",".join(_canonical(x) for x in obj) + ")"
    if isinstance(obj, dict):
        items = sorted((_canonical(k), _canonical(v)) for k, v in obj.items())
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__qualname__}({fields})"
    if isinstance(obj, float):
        return repr(obj)  # repr round-trips doubles exactly
    if isinstance(obj, (int, str, bytes, bool)) or obj is None:
        return repr(obj)
    return repr(obj)


def key_digest(key: object) -> str:
    """Stable SHA-256 hex digest of a content key."""
    text = f"v{STORE_FORMAT}:{_canonical(key)}"
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Content-addressed pickle store with verify-on-load.

    ``get``/``put`` never raise on a *bad entry*: corruption is
    quarantined and surfaces as a miss.  Real environment failures of
    the store itself (permission errors creating the root, disk full
    on write) degrade to misses too when ``strict=False`` (default) —
    an artifact cache must never take the experiment down with it.
    """

    def __init__(self, root: str | os.PathLike, *, strict: bool = False) -> None:
        self.root = Path(root)
        self.strict = strict
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.writes = 0
        self.write_errors = 0

    # -- paths ----------------------------------------------------------
    def _entry_path(self, kind: str, digest: str) -> Path:
        return self.root / "objects" / kind / digest[:2] / f"{digest}.art"

    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- core API -------------------------------------------------------
    def get(self, kind: str, key: object) -> object | None:
        """The stored value, or ``None`` on miss/corruption."""
        digest = key_digest(key)
        path = self._entry_path(kind, digest)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError:
            if self.strict:
                raise
            self.misses += 1
            return None
        value, reason = self._decode_entry(raw, kind, digest)
        if reason is not None:
            self._quarantine(path, kind, digest, reason)
            self.misses += 1
            return None
        self.hits += 1
        return value

    def put(self, kind: str, key: object, value: object) -> bool:
        """Persist ``value``; returns whether the write committed."""
        digest = key_digest(key)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        header = json.dumps(
            {
                "magic": _MAGIC,
                "format": STORE_FORMAT,
                "kind": kind,
                "digest": digest,
                "payload_len": len(payload),
                "payload_sha256": hashlib.sha256(payload).hexdigest(),
            },
            sort_keys=True,
        )
        try:
            atomic_write_bytes(
                self._entry_path(kind, digest),
                header.encode("utf-8") + b"\n" + payload,
            )
        except OSError:
            if self.strict:
                raise
            self.write_errors += 1
            return False
        self.writes += 1
        return True

    def get_or_build(
        self, kind: str, key: object, builder: Callable[[], object]
    ) -> object:
        """Load ``(kind, key)``, or build, persist, and return it."""
        value = self.get(kind, key)
        if value is not None:
            return value
        value = builder()
        self.put(kind, key, value)
        return value

    def __contains__(self, kind_key: tuple[str, object]) -> bool:
        kind, key = kind_key
        return self._entry_path(kind, key_digest(key)).exists()

    # -- verification & quarantine --------------------------------------
    def _decode_entry(
        self, raw: bytes, kind: str, digest: str
    ) -> tuple[object | None, str | None]:
        """``(value, None)`` for a healthy entry, ``(None, reason)`` else."""
        newline = raw.find(b"\n")
        if newline < 0:
            return None, "no header line"
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None, "unparseable header"
        if not isinstance(header, dict) or header.get("magic") != _MAGIC:
            return None, "bad magic"
        if header.get("format") != STORE_FORMAT:
            return None, f"format {header.get('format')!r}"
        if header.get("kind") != kind or header.get("digest") != digest:
            return None, "entry/key mismatch"
        payload = raw[newline + 1 :]
        if len(payload) != header.get("payload_len"):
            return None, (
                f"truncated payload ({len(payload)} of "
                f"{header.get('payload_len')} bytes)"
            )
        if hashlib.sha256(payload).hexdigest() != header.get("payload_sha256"):
            return None, "checksum mismatch"
        try:
            return pickle.loads(payload), None
        except Exception:
            # Checksummed bytes that still fail to unpickle mean the
            # artifact was written by an incompatible code version.
            return None, "unpicklable payload"

    def _quarantine(self, path: Path, kind: str, digest: str, reason: str) -> None:
        """Move a corrupt entry aside (never delete: it is evidence)."""
        self.corrupt += 1
        qdir = self._quarantine_dir()
        dest = qdir / (
            f"{kind}-{digest[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}.art"
        )
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
            (dest.with_suffix(".reason")).write_text(reason + "\n")
        except OSError:
            if self.strict:
                raise
            # Even quarantine failing must not crash the caller; the
            # corrupt entry will be retried (and overwritten) later.

    # -- bookkeeping ----------------------------------------------------
    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "writes": self.writes,
            "write_errors": self.write_errors,
        }
