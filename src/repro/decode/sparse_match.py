"""Sparse region-growing matching engine for large defect components.

The dense matching path (:meth:`MatchingDecoder._blossom_match`) hands
the blossom engine the *complete* graph over a component's ``k``
defects — ``k(k-1)/2`` edges gathered from the all-pairs matrices —
and the engine's per-stage edge scans and dual updates then cost
O(k³) Python operations.  At d ≥ 9 (and at p ≥ 3e-3, where almost
every shot is one big component) those oversize components dominate
decode time.

This module matches the same components *sparsely*.  Match regions
grow on the weighted decoding graph instead of on a dense derived
graph:

1. **Candidate discovery by region growing** — a multi-source Dijkstra
   (one priority-queue event schedule over the decoding-graph edges,
   :func:`region_candidates`) grows a region around every defect —
   and around the boundary, which walls regions off from far-away
   defects — until the regions tile the component's neighbourhood.
   Wherever two regions collide on an edge, the owning defects become
   matching candidates.  The batch hot path seeds the same structure
   from the already-gathered distance rows instead
   (:func:`knn_candidates`, each defect's nearest partners), which
   avoids re-walking the graph per component when the all-pairs
   matrices are already in cache.
2. **Sparse alternating-tree growth** — the candidate edges (a few per
   defect, not ``k²/2``) feed the shared primal–dual core
   (:func:`repro.decode.blossom.blossom_core`): alternating trees grow
   from free defects, odd cycles shrink into blossoms, and dual
   updates touch only the sparse edge set.
3. **Optimality repair** — the core returns its dual solution, and a
   single vectorised pass checks every *withheld* pair against the
   dual certificate: a pair ``(a, b)`` can improve the matching only
   if ``W[a, b] < big - (u_a + u_b)/2`` (i.e. the transformed edge
   would have negative slack; blossom duals only tighten this test,
   so checking vertex duals alone is conservative).  Violated pairs —
   plus the full star of any defect left unmatched — are added and
   the engine re-runs.  The loop terminates because every round adds
   at least one new edge, and on real components one round almost
   always suffices.

The result is therefore *exact* up to the engine's float-tie
tolerance (:data:`_EPS`, the same ``slack ≤ ε ⇒ tight`` rule the
dense blossom applies internally): the returned matching has minimum
total route weight among maximum-cardinality matchings of the complete
defect graph — the identical objective the dense blossom, the subset
DP and the networkx oracle optimise — which the agreement suites pin
on randomized graphs, dense memory circuits and untreated-defect runs
(``tests/test_sparse_match.py``).  Among equal-weight optima the
matching may differ from the dense engine's lowest-index-first choice
(the candidate scan order differs), so prediction-identity is pinned
on tie-free instances and weight-identity everywhere.

Thresholds
----------

Components with more than :data:`SPARSE_MIN_DEFECTS` − 1 defects
route here when ``MatchingDecoder(matcher="sparse")`` (the default);
smaller ones keep the stacked subset DP, which is faster below the
crossover because one numpy gather per popcount level resolves many
components at once.  ``matcher="dense"`` keeps the previous
dense-blossom path everywhere and serves as the oracle.
"""

from __future__ import annotations

import numpy as np

from repro.decode import blossom as _blossom
from repro.decode.batch import _DP_STACK_MAX
from repro.decode.blossom import blossom_core
from repro.decode.graph import DecodingGraph

__all__ = [
    "SPARSE_MIN_DEFECTS",
    "knn_candidates",
    "knn_candidates_batch",
    "region_candidates",
    "sparse_match",
    "sparse_match_parity",
    "sparse_match_parity_batch",
]

#: Smallest component (defect count) the sparse engine handles when
#: ``matcher="sparse"``: one past the stacked-DP ceiling, so the
#: vectorised DP keeps every size it beats the engine on and the
#: serial level-batched DP (the 12–14 defect stopgap) is retired from
#: the sparse path entirely.
SPARSE_MIN_DEFECTS = _DP_STACK_MAX + 1

#: Candidate partners seeded per defect by :func:`knn_candidates`.
#: Three covers the optimal matching on almost every real component
#: (the repair loop catches the rest); larger values only grow the
#: edge set the engine must scan — measured on the d = 7/9 slices,
#: seeding 3 beats 4 and 6 end to end despite a slightly higher
#: repair rate.
_KNN_SEEDS = 3

#: Slack tolerance of the dual certificate, matching the engine's own
#: internal tightness epsilon (rounding residues in the duals are
#: ulp-scale, orders below this).  The tolerance is *subtracted* — a
#: withheld pair is repaired only when its slack is below ``-_EPS`` —
#: so exactly-tied alternatives (slack 0 up to rounding, ubiquitous on
#: uniform-weight circuit graphs) are not re-added round after round,
#: which would densify the candidate graph on the common degenerate
#: case.  The cost is that improvements smaller than ``_EPS`` are
#: ignored: those are float-tie territory that the dense engine's own
#: ``slack ≤ 1e-9 ⇒ tight`` rule resolves just as arbitrarily, so the
#: two engines agree on the objective to the same tolerance class the
#: agreement suites pin (``pytest.approx``).
_EPS = 1e-9


def knn_candidates(
    W: np.ndarray, seeds: int = _KNN_SEEDS
) -> tuple[np.ndarray, np.ndarray]:
    """Each defect's ``seeds`` nearest partners, as candidate pairs.

    ``W`` is the component's reduced cost matrix (pair route or
    two-boundary route, whichever is cheaper).  Returns ``(ei, ej)``
    index arrays with ``ei < ej``, deduplicated, in lexicographic
    order.

    Selection is by ``(weight, index)`` — a stable argsort, not
    ``argpartition`` — so ties at the selection boundary always resolve
    toward the lower partner index.  That makes the seed set a pure
    function of the row values, replicated exactly by the compiled
    sparse matcher (``_cblossom.sparse_match_parity``), which keeps the
    compiled and pure backends' candidate graphs — and therefore their
    predictions — bit-identical.
    """
    k = W.shape[0]
    c = min(seeds, k - 1)
    masked = np.where(np.eye(k, dtype=bool), np.inf, W)
    nearest = np.argsort(masked, axis=1, kind="stable")[:, :c]
    ii = np.repeat(np.arange(k), c)
    jj = nearest.reshape(-1)
    a = np.minimum(ii, jj)
    b = np.maximum(ii, jj)
    keep = np.isfinite(masked[a, b])
    codes = np.unique(a[keep] * k + b[keep])
    return codes // k, codes % k


def knn_candidates_batch(
    W: np.ndarray, seeds: int = _KNN_SEEDS
) -> list[tuple[np.ndarray, np.ndarray]]:
    """:func:`knn_candidates` for a ``(group, k, k)`` stack at once.

    One batched ``argsort``/``unique`` pass replaces ``group``
    per-component calls; the returned list of ``(ei, ej)`` pairs is
    element-for-element identical to calling :func:`knn_candidates` on
    each slice (the stable argsort acts on each row independently, and
    the per-group codes come out of one offset ``np.unique`` already
    sorted), so seeding the sparse engine from either is bit-identical.
    """
    g, k, _ = W.shape
    c = min(seeds, k - 1)
    masked = np.where(np.eye(k, dtype=bool)[None, :, :], np.inf, W)
    nearest = np.argsort(masked, axis=2, kind="stable")[:, :, :c]
    ii = np.broadcast_to(
        np.arange(k)[None, :, None], (g, k, c)
    ).reshape(g, -1)
    jj = nearest.reshape(g, -1)
    a = np.minimum(ii, jj)
    b = np.maximum(ii, jj)
    local = a * k + b
    keep = np.isfinite(
        np.take_along_axis(masked.reshape(g, -1), local, axis=1)
    )
    rows = np.nonzero(keep)[0]
    codes = np.unique(rows * (k * k) + local[keep])
    starts = np.searchsorted(codes // (k * k), np.arange(g + 1))
    out = []
    for i in range(g):
        grp = codes[starts[i] : starts[i + 1]] % (k * k)
        out.append((grp // k, grp % k))
    return out


def region_candidates(
    graph: DecodingGraph, det_ids: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Candidate pairs from Voronoi region growth on the decoding graph.

    Grows a shortest-path region around every defect node — and around
    the boundary node, whose region walls defects off from partners
    they would only reach through it — with one multi-source Dijkstra
    over the graph's sparse adjacency (:meth:`DecodingGraph.
    ensure_csr`).  Every decoding-graph edge whose endpoints are
    claimed by two different defect regions is a collision: the two
    defects are neighbours on the tiling and become matching
    candidates.  Returns ``(ei, ej)`` index arrays into ``det_ids``
    with ``ei < ej``.

    The collision graph is exactly the adjacency structure a
    grow-until-touch matcher explores; feeding it to the sparse engine
    (whose repair loop covers the rare optimum that routes through a
    third region) keeps the exact objective while never materialising
    the dense defect graph.
    """
    from scipy.sparse.csgraph import dijkstra

    det_ids = np.asarray(det_ids, dtype=np.int64)
    k = len(det_ids)
    if k < 2:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    csr = graph.ensure_csr()
    sources = np.append(det_ids, graph.boundary_index)
    _, _, nearest = dijkstra(
        csr,
        directed=False,
        indices=sources,
        min_only=True,
        return_predecessors=True,
    )
    slot = np.full(csr.shape[0], -1, dtype=np.int64)
    slot[det_ids] = np.arange(k)
    us, vs = graph.edge_endpoints
    su, sv = nearest[us], nearest[vs]
    reached = (su >= 0) & (sv >= 0)
    ou = slot[su[reached]]
    ov = slot[sv[reached]]
    collide = (ou >= 0) & (ov >= 0) & (ou != ov)
    a = np.minimum(ou[collide], ov[collide])
    b = np.maximum(ou[collide], ov[collide])
    codes = np.unique(a * k + b)
    return codes // k, codes % k


def sparse_match(
    W: np.ndarray,
    b_dist: np.ndarray,
    *,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[list[int], float]:
    """Exact matching of one component from sparse candidate edges.

    ``W`` is the ``(k, k)`` reduced cost matrix (``inf`` = no route),
    ``b_dist`` the boundary distances; ``seeds`` is an optional
    ``(ei, ej)`` candidate-pair seed (defaults to
    :func:`knn_candidates` on ``W``).  Returns ``(mate, total)``
    exactly as :func:`~repro.decode.blossom.min_weight_perfect_
    matching` would on the dense reduced component — ``mate[i] == k``
    marks the odd defect routed to the virtual boundary node, ``-1`` a
    defect no finite route covers — but the engine only ever sees the
    candidate edges plus the repairs its dual certificate demands.
    """
    W = np.asarray(W, dtype=np.float64)
    k = W.shape[0]
    if k < 2:
        return [-1] * k, 0.0
    finite = np.isfinite(W).copy()
    np.fill_diagonal(finite, False)
    finite_b = np.isfinite(b_dist)
    use_virtual = bool(k % 2) and bool(finite_b.any())
    n = k + 1 if use_virtual else k
    maxw = float(W[finite].max()) if finite.any() else 0.0
    if use_virtual:
        maxw = max(maxw, float(b_dist[finite_b].max()))
    big = 1.0 + 2.0 * maxw
    if use_virtual:
        boundary_i = np.nonzero(finite_b)[0].astype(np.int64)
        boundary_j = np.full(boundary_i.size, k, dtype=np.int64)
        boundary_w = big - np.asarray(b_dist, dtype=np.float64)[boundary_i]
    else:
        boundary_i = boundary_j = np.zeros(0, dtype=np.int64)
        boundary_w = np.zeros(0, dtype=np.float64)
    if seeds is None:
        ei, ej = knn_candidates(W)
    else:
        ei, ej = seeds
        keep = finite[ei, ej]
        ei, ej = ei[keep], ej[keep]
    present = np.zeros((k, k), dtype=bool)
    mate: list[int] = [-1] * n
    # Each round adds at least one withheld edge, so the loop is
    # bounded by the k(k-1)/2 pairs; real components settle in one or
    # two rounds.
    while True:
        present[ei, ej] = True
        present[ej, ei] = True
        pi, pj = np.nonzero(np.triu(present, 1))
        mate, duals = blossom_core(
            n,
            np.concatenate([pi, boundary_i]),
            np.concatenate([pj, boundary_j]),
            np.concatenate([big - W[pi, pj], boundary_w]),
            jumpstart=True,
        )
        u = np.asarray(duals[:k])
        # Transformed slack of a withheld pair: u_a + u_b - 2(big - W);
        # negative means the pair could still improve the matching.
        threshold = big - 0.5 * (u[:, None] + u[None, :])
        violated = (W < threshold - _EPS) & finite & ~present
        for x in range(k):
            if mate[x] < 0:
                # A defect the sparse graph could not cover: offer its
                # whole star so cardinality matches the dense solve.
                violated[x] |= finite[x] & ~present[x]
        violated |= violated.T
        vi, vj = np.nonzero(np.triu(violated, 1))
        if vi.size == 0:
            break
        ei, ej = vi, vj
    total = 0.0
    for i in range(k):
        j = mate[i]
        if i < j < k:
            total += float(W[i, j])
        elif j == k:
            total += float(b_dist[i])
    return mate[:k] if use_virtual else mate, total


def sparse_match_parity(
    k: int,
    W: np.ndarray,
    use_pair: np.ndarray,
    P: np.ndarray,
    b_dist: np.ndarray,
    b_par: np.ndarray,
    *,
    seeds: tuple[np.ndarray, np.ndarray] | None = None,
) -> int:
    """Observable parity of one component's sparse matching.

    Route-parity conventions mirror
    :meth:`MatchingDecoder._blossom_match` exactly: matched pairs take
    the shortest-path parity when the direct route wins (``use_pair``)
    and the two-boundary parity otherwise, the odd defect matched to
    the virtual boundary node takes its boundary parity, and
    unmatchable leftovers route alone when the boundary is reachable.

    When the compiled kernel is loaded the whole matcher — seed
    selection, the jumpstarted solve and the dual-certificate repair
    loop — runs inside :mod:`repro.decode._cblossom`, bit-identical to
    the pure path below (the kernel recomputes the same ``(weight,
    index)`` kNN seeds internally, so ``seeds`` only feeds the pure
    fallback).
    """
    kernel = _blossom._KERNEL
    if kernel is not None and k >= 2:
        return int(
            kernel.sparse_match_parity(
                int(k),
                np.ascontiguousarray(W, dtype=np.float64),
                np.ascontiguousarray(use_pair, dtype=np.uint8),
                np.ascontiguousarray(P, dtype=np.uint8),
                np.ascontiguousarray(b_dist, dtype=np.float64),
                np.ascontiguousarray(b_par, dtype=np.uint8),
            )
        )
    mate, _ = sparse_match(W, b_dist, seeds=seeds)
    parity = 0
    for i in range(k):
        j = mate[i]
        if j == k:  # the odd defect routed to the boundary
            parity ^= int(b_par[i])
        elif j < 0:  # disconnected leftovers route alone
            if np.isfinite(b_dist[i]):
                parity ^= int(b_par[i])
        elif i < j:
            if use_pair[i, j]:
                parity ^= int(P[i, j])
            else:
                parity ^= int(b_par[i]) ^ int(b_par[j])
    return parity


def sparse_match_parity_batch(
    k: int,
    W: np.ndarray,
    use_pair: np.ndarray,
    P: np.ndarray,
    b_dist: np.ndarray,
    b_par: np.ndarray,
) -> np.ndarray:
    """Observable parities of one same-size component group.

    ``W``/``use_pair``/``P`` are stacked ``(group, k, k)`` route arrays
    and ``b_dist``/``b_par`` stacked ``(group, k)`` boundary rows —
    exactly one gathered chunk of the batch pipeline's oversize loop.
    With the compiled kernel loaded the entire group is matched in a
    single ``_cblossom.sparse_match_batch`` call (the per-call overhead
    that used to be paid once per component amortises across the
    group); the fallback loops :func:`sparse_match_parity` per
    component, so results are bit-identical on every backend.
    """
    group = int(W.shape[0])
    out = np.empty(group, dtype=np.uint8)
    if group == 0:
        return out
    kernel = _blossom._KERNEL
    if kernel is not None and k >= 2:
        kernel.sparse_match_batch(
            group,
            int(k),
            np.ascontiguousarray(W, dtype=np.float64),
            np.ascontiguousarray(use_pair, dtype=np.uint8),
            np.ascontiguousarray(P, dtype=np.uint8),
            np.ascontiguousarray(b_dist, dtype=np.float64),
            np.ascontiguousarray(b_par, dtype=np.uint8),
            out,
        )
        return out
    for i in range(group):
        out[i] = sparse_match_parity(
            k, W[i], use_pair[i], P[i], b_dist[i], b_par[i]
        )
    return out
