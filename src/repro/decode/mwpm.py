"""Batched, cache-accelerated matching decoders.

Three methods share the :class:`repro.decode.base.Decoder` front-end
(canonicalisation, zero-syndrome fast path, ``np.unique``
deduplication, syndrome LRU, forked-pool sharding, packed-bitplane
input):

* ``"blossom"`` — exact minimum-weight perfect matching on the defect
  graph; small components are solved by subset DP, larger ones by a
  native primal–dual blossom engine — no external graph library is
  involved anywhere in the decode path.  Each defect matches another
  defect or routes to the virtual boundary.  The ``matcher``
  constructor option picks the engine for components past the DP
  cutoff: ``"sparse"`` (default) grows match regions on sparse
  candidate edges (:mod:`repro.decode.sparse_match`) and repairs
  against the dual certificate, ``"dense"`` feeds the complete
  component graph to :mod:`repro.decode.blossom` and is kept as the
  oracle.  Both optimise the identical objective; among equal-weight
  ties they may pick different matchings, so bit-identity suites pin
  the dense engine and weight-equality suites pin both.
* ``"greedy"`` — nearest-neighbour greedy matching; fast, slightly
  suboptimal, kept for sanity checks and as the cheapest baseline.
* ``"uf"`` — the almost-linear union-find decoder
  (:class:`repro.decode.uf.UnionFindDecoder`).

The hot path is precomputation-heavy rather than per-shot:

* pairwise defect distances and path observable parities are O(1)
  lookups into the decoding graph's all-pairs matrices
  (:meth:`DecodingGraph.ensure_matrices`) instead of a Python Dijkstra
  per shot; graphs above the matrix size threshold (or decoders built
  with ``use_matrices=False``) fall back to the seed's legacy
  per-source Dijkstra path, which is also what the agreement tests
  compare against.
* cache-missing unique syndromes of a matrix-backed blossom batch run
  through the vectorised component pipeline
  (:func:`repro.decode.batch.decode_blossom_batch`): stacked matrix
  gathers, one :func:`~scipy.sparse.csgraph.connected_components` call
  over the block-stacked pairable graph of the whole batch, and
  size-bucketed stacked subset DPs, with only oversize components
  dispatched to the native blossom engine one by one.  Predictions are
  bit-identical to the serial per-shot path.

Every backend (subset DP, native blossom, legacy per-shot Dijkstra)
optimises the identical objective, so total matching weights agree
exactly and predictions match whenever the optimum is unique.
Degenerate ties (equal-weight shortest paths, or equal-cost matchings
as on uniform-weight graphs with no boundary) resolve
deterministically: the DPs prefer the pair route and then the lowest
partner index, and the blossom engine scans defects in ascending index
order, so repeated runs — and both formulations fed to the engine —
always return the same matching.  :meth:`MatchingDecoder.
matching_weight` exposes the optimal total route weight so agreement
tests can compare backends on the objective value itself rather than
only on tie-free predictions.
"""

from __future__ import annotations

import numpy as np

from repro.decode.base import DEFAULT_CACHE_SIZE, Decoder
from repro.decode.batch import (
    DP_DEFECT_LIMIT,
    DP_SCALAR_LIMIT,
    _dp_tables,
    decode_blossom_batch,
)
from repro.decode.blossom import min_weight_perfect_matching
from repro.decode.graph import BOUNDARY, DecodingGraph
from repro.decode.sparse_match import (
    SPARSE_MIN_DEFECTS,
    region_candidates,
    sparse_match,
    sparse_match_parity,
)
from repro.decode.uf import UnionFindDecoder
from repro.sim.dem import DetectorErrorModel

__all__ = ["MatchingDecoder"]

#: Below this many cache-missing unique syndromes the serial loop beats
#: the vectorised pipeline's fixed setup cost.
_VECTOR_MIN_UNIQUE = 4


class MatchingDecoder(Decoder):
    """Decode detector samples to observable-flip predictions."""

    METHODS = ("blossom", "greedy", "uf")
    #: Matching engines for oversize components: ``"sparse"`` (the
    #: region-growing engine of :mod:`repro.decode.sparse_match`,
    #: default) or ``"dense"`` (the complete-graph blossom path, kept
    #: as the oracle).  Both are exact; among equal-weight optima they
    #: may return different matchings.
    MATCHERS = ("sparse", "dense")

    def __init__(
        self,
        dem: DetectorErrorModel,
        *,
        method: str = "blossom",
        matcher: str = "sparse",
        cache_size: int = DEFAULT_CACHE_SIZE,
        use_matrices: bool | None = None,
        workers: int | None = None,
    ) -> None:
        if method not in self.METHODS:
            raise ValueError(f"method must be one of {self.METHODS}")
        if matcher not in self.MATCHERS:
            raise ValueError(f"matcher must be one of {self.MATCHERS}")
        super().__init__(
            DecodingGraph(dem), cache_size=cache_size, workers=workers
        )
        self.method = method
        self.matcher = matcher
        # Largest component the subset DPs keep: the sparse engine
        # takes over right above the stacked-DP ceiling; the dense
        # path keeps the serial level-batched DP up to the historical
        # limit before switching to the complete-graph blossom.
        self._dp_cutoff = (
            SPARSE_MIN_DEFECTS - 1 if matcher == "sparse" else DP_DEFECT_LIMIT
        )
        if use_matrices is None:
            use_matrices = self.graph.use_matrices
        self.use_matrices = use_matrices
        # The union-find helper shares this decoder's cache, so its own
        # is disabled.
        self._uf = (
            UnionFindDecoder(self.graph, cache_size=0)
            if method == "uf"
            else None
        )

    # -- Decoder contract ----------------------------------------------
    def _decode_defects(self, defects: tuple[int, ...]) -> int:
        if self.method == "uf":
            return self._uf._decode_defects(defects)
        if self.use_matrices:
            if self.method == "greedy":
                return self._decode_greedy_matrix(defects)
            return self._decode_blossom_matrix(defects)
        if self.method == "greedy":
            return self._decode_greedy_legacy(list(defects))
        return self._decode_blossom_legacy(list(defects))

    def _decode_misses(self, defect_sets: list[tuple[int, ...]]) -> np.ndarray:
        if (
            self.method == "blossom"
            and self.use_matrices
            and len(defect_sets) >= _VECTOR_MIN_UNIQUE
        ):
            return decode_blossom_batch(self, defect_sets)
        return super()._decode_misses(defect_sets)

    def _prepare_fork(self) -> None:
        if self.use_matrices:
            self.graph.ensure_matrices()  # build once, before forking

    # -- matrix-backed decoding ----------------------------------------
    def _lookup(self, defects: tuple[int, ...]):
        """Pairwise/boundary distance and parity arrays for a defect set."""
        dist, par = self.graph.ensure_matrices()
        idx = np.fromiter(defects, dtype=np.int64, count=len(defects))
        b_col = self.graph.boundary_index
        return (
            dist[np.ix_(idx, idx)],
            par[np.ix_(idx, idx)],
            dist[idx, b_col],
            par[idx, b_col],
        )

    def _decode_blossom_matrix(self, defects: tuple[int, ...]) -> int:
        """Exact matching on the *reduced*, *decomposed* defect graph.

        Two exact reductions replace the seed's ``2k``-node formulation
        (one boundary copy per defect plus a zero-cost copy clique):

        * **Reduced graph** — a complete graph over the ``k`` defects
          with edge weight ``min(d(a,b), b(a)+b(b))`` plus a single
          virtual boundary node when needed.  Any number of defects
          routed to the boundary pairs up inside the reduced edges, so
          the optimum is identical while matching runs on half the
          nodes.
        * **Component decomposition** — a pair with
          ``d(a,b) > b(a)+b(b)`` is never matched directly (two
          boundary routes are at most as expensive), so connected
          components of the ``d ≤ b+b`` graph decode independently.
          At low error rates defects cluster into tiny components,
          collapsing the matching cost per shot.

        Components up to :data:`DP_DEFECT_LIMIT` defects use the exact
        subset-DP matcher; larger ones go to the native blossom engine
        (:mod:`repro.decode.blossom`).  Equal-weight ties between the
        pair route and the two-boundary route resolve to the pair
        route.  The vectorised pipeline in :mod:`repro.decode.batch`
        runs this same algorithm over many syndromes at once.
        """
        D, P, b_dist, b_par = self._lookup(defects)
        k = len(defects)
        if k == 1:
            return int(b_par[0]) if np.isfinite(b_dist[0]) else 0
        # Dijkstra rows are computed independently, so D is symmetric
        # only up to float rounding; symmetrise before comparing with
        # the boundary route (ties here are systematic — a shortest
        # u–v path may run through the boundary node itself).
        D = np.minimum(D, D.T)
        via_boundary = b_dist[:, None] + b_dist[None, :]
        W = np.minimum(D, via_boundary)
        use_pair = D <= via_boundary
        if k == 2:
            return self._match_component(
                [0, 1], W, use_pair, P, b_dist, b_par
            )
        if k <= DP_SCALAR_LIMIT:
            return self._dp_match(k, W, use_pair, P, b_dist, b_par)
        pairable = use_pair & np.isfinite(D)
        np.fill_diagonal(pairable, False)
        parity = 0
        unassigned = np.ones(k, dtype=bool)
        for start in range(k):
            if not unassigned[start]:
                continue
            # BFS one component of the pairable graph.
            members = np.zeros(k, dtype=bool)
            members[start] = True
            frontier = members
            while frontier.any():
                reached = pairable[frontier].any(axis=0) & ~members
                members |= reached
                frontier = reached
            unassigned &= ~members
            comp = np.nonzero(members)[0]
            if len(comp) == 1:
                i = int(comp[0])
                if np.isfinite(b_dist[i]):
                    parity ^= int(b_par[i])
            else:
                parity ^= self._match_component(
                    comp, W, use_pair, P, b_dist, b_par
                )
        return parity

    def _match_component(self, comp, W, use_pair, P, b_dist, b_par) -> int:
        """Optimal routing parity of one pairable component."""
        n = len(comp)
        if n == 2:
            i, j = int(comp[0]), int(comp[1])
            if not np.isfinite(W[i, j]):
                # Disconnected pair: each routes to the boundary alone
                # (or dangles, matching the seed's unmatched behaviour).
                parity = 0
                for a in (i, j):
                    if np.isfinite(b_dist[a]):
                        parity ^= int(b_par[a])
                return parity
            return int(P[i, j]) if use_pair[i, j] else int(b_par[i] ^ b_par[j])
        idx = np.asarray(comp, dtype=np.int64)
        sub = np.ix_(idx, idx)
        if n <= DP_SCALAR_LIMIT:
            matcher = self._dp_match
        elif n <= self._dp_cutoff:
            matcher = self._dp_match_vec
        else:
            matcher = self._match_oversize
        return matcher(
            n, W[sub], use_pair[sub], P[sub], b_dist[idx], b_par[idx]
        )

    def _match_oversize(
        self, k, W, use_pair, P, b_dist, b_par, seeds=None
    ) -> int:
        """Matching-engine dispatch for components past the DP cutoff.

        The seam the vectorised batch pipeline calls too, so the
        serial and batched paths always agree on which engine matched
        a component: ``matcher="sparse"`` grows the component on
        candidate edges (:func:`repro.decode.sparse_match.
        sparse_match_parity`), ``matcher="dense"`` keeps the
        complete-graph blossom.  ``seeds`` is an optional pre-computed
        ``(ei, ej)`` candidate seed for the sparse engine — the batch
        pipeline computes the kNN seeds of every same-size component in
        one stacked pass and hands them through here; the dense engine
        needs no setup and ignores it.
        """
        if self.matcher == "sparse":
            return sparse_match_parity(
                k, W, use_pair, P, b_dist, b_par, seeds=seeds
            )
        return self._blossom_match(k, W, use_pair, P, b_dist, b_par)

    @staticmethod
    def _reduced_cost(k, W, b_dist):
        """Dense engine cost matrix of one reduced component.

        The ``k`` defects with pair costs ``W``, plus — when ``k`` is
        odd — one virtual boundary node at column ``k`` that can absorb
        the odd defect at its boundary distance.  Shared by decoding
        (:meth:`_blossom_match`) and the objective-value query
        (:meth:`matching_weight`) so the two formulations cannot drift.
        """
        n = k + (k % 2)
        cost = np.full((n, n), np.inf)
        cost[:k, :k] = W
        np.fill_diagonal(cost, np.inf)
        if n > k:
            cost[:k, k] = cost[k, :k] = b_dist
        return n, cost

    @staticmethod
    def _blossom_match(k, W, use_pair, P, b_dist, b_par) -> int:
        """Native blossom matching on a reduced component (large sets).

        Builds the dense cost matrix of the reduced component — the
        ``k`` defects plus, when ``k`` is odd, one virtual boundary
        node absorbing the odd defect — and hands it to the exact
        engine.  Defects the engine leaves unmatched (no finite edge
        reaches them) route alone to the boundary when possible,
        matching the seed's unmatched behaviour.
        """
        n, cost = MatchingDecoder._reduced_cost(k, W, b_dist)
        mate, _ = min_weight_perfect_matching(cost)
        parity = 0
        for i in range(k):
            j = mate[i]
            if j == k:  # the odd defect routed to the boundary
                parity ^= int(b_par[i])
            elif j < 0:  # disconnected leftovers route alone
                if np.isfinite(b_dist[i]):
                    parity ^= int(b_par[i])
            elif i < j:
                if use_pair[i, j]:
                    parity ^= int(P[i, j])
                else:
                    parity ^= int(b_par[i]) ^ int(b_par[j])
        return parity

    def _decode_greedy_matrix(self, defects: tuple[int, ...]) -> int:
        """Nearest-neighbour greedy matching on matrix lookups.

        Candidate ordering (pairs in index order, then boundary routes;
        stable sort by distance) matches the legacy implementation.
        """
        D, P, b_dist, b_par = self._lookup(defects)
        k = len(defects)
        remaining = set(range(k))
        candidates: list[tuple[float, int, int]] = []
        for i in range(k):
            for j in range(i + 1, k):
                if np.isfinite(D[i, j]):
                    candidates.append((float(D[i, j]), i, j))
        for i in range(k):
            if np.isfinite(b_dist[i]):
                candidates.append((float(b_dist[i]), i, -1))
        candidates.sort(key=lambda item: item[0])
        parity = 0
        for _w, i, j in candidates:
            if i not in remaining:
                continue
            if j == -1:
                remaining.discard(i)
                parity ^= int(b_par[i])
            elif j in remaining:
                remaining.discard(i)
                remaining.discard(j)
                parity ^= int(P[i, j])
        for i in remaining:  # unmatched leftovers go to the boundary
            if np.isfinite(b_dist[i]):
                parity ^= int(b_par[i])
        return parity

    @staticmethod
    def _dp_match(k, W, use_pair, P, b_dist, b_par) -> int:
        """Exact minimum-weight matching by subset DP (small defect sets).

        ``f[mask]`` is the optimal cost of resolving the defect subset
        ``mask``; the lowest defect in the mask either pairs with
        another member (cost ``W``, the pair/boundary-route minimum) or
        routes to the boundary alone.  O(2^k · k), which beats blossom
        comfortably up to ``DP_DEFECT_LIMIT`` defects.  Ties prefer the
        pair route, then the lowest partner index.
        """
        route_par = np.where(use_pair, P, b_par[:, None] ^ b_par[None, :])
        cost_rows = W.tolist()
        par_rows = route_par.tolist()
        bound_cost = [
            float(b_dist[i]) if np.isfinite(b_dist[i]) else np.inf
            for i in range(k)
        ]
        bound_par = [int(b_par[i]) for i in range(k)]
        # A dangling (unmatched) defect costs more than any achievable
        # matching, reproducing the seed's max-cardinality-first
        # objective: minimise dangles, then total route weight.
        finite_w = np.isfinite(W)
        dangle = 1.0 + float(W[finite_w].sum() if finite_w.any() else 0.0)
        dangle += float(sum(c for c in bound_cost if c < np.inf))
        size = 1 << k
        f = [0.0] * size
        g = [0] * size
        for mask in range(1, size):
            low_bit = mask & -mask
            i = low_bit.bit_length() - 1
            rest = mask ^ low_bit
            row_cost = cost_rows[i]
            row_par = par_rows[i]
            best = np.inf
            best_par = 0
            m = rest
            while m:
                j_bit = m & -m
                m ^= j_bit
                other = rest ^ j_bit
                cost = row_cost[j_bit.bit_length() - 1] + f[other]
                if cost < best:
                    best = cost
                    best_par = row_par[j_bit.bit_length() - 1] ^ g[other]
            cost = bound_cost[i] + f[rest]
            if cost < best:
                best = cost
                best_par = bound_par[i] ^ g[rest]
            cost = dangle + f[rest]
            if cost < best:
                best = cost
                best_par = g[rest]
            f[mask] = best
            g[mask] = best_par
        return g[size - 1]

    @staticmethod
    def _dp_match_vec(k, W, use_pair, P, b_dist, b_par) -> int:
        """Vectorised subset DP: one batched argmin per popcount level.

        Same recurrence and tie-breaking as :meth:`_dp_match`, but all
        masks of equal popcount are processed as one numpy gather +
        ``argmin``, using the shared per-``k`` transition tables from
        :func:`repro.decode.batch._dp_tables`.  Extends exact matching
        to mid-size components where both the scalar DP and blossom are
        slow.
        """
        route_par = np.where(use_pair, P, b_par[:, None] ^ b_par[None, :])
        finite_w = np.isfinite(W)
        finite_b = np.isfinite(b_dist)
        dangle = (
            1.0
            + float(W[finite_w].sum() if finite_w.any() else 0.0)
            + float(b_dist[finite_b].sum() if finite_b.any() else 0.0)
        )
        cost_flat = np.concatenate(
            [W.reshape(-1), np.where(finite_b, b_dist, np.inf), [dangle]]
        )
        par_flat = np.concatenate(
            [
                route_par.reshape(-1).astype(np.uint8),
                np.asarray(b_par, dtype=np.uint8),
                [0],
            ]
        )
        f = np.zeros(1 << k)
        g = np.zeros(1 << k, dtype=np.uint8)
        for masks, cost_idx, other_idx in _dp_tables(k):
            costs = cost_flat[cost_idx] + f[other_idx]
            choice = np.argmin(costs, axis=1)
            rows = np.arange(len(masks))
            f[masks] = costs[rows, choice]
            g[masks] = (
                par_flat[cost_idx[rows, choice]] ^ g[other_idx[rows, choice]]
            )
        return int(g[(1 << k) - 1])

    # -- shared blossom core -------------------------------------------
    @staticmethod
    def _blossom_matching(defects, dists, b_dist):
        """Max-cardinality min-weight matching on the defect graph.

        The seed's ``2k``-node formulation, solved by the native
        engine: each defect node ``("d", i)`` may pair with another
        defect or its own boundary copy ``("b", i)``; boundary copies
        pair off freely at zero cost.  Returns the matching as a set of
        node-tuple pairs (the shape the legacy decode loop consumes).
        """
        k = len(defects)
        index = {d: i for i, d in enumerate(defects)}
        with_boundary = [d for d in defects if d in b_dist]
        n = k + len(with_boundary)
        cost = np.full((n, n), np.inf)
        for (a, b), w in dists.items():
            cost[index[a], index[b]] = cost[index[b], index[a]] = w
        for bi, d in enumerate(with_boundary):
            cost[index[d], k + bi] = cost[k + bi, index[d]] = b_dist[d]
            for bj in range(bi + 1, len(with_boundary)):
                cost[k + bi, k + bj] = cost[k + bj, k + bi] = 0.0
        mate, _ = min_weight_perfect_matching(cost)
        names = [("d", d) for d in defects] + [
            ("b", d) for d in with_boundary
        ]
        return {
            (names[u], names[v])
            for u in range(n)
            if (v := mate[u]) > u
        }

    # -- objective-value queries (agreement tests) ---------------------
    def matching_weight(
        self, detector_sample: np.ndarray, *, matcher: str = "blossom"
    ) -> float:
        """Optimal total route weight of one shot's matching.

        All exact backends optimise the same objective — the summed
        log-likelihood weight of every chosen route (defect–defect
        paths and boundary routes; unmatchable defects contribute
        nothing) — so this value is backend-independent even when the
        optimal matching itself is degenerate.  ``matcher`` selects the
        formulation used to compute it:

        * ``"blossom"`` — the dense engine on the reduced defect graph
          (no component decomposition, so the value covers the whole
          defect set at once),
        * ``"sparse"`` — the region-growing engine on candidate edges
          grown over the decoding graph
          (:func:`repro.decode.sparse_match.region_candidates`), the
          same value computed without ever materialising the dense
          defect graph,
        * ``"dp"`` — the scalar subset DP (exponential in the defect
          count; intended for test-sized syndromes),
        * ``"legacy"`` — the seed's ``2k``-node boundary-copy
          formulation on per-shot Dijkstra distances.

        Agreement of the four (and of an external solver fed the same
        matrix) is asserted by ``tests/test_decode_agreement.py`` and
        ``tests/test_sparse_match.py``.
        """
        if matcher not in ("blossom", "sparse", "dp", "legacy"):
            raise ValueError(
                "matcher must be 'blossom', 'sparse', 'dp' or 'legacy'"
            )
        sample = np.asarray(detector_sample)
        nonzero = np.nonzero(sample)[0]
        defects = tuple(
            int(d) for d in nonzero if d < self.graph.num_detectors
        )
        if not defects:
            return 0.0
        if matcher == "legacy":
            dists, _, b_dist, _ = self._pairwise(list(defects))
            matching = self._blossom_matching(list(defects), dists, b_dist)
            total = 0.0
            for u, v in matching:
                if u[0] == "d" and v[0] == "d":
                    a, b = sorted((u[1], v[1]))
                    total += dists[(a, b)]
                elif u[0] != v[0]:
                    total += b_dist[u[1] if u[0] == "d" else v[1]]
            return total
        D, P, b_dist, b_par = self._lookup(defects)
        k = len(defects)
        if k == 1:
            return float(b_dist[0]) if np.isfinite(b_dist[0]) else 0.0
        D = np.minimum(D, D.T)
        W = np.minimum(D, b_dist[:, None] + b_dist[None, :])
        if matcher == "dp":
            return self._dp_weight(k, W, b_dist)
        if matcher == "sparse":
            seeds = region_candidates(self.graph, np.asarray(defects))
            mate, total = sparse_match(W, b_dist, seeds=seeds)
        else:
            n, cost = self._reduced_cost(k, W, b_dist)
            mate, total = min_weight_perfect_matching(cost)
        for i in range(k):  # disconnected leftovers route alone
            if mate[i] < 0 and np.isfinite(b_dist[i]):
                total += float(b_dist[i])
        return float(total)

    @staticmethod
    def _dp_weight(k, W, b_dist) -> float:
        """Total route weight by subset DP (same recurrence as
        :meth:`_dp_match`, tracking real cost instead of parity)."""
        cost_rows = W.tolist()
        bound_cost = [
            float(b_dist[i]) if np.isfinite(b_dist[i]) else np.inf
            for i in range(k)
        ]
        finite_w = np.isfinite(W)
        dangle = 1.0 + float(W[finite_w].sum() if finite_w.any() else 0.0)
        dangle += float(sum(c for c in bound_cost if c < np.inf))
        size = 1 << k
        f = [0.0] * size
        h = [0.0] * size  # real route weight of the optimum for mask
        for mask in range(1, size):
            low_bit = mask & -mask
            i = low_bit.bit_length() - 1
            rest = mask ^ low_bit
            row_cost = cost_rows[i]
            best = np.inf
            best_real = 0.0
            m = rest
            while m:
                j_bit = m & -m
                m ^= j_bit
                other = rest ^ j_bit
                w = row_cost[j_bit.bit_length() - 1]
                cost = w + f[other]
                if cost < best:
                    best = cost
                    best_real = w + h[other]
            cost = bound_cost[i] + f[rest]
            if cost < best:
                best = cost
                best_real = bound_cost[i] + h[rest]
            cost = dangle + f[rest]
            if cost < best:
                best = cost
                best_real = h[rest]
            f[mask] = best
            h[mask] = best_real
        return h[size - 1]

    # -- legacy per-shot Dijkstra decoding (the seed implementation) ---
    def _pairwise(self, defects: list[int]):
        """Distances/paths between defects and to the boundary."""
        dists: dict[tuple[int, int], float] = {}
        paths: dict[tuple[int, int], list] = {}
        boundary_dist: dict[int, float] = {}
        boundary_path: dict[int, list] = {}
        for i, d in enumerate(defects):
            dist, path = self.graph.shortest(d)
            for other in defects[i + 1 :]:
                if other in dist:
                    dists[(d, other)] = dist[other]
                    paths[(d, other)] = path[other]
            if BOUNDARY in dist:
                boundary_dist[d] = dist[BOUNDARY]
                boundary_path[d] = path[BOUNDARY]
        return dists, paths, boundary_dist, boundary_path

    def _decode_blossom_legacy(self, defects: list[int]) -> int:
        dists, paths, b_dist, b_path = self._pairwise(defects)
        matching = self._blossom_matching(defects, dists, b_dist)
        parity = 0
        for u, v in matching:
            if u[0] == "d" and v[0] == "d":
                a, b = sorted((u[1], v[1]))
                parity ^= self.graph.path_observable_parity(paths[(a, b)])
            elif u[0] != v[0]:
                defect = u[1] if u[0] == "d" else v[1]
                # Matched to a boundary copy (its own or another's):
                # either way the defect routes to the boundary.
                parity ^= self.graph.path_observable_parity(b_path[defect])
        return parity

    def _decode_greedy_legacy(self, defects: list[int]) -> int:
        """Nearest-neighbour greedy matching (fast, slightly suboptimal)."""
        dists, paths, b_dist, b_path = self._pairwise(defects)
        remaining = set(defects)
        candidates: list[tuple[float, int, int | None]] = []
        for (a, b), w in dists.items():
            candidates.append((w, a, b))
        for d, w in b_dist.items():
            candidates.append((w, d, None))
        candidates.sort(key=lambda item: item[0])
        parity = 0
        for _w, a, b in candidates:
            if a not in remaining:
                continue
            if b is None:
                remaining.discard(a)
                parity ^= self.graph.path_observable_parity(b_path[a])
            elif b in remaining:
                remaining.discard(a)
                remaining.discard(b)
                key = (a, b) if (a, b) in paths else (b, a)
                parity ^= self.graph.path_observable_parity(paths[key])
        for d in remaining:  # unmatched leftovers go to the boundary
            if d in b_path:
                parity ^= self.graph.path_observable_parity(b_path[d])
        return parity
