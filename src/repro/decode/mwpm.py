"""Minimum-weight perfect matching decoder.

Per shot: collect the flipped detectors, compute pairwise shortest-path
distances in the decoding graph (including each defect's distance to the
boundary), and find the minimum-weight perfect matching on the derived
complete graph — each defect may match another defect or its own virtual
boundary copy.  The predicted observable flip is the XOR of the
observable parities along the matched paths.

The exact matching uses networkx's blossom implementation
(``max_weight_matching`` on negated weights with ``maxcardinality``); a
greedy fallback is available for speed-insensitive sanity checks and the
throughput-oriented benchmarks.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.decode.graph import BOUNDARY, DecodingGraph
from repro.sim.dem import DetectorErrorModel

__all__ = ["MatchingDecoder"]


class MatchingDecoder:
    """Decode detector samples to observable-flip predictions."""

    def __init__(
        self, dem: DetectorErrorModel, *, method: str = "blossom"
    ) -> None:
        if method not in ("blossom", "greedy"):
            raise ValueError("method must be 'blossom' or 'greedy'")
        self.graph = DecodingGraph(dem)
        self.method = method

    # ------------------------------------------------------------------
    def decode(self, detector_sample: np.ndarray) -> int:
        """Predicted observable flip (0/1) for one shot's detector bits."""
        defects = [int(i) for i in np.nonzero(np.asarray(detector_sample))[0]]
        defects = [d for d in defects if d in self.graph.graph]
        if not defects:
            return 0
        if self.method == "greedy":
            return self._decode_greedy(defects)
        return self._decode_blossom(defects)

    def decode_batch(self, detector_samples: np.ndarray) -> np.ndarray:
        """Vector of predictions for a ``(shots, detectors)`` sample array."""
        return np.array(
            [self.decode(row) for row in detector_samples], dtype=np.uint8
        )

    def logical_error_rate(
        self, detector_samples: np.ndarray, observable_samples: np.ndarray
    ) -> float:
        """Fraction of shots where the prediction misses the actual flip."""
        predictions = self.decode_batch(detector_samples)
        actual = np.asarray(observable_samples).reshape(len(predictions), -1)
        actual = (actual.sum(axis=1) % 2).astype(np.uint8)
        return float((predictions != actual).mean())

    # ------------------------------------------------------------------
    def _pairwise(self, defects: list[int]):
        """Distances/paths between defects and to the boundary."""
        dists: dict[tuple[int, int], float] = {}
        paths: dict[tuple[int, int], list] = {}
        boundary_dist: dict[int, float] = {}
        boundary_path: dict[int, list] = {}
        for i, d in enumerate(defects):
            dist, path = self.graph.shortest(d)
            for other in defects[i + 1 :]:
                if other in dist:
                    dists[(d, other)] = dist[other]
                    paths[(d, other)] = path[other]
            if BOUNDARY in dist:
                boundary_dist[d] = dist[BOUNDARY]
                boundary_path[d] = path[BOUNDARY]
        return dists, paths, boundary_dist, boundary_path

    def _decode_blossom(self, defects: list[int]) -> int:
        dists, paths, b_dist, b_path = self._pairwise(defects)
        match_graph = nx.Graph()
        big = 1.0 + 2.0 * (
            max(
                max(dists.values(), default=0.0),
                max(b_dist.values(), default=0.0),
            )
        )
        for (a, b), w in dists.items():
            match_graph.add_edge(("d", a), ("d", b), weight=big - w)
        for d in defects:
            w = b_dist.get(d)
            if w is not None:
                match_graph.add_edge(("d", d), ("b", d), weight=big - w)
        # Boundary copies pair off freely at zero cost.
        bs = [("b", d) for d in defects if d in b_dist]
        for i in range(len(bs)):
            for j in range(i + 1, len(bs)):
                match_graph.add_edge(bs[i], bs[j], weight=big)
        matching = nx.max_weight_matching(match_graph, maxcardinality=True)

        parity = 0
        for u, v in matching:
            if u[0] == "d" and v[0] == "d":
                a, b = sorted((u[1], v[1]))
                parity ^= self.graph.path_observable_parity(paths[(a, b)])
            elif u[0] != v[0]:
                defect = u[1] if u[0] == "d" else v[1]
                other = v[1] if u[0] == "d" else u[1]
                if defect == other:  # matched to own boundary copy
                    parity ^= self.graph.path_observable_parity(b_path[defect])
                else:  # defect matched to another defect's boundary copy:
                    # treat as boundary-matched as well.
                    parity ^= self.graph.path_observable_parity(b_path[defect])
        return parity

    def _decode_greedy(self, defects: list[int]) -> int:
        """Nearest-neighbour greedy matching (fast, slightly suboptimal)."""
        dists, paths, b_dist, b_path = self._pairwise(defects)
        remaining = set(defects)
        candidates: list[tuple[float, int, int | None]] = []
        for (a, b), w in dists.items():
            candidates.append((w, a, b))
        for d, w in b_dist.items():
            candidates.append((w, d, None))
        candidates.sort(key=lambda item: item[0])
        parity = 0
        for w, a, b in candidates:
            if a not in remaining:
                continue
            if b is None:
                remaining.discard(a)
                parity ^= self.graph.path_observable_parity(b_path[a])
            elif b in remaining:
                remaining.discard(a)
                remaining.discard(b)
                key = (a, b) if (a, b) in paths else (b, a)
                parity ^= self.graph.path_observable_parity(paths[key])
        for d in remaining:  # unmatched leftovers go to the boundary
            if d in b_path:
                parity ^= self.graph.path_observable_parity(b_path[d])
        return parity
