"""Native exact minimum-weight perfect matching (the blossom engine).

A self-contained primal–dual blossom-shrinking matcher (Galil's
formulation of Edmonds' algorithm) specialised to the decoder's
*reduced defect graph*.  It replaces ``networkx.max_weight_matching``
in the decode hot path — the general-purpose library spends most of
its time in per-edge dict lookups on a freshly built ``Graph`` object,
while this engine runs on flat integer/float lists built straight from
numpy arrays.

The engine is edge-list driven, so its cost scales with the number of
edges it is fed: the dense path (:func:`min_weight_perfect_matching`)
hands it the complete ``k × k`` cost matrix of one defect component,
while the sparse region-growing matcher
(:mod:`repro.decode.sparse_match`) hands it only a few candidate edges
per defect and re-enters with repairs until the dual solution
certifies optimality over the complete graph — that is why
:func:`blossom_core` returns the final dual variables alongside the
matching.

Semantics are pinned to the decoder's historical use of networkx
(``max_weight_matching(..., maxcardinality=True)`` on ``big - w``
weights):

* **max cardinality first** — as many finite-cost pairs as possible are
  matched; ``inf`` entries are non-edges and vertices with no finite
  edge stay unmatched,
* **min total weight second** — among maximum-cardinality matchings the
  total cost is minimal (exactly; this is not a heuristic),
* **deterministic tie-breaking** — the alternating forest grows from
  free vertices in ascending index order and edges are enumerated in
  the order they are fed, so among equal-weight optima the engine
  always returns the one this lowest-index-first scan reaches.  Two
  runs (or two machines) always produce the same matching, which pins
  the tie ambiguity that the networkx backend left to inner dict order
  (``tests/test_blossom.py`` freezes the rule on degenerate
  uniform-weight instances).

The dual solution certifies optimality: for every matched edge the
complementary-slackness conditions hold up to float rounding (checked
in ``tests/test_blossom.py`` against brute force and networkx on
thousands of randomized instances).

Entry points
------------

:func:`min_weight_perfect_matching`
    Dense symmetric cost matrix (``inf`` = no edge) → partner array
    and total finite cost.  Max-cardinality min-weight semantics.
:func:`blossom_core`
    The flat edge-array core: ``(n, edge_i, edge_j, edge_w)`` →
    ``(mate, dualvar)``.  The dual/blossom bookkeeping lives here and
    is shared by the dense wrapper and the sparse matcher.
:func:`max_weight_matching`
    Edge-tuple-list wrapper over the core, kept for tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.env import env_flag

__all__ = [
    "blossom_core",
    "kernel_backend",
    "min_weight_perfect_matching",
    "max_weight_matching",
]

#: Slack tolerance for "this edge is tight" decisions.  Dual updates
#: subtract exact minima, so residues are pure float rounding — a few
#: ulps of the weight scale; 1e-9 is comfortably above that for the
#: log-likelihood weights (O(10) per edge) this engine sees.
_EPS = 1e-9

# The compiled kernel (repro/decode/_cblossom.c) is a
# statement-for-statement port of :func:`_blossom_core_py` below and is
# bit-identical to it on every input (pinned by
# tests/test_blossom_kernel.py).  It is optional: the build may be
# skipped (no C toolchain) and REPRO_PURE_BLOSSOM=1 force-disables it,
# in which case the pure-Python engine — the pinned oracle — runs.
_KERNEL = None
if not env_flag("REPRO_PURE_BLOSSOM"):
    try:
        from repro.decode import _cblossom as _KERNEL  # type: ignore
    except ImportError:  # pragma: no cover - depends on the build
        _KERNEL = None


def kernel_backend() -> str:
    """Which ``blossom_core`` backend is active.

    ``"compiled"`` when the :mod:`repro.decode._cblossom` extension
    imported (and ``REPRO_PURE_BLOSSOM`` is unset), ``"python"``
    otherwise.  Both backends return bit-identical results; only speed
    differs.
    """
    return "compiled" if _KERNEL is not None else "python"


def blossom_core(
    num_vertices: int,
    edge_i: "list[int] | np.ndarray",
    edge_j: "list[int] | np.ndarray",
    edge_w: "list[float] | np.ndarray",
    jumpstart: bool = False,
) -> tuple[list[int], list[float]]:
    """Maximum-cardinality maximum-weight matching on flat edge arrays.

    Dispatches to the compiled kernel when available (see
    :func:`kernel_backend`), otherwise to the pure-Python engine
    :func:`_blossom_core_py`; the two are bit-identical.  Edge arrays
    may be Python lists or numpy arrays — numpy inputs reach the
    compiled kernel without any intermediate list materialisation.
    Returns plain Python lists either way.
    """
    n = num_vertices
    m = len(edge_w)
    if n == 0 or m == 0:
        return [-1] * n, [0.0] * (2 * n)
    if _KERNEL is not None:
        ei = np.ascontiguousarray(edge_i, dtype=np.int64)
        ej = np.ascontiguousarray(edge_j, dtype=np.int64)
        ew = np.ascontiguousarray(edge_w, dtype=np.float64)
        mate = np.empty(n, dtype=np.int64)
        dual = np.empty(2 * n, dtype=np.float64)
        _KERNEL.blossom_core(n, ei, ej, ew, bool(jumpstart), mate, dual)
        return mate.tolist(), dual.tolist()
    # The interpreter is faster on plain lists than on ndarray scalar
    # indexing, so the pure path materialises lists once up front.
    if isinstance(edge_i, np.ndarray):
        edge_i = edge_i.tolist()
    if isinstance(edge_j, np.ndarray):
        edge_j = edge_j.tolist()
    if isinstance(edge_w, np.ndarray):
        edge_w = edge_w.tolist()
    return _blossom_core_py(n, edge_i, edge_j, edge_w, jumpstart)


def _blossom_core_py(
    num_vertices: int,
    edge_i: list[int],
    edge_j: list[int],
    edge_w: list[float],
    jumpstart: bool = False,
) -> tuple[list[int], list[float]]:
    """The pure-Python primal–dual engine (the pinned oracle).

    Returns ``(mate, dualvar)``: ``mate[v]`` is the partner vertex of
    ``v`` or ``-1``, and ``dualvar`` holds the final vertex duals
    (slots ``0..n-1``) and blossom duals (slots ``n..2n-1``).  Among
    maximum-cardinality matchings the total weight is maximal.  The
    implementation is the O(n³)-per-stage primal–dual method: grow
    alternating forests from free vertices, shrink odd cycles into
    blossoms, augment along tight paths, and adjust dual variables by
    the minimum slack when no tight edge is usable.

    The duals satisfy, for every edge ``k`` the core was fed,
    ``dualvar[i] + dualvar[j] - 2 w_k ≥ 0`` (up to rounding, and up to
    the duals of blossoms containing both endpoints, which only help).
    The sparse matcher uses exactly this inequality to detect edges it
    withheld that could still improve the matching.

    ``jumpstart=True`` greedily pre-matches initially-tight edges
    (weight equal to the maximum, i.e. cheapest-possible routes) in
    input order before the first stage.  Every primal–dual invariant
    holds — matched edges are tight, duals feasible — so the optimum
    is unchanged, but on degenerate-weight components most stages
    disappear.  Among equal-weight optima the returned matching may
    differ from the non-jumpstarted scan, which is why the dense
    oracle path never sets it and the pinned-tie-break tests keep
    their guarantees.
    """
    n = num_vertices
    m = len(edge_w)
    if n == 0 or m == 0:
        return [-1] * n, [0.0] * (2 * n)

    # endpoint[p] is the vertex at endpoint p; edge k owns endpoints
    # 2k (its i side) and 2k+1 (its j side).
    endpoint: list[int] = []
    for k in range(m):
        endpoint.append(edge_i[k])
        endpoint.append(edge_j[k])
    # neighbend[v] lists the *remote* endpoints of v's edges.
    neighbend: list[list[int]] = [[] for _ in range(n)]
    for k in range(m):
        neighbend[edge_i[k]].append(2 * k + 1)
        neighbend[edge_j[k]].append(2 * k)

    max_weight = max(edge_w)
    # Vertex duals start at the maximum edge weight, blossom duals at
    # zero; slack(k) = dual[i] + dual[j] - 2 w_k is then non-negative.
    dualvar = [max_weight] * n + [0.0] * n
    # mate[v] is the remote *endpoint* of v's matched edge, or -1.
    mate = [-1] * n
    # label: 0 free, 1 S (even), 2 T (odd); per vertex and per top
    # blossom.  labelend is the endpoint through which the label
    # arrived (-1 for forest roots).
    label = [0] * (2 * n)
    labelend = [-1] * (2 * n)
    inblossom = list(range(n))
    blossomparent = [-1] * (2 * n)
    blossomchilds: list[list[int] | None] = [None] * (2 * n)
    blossombase = list(range(n)) + [-1] * n
    blossomendps: list[list[int] | None] = [None] * (2 * n)
    bestedge = [-1] * (2 * n)
    blossombestedges: list[list[int] | None] = [None] * (2 * n)
    unusedblossoms = list(range(n, 2 * n))
    allowedge = [False] * m
    queue: list[int] = []

    def slack(k: int) -> float:
        return dualvar[edge_i[k]] + dualvar[edge_j[k]] - 2.0 * edge_w[k]

    def blossom_leaves(b: int):
        if b < n:
            yield b
        else:
            for child in blossomchilds[b]:
                if child < n:
                    yield child
                else:
                    yield from blossom_leaves(child)

    def assign_label(w: int, t: int, p: int) -> None:
        b = inblossom[w]
        label[w] = label[b] = t
        labelend[w] = labelend[b] = p
        bestedge[w] = bestedge[b] = -1
        if t == 1:
            if b < n:  # a plain vertex is its own only leaf
                queue.append(b)
            else:
                queue.extend(blossom_leaves(b))
        else:  # T-label: the base's mate becomes an S-vertex.
            base = blossombase[b]
            assign_label(endpoint[mate[base]], 1, mate[base] ^ 1)

    def scan_blossom(v: int, w: int) -> int:
        """Lowest common ancestor of v's and w's forest paths, or -1."""
        path = []
        base = -1
        while v != -1 or w != -1:
            b = inblossom[v]
            if label[b] & 4:  # already visited from the other side
                base = blossombase[b]
                break
            path.append(b)
            label[b] = 5
            if labelend[b] == -1:
                v = -1  # reached a forest root on this side
            else:
                v = endpoint[labelend[b]]
                b = inblossom[v]  # the T-blossom below
                v = endpoint[labelend[b]]  # step past it to the next S
            if w != -1:
                v, w = w, v
        for b in path:
            label[b] = 1
        return base

    def add_blossom(base: int, k: int) -> None:
        """Shrink the odd cycle through edge k and blossom ``base``."""
        v, w = edge_i[k], edge_j[k]
        bb = inblossom[base]
        bv = inblossom[v]
        bw = inblossom[w]
        b = unusedblossoms.pop()
        blossombase[b] = base
        blossomparent[b] = -1
        blossomparent[bb] = b
        path = []
        endps = []
        while bv != bb:  # trace from v down to the base
            blossomparent[bv] = b
            path.append(bv)
            endps.append(labelend[bv])
            v = endpoint[labelend[bv]]
            bv = inblossom[v]
        path.append(bb)
        path.reverse()
        endps.reverse()
        endps.append(2 * k)
        while bw != bb:  # trace from w down to the base
            blossomparent[bw] = b
            path.append(bw)
            endps.append(labelend[bw] ^ 1)
            w = endpoint[labelend[bw]]
            bw = inblossom[w]
        blossomchilds[b] = path
        blossomendps[b] = endps
        label[b] = 1
        labelend[b] = labelend[bb]
        dualvar[b] = 0.0
        for leaf in blossom_leaves(b):
            if label[inblossom[leaf]] == 2:
                # Former T-vertices become S and must be scanned.
                queue.append(leaf)
            inblossom[leaf] = b
        # Merge the children's best-edge lists into the new blossom's.
        bestedgeto = [-1] * (2 * n)
        for bv2 in path:
            if blossombestedges[bv2] is None:
                nblists = [
                    [p // 2 for p in neighbend[leaf]]
                    for leaf in blossom_leaves(bv2)
                ]
            else:
                nblists = [blossombestedges[bv2]]
            for nblist in nblists:
                for k2 in nblist:
                    i2, j2 = edge_i[k2], edge_j[k2]
                    if inblossom[j2] == b:
                        i2, j2 = j2, i2
                    bj = inblossom[j2]
                    if (
                        bj != b
                        and label[bj] == 1
                        and (
                            bestedgeto[bj] == -1
                            or slack(k2) < slack(bestedgeto[bj])
                        )
                    ):
                        bestedgeto[bj] = k2
            blossombestedges[bv2] = None
            bestedge[bv2] = -1
        blossombestedges[b] = [k2 for k2 in bestedgeto if k2 != -1]
        bestedge[b] = -1
        for k2 in blossombestedges[b]:
            if bestedge[b] == -1 or slack(k2) < slack(bestedge[b]):
                bestedge[b] = k2

    def expand_blossom(b: int, endstage: bool) -> None:
        """Undo a shrink: promote b's children back to top level."""
        for s in blossomchilds[b]:
            blossomparent[s] = -1
            if s < n:
                inblossom[s] = s
            elif endstage and dualvar[s] < _EPS:
                expand_blossom(s, endstage)
            else:
                for leaf in blossom_leaves(s):
                    inblossom[leaf] = s
        if (not endstage) and label[b] == 2:
            # The expanding blossom sits on an alternating path; the
            # children between its entry child and its base must be
            # relabeled to keep the forest consistent.
            entrychild = inblossom[endpoint[labelend[b] ^ 1]]
            j = blossomchilds[b].index(entrychild)
            if j & 1:  # entry at odd index: walk forward with wrap
                j -= len(blossomchilds[b])
                jstep = 1
                endptrick = 0
            else:  # entry at even index: walk backward
                jstep = -1
                endptrick = 1
            p = labelend[b]
            while j != 0:
                # Relabel the T-sub-blossom we step through.
                label[endpoint[p ^ 1]] = 0
                label[
                    endpoint[blossomendps[b][j - endptrick] ^ endptrick ^ 1]
                ] = 0
                assign_label(endpoint[p ^ 1], 2, p)
                allowedge[blossomendps[b][j - endptrick] // 2] = True
                j += jstep
                p = blossomendps[b][j - endptrick] ^ endptrick
                allowedge[p // 2] = True
                j += jstep
            # The base child keeps label T without recursing to its mate.
            bv = blossomchilds[b][j]
            label[endpoint[p ^ 1]] = label[bv] = 2
            labelend[endpoint[p ^ 1]] = labelend[bv] = p
            bestedge[bv] = -1
            # Children outside the entry→base path become free, unless
            # some vertex inside already carries a label.
            j += jstep
            while blossomchilds[b][j] != entrychild:
                bv = blossomchilds[b][j]
                if label[bv] == 1:
                    j += jstep
                    continue
                for leaf in blossom_leaves(bv):
                    if label[leaf] != 0:
                        break
                if label[leaf] != 0:
                    label[leaf] = 0
                    label[endpoint[mate[blossombase[bv]]]] = 0
                    assign_label(leaf, 2, labelend[leaf])
                j += jstep
        label[b] = labelend[b] = -1
        blossomchilds[b] = blossomendps[b] = None
        blossombase[b] = -1
        blossombestedges[b] = None
        bestedge[b] = -1
        unusedblossoms.append(b)

    def augment_blossom(b: int, v: int) -> None:
        """Rotate blossom b so that vertex v becomes its base."""
        t = v
        while blossomparent[t] != b:
            t = blossomparent[t]
        if t >= n:
            augment_blossom(t, v)
        i = j = blossomchilds[b].index(t)
        if i & 1:
            j -= len(blossomchilds[b])
            jstep = 1
            endptrick = 0
        else:
            jstep = -1
            endptrick = 1
        while j != 0:
            j += jstep
            t = blossomchilds[b][j]
            p = blossomendps[b][j - endptrick] ^ endptrick
            if t >= n:
                augment_blossom(t, endpoint[p])
            j += jstep
            t = blossomchilds[b][j]
            if t >= n:
                augment_blossom(t, endpoint[p ^ 1])
            mate[endpoint[p]] = p ^ 1
            mate[endpoint[p ^ 1]] = p
        blossomchilds[b] = blossomchilds[b][i:] + blossomchilds[b][:i]
        blossomendps[b] = blossomendps[b][i:] + blossomendps[b][:i]
        blossombase[b] = blossombase[blossomchilds[b][0]]

    def augment_matching(k: int) -> None:
        """Flip matched/unmatched along the paths meeting at edge k."""
        for s, p in ((edge_i[k], 2 * k + 1), (edge_j[k], 2 * k)):
            while True:
                bs = inblossom[s]
                if bs >= n:
                    augment_blossom(bs, s)
                mate[s] = p
                if labelend[bs] == -1:
                    break  # reached a forest root
                t = endpoint[labelend[bs]]
                bt = inblossom[t]
                s = endpoint[labelend[bt]]
                j = endpoint[labelend[bt] ^ 1]
                if bt >= n:
                    augment_blossom(bt, j)
                mate[j] = labelend[bt]
                p = labelend[bt] ^ 1

    if jumpstart:
        # Greedy matching on initially-tight edges (w == max weight):
        # mate[] entries are endpoint codes, consistent with the core's
        # bookkeeping, and every matched edge satisfies complementary
        # slackness at the starting duals.
        tight = max_weight - _EPS
        for k in range(m):
            if edge_w[k] >= tight:
                i, j = edge_i[k], edge_j[k]
                if mate[i] == -1 and mate[j] == -1 and i != j:
                    mate[i] = 2 * k + 1
                    mate[j] = 2 * k

    for _stage in range(n):
        # Each stage augments the matching by one edge or proves that
        # no larger max-cardinality matching exists.
        label[:] = [0] * (2 * n)
        bestedge[:] = [-1] * (2 * n)
        for b in range(n, 2 * n):
            blossombestedges[b] = None
        allowedge[:] = [False] * m
        queue[:] = []
        for v in range(n):
            if mate[v] == -1 and label[inblossom[v]] == 0:
                assign_label(v, 1, -1)
        augmented = False
        while True:
            while queue and not augmented:
                v = queue.pop()
                for p in neighbend[v]:
                    k = p // 2
                    w = endpoint[p]
                    if inblossom[v] == inblossom[w]:
                        continue  # internal blossom edge
                    if not allowedge[k]:
                        # slack(k), inlined: this line and the bestedge
                        # comparisons below are the hottest statements
                        # in the engine.
                        kslack = (
                            dualvar[edge_i[k]]
                            + dualvar[edge_j[k]]
                            - 2.0 * edge_w[k]
                        )
                        if kslack <= _EPS:
                            allowedge[k] = True
                    if allowedge[k]:
                        bw = inblossom[w]
                        if label[bw] == 0:
                            assign_label(w, 2, p ^ 1)
                        elif label[bw] == 1:
                            base = scan_blossom(v, w)
                            if base >= 0:
                                add_blossom(base, k)
                            else:
                                augment_matching(k)
                                augmented = True
                                break
                        elif label[w] == 0:
                            label[w] = 2
                            labelend[w] = p ^ 1
                    elif label[inblossom[w]] == 1:
                        b = inblossom[v]
                        kb = bestedge[b]
                        if kb == -1 or kslack < (
                            dualvar[edge_i[kb]]
                            + dualvar[edge_j[kb]]
                            - 2.0 * edge_w[kb]
                        ):
                            bestedge[b] = k
                    elif label[w] == 0:
                        kb = bestedge[w]
                        if kb == -1 or kslack < (
                            dualvar[edge_i[kb]]
                            + dualvar[edge_j[kb]]
                            - 2.0 * edge_w[kb]
                        ):
                            bestedge[w] = k
            if augmented:
                break
            # No tight edge to use: compute the dual adjustment.  The
            # max-cardinality objective omits the "min vertex dual"
            # stopping term until nothing else binds.
            deltatype = -1
            delta = 0.0
            deltaedge = -1
            deltablossom = -1
            for v in range(n):
                kb = bestedge[v]
                if label[inblossom[v]] == 0 and kb != -1:
                    d = (
                        dualvar[edge_i[kb]]
                        + dualvar[edge_j[kb]]
                        - 2.0 * edge_w[kb]
                    )
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 2
                        deltaedge = kb
            for b in range(2 * n):
                kb = bestedge[b]
                if blossomparent[b] == -1 and label[b] == 1 and kb != -1:
                    d = (
                        dualvar[edge_i[kb]]
                        + dualvar[edge_j[kb]]
                        - 2.0 * edge_w[kb]
                    ) / 2.0
                    if deltatype == -1 or d < delta:
                        delta = d
                        deltatype = 3
                        deltaedge = kb
            for b in range(n, 2 * n):
                if (
                    blossombase[b] >= 0
                    and blossomparent[b] == -1
                    and label[b] == 2
                    and (deltatype == -1 or dualvar[b] < delta)
                ):
                    delta = dualvar[b]
                    deltatype = 4
                    deltablossom = b
            if deltatype == -1:
                # The forest is saturated: maximum cardinality reached.
                deltatype = 1
                delta = max(0.0, min(dualvar[:n]))
            for v in range(n):
                lb = label[inblossom[v]]
                if lb == 1:
                    dualvar[v] -= delta
                elif lb == 2:
                    dualvar[v] += delta
            for b in range(n, 2 * n):
                if blossombase[b] >= 0 and blossomparent[b] == -1:
                    if label[b] == 1:
                        dualvar[b] += delta
                    elif label[b] == 2:
                        dualvar[b] -= delta
            if deltatype == 1:
                break
            if deltatype == 2:
                allowedge[deltaedge] = True
                i2 = edge_i[deltaedge]
                if label[inblossom[i2]] == 0:
                    i2 = edge_j[deltaedge]
                queue.append(i2)
            elif deltatype == 3:
                allowedge[deltaedge] = True
                queue.append(edge_i[deltaedge])
            else:
                expand_blossom(deltablossom, False)
        if not augmented:
            break
        for b in range(n, 2 * n):
            if (
                blossomparent[b] == -1
                and blossombase[b] >= 0
                and label[b] == 1
                and dualvar[b] < _EPS
            ):
                expand_blossom(b, True)

    result = [-1] * n
    for v in range(n):
        if mate[v] >= 0:
            result[v] = endpoint[mate[v]]
    return result, dualvar


def max_weight_matching(
    num_vertices: int,
    edges: list[tuple[int, int, float]],
) -> list[int]:
    """Maximum-cardinality maximum-weight matching on an edge list.

    Tuple-list wrapper over :func:`blossom_core`, kept for tests and
    callers that do not need the dual solution.
    """
    edge_i = [e[0] for e in edges]
    edge_j = [e[1] for e in edges]
    edge_w = [float(e[2]) for e in edges]
    mate, _ = blossom_core(num_vertices, edge_i, edge_j, edge_w)
    return mate


def min_weight_perfect_matching(
    cost: np.ndarray,
) -> tuple[list[int], float]:
    """Max-cardinality minimum-cost matching on a dense cost matrix.

    ``cost`` is a symmetric ``(n, n)`` float array; ``inf`` entries are
    non-edges and the diagonal is ignored.  Returns ``(mate, total)``
    where ``mate[v]`` is ``v``'s partner (or ``-1`` for vertices left
    unmatched because no finite edge could cover them) and ``total`` is
    the sum of the matched finite costs.

    Internally costs are negated onto ``big - cost`` so the
    max-cardinality max-weight core minimises total cost among
    maximum matchings; ``big`` exceeds twice the largest finite cost,
    which keeps all transformed weights positive.
    """
    cost = np.asarray(cost, dtype=np.float64)
    n = cost.shape[0]
    if n < 2:
        return [-1] * n, 0.0
    finite = np.isfinite(cost)
    np.fill_diagonal(finite, False)
    iu, ju = np.nonzero(np.triu(finite, 1))
    if iu.size == 0:
        return [-1] * n, 0.0
    big = 1.0 + 2.0 * float(cost[iu, ju].max())
    mate, _ = blossom_core(n, iu, ju, big - cost[iu, ju])
    total = 0.0
    for v in range(n):
        if 0 <= mate[v] and v < mate[v]:
            total += float(cost[v, mate[v]])
    return mate, total
