"""Sliding-window temporal decoding with boundary commitment.

Whole-history matching needs the full ``(rounds + 1) × G`` detector
record (``G`` = same-basis stabilizer generators) before it can decode
anything, so its memory and its all-pairs matrices grow with the
stream.  This module decodes an *unbounded* round stream in bounded
memory by matching overlapping round-windows and committing only the
prefix of each window that the next window re-derives:

* a window spans ``WindowConfig.window`` detector layers; after
  matching it, the first ``WindowConfig.commit`` layers are final.
  Routes lying *wholly* below the commit line are committed — their
  observable parity is added to the stream's running prediction and
  their defects are consumed.
* every other route is discarded and its defects — including any
  below the commit line — are **deferred** into the next window, where
  they re-decode together with the newly arrived layers.  Routes that
  merely touch the tentative tail are never trusted: the window cannot
  see paths or partners beyond its trailing edge, so a cross-line pair
  the whole-history matcher would split differently must wait for more
  context.  The raw detector data of the overlap region is superseded
  by the deferred set (committed routes already explained the rest).
* each window's matching graph carries a leading **pad** of
  ``commit + 2`` already-committed layers that hosts deferred defects
  which have slipped below the current window's start.  A route whose
  earliest defect would recede past the pad is force-committed instead
  (by then it has been re-examined with a full extra window of
  context), so defects never recede unboundedly and memory stays
  bounded.
* the final window — whatever remains when the stream ends — commits
  everything, including the data-measurement detector layer.

Window matching graphs are sliced out of **one probe circuit** of
``window + pad + 1`` rounds rather than rebuilt per stream length: the
memory circuit's error mechanisms are translation invariant away from
the initialisation layer and the final data-measurement layer (each
mechanism spans at most two adjacent detector layers, and a space-like
error's observable flip depends only on whether its qubit lies on the
logical support), so the probe's layers ``[0, W)`` give the *first*
window graph, layers ``[1, 1 + pad + W)`` give every *bulk* window
graph (leading pad included), and its last ``pad + B`` layers give the
*final* window graph for a stream ending with ``B`` buffered layers.
Windows starting no more than ``pad`` layers into the stream instead
slice the probe's exact prefix (bulk) or reuse the exact whole-history
graph for the stream's full length (final), so the pad region is
always structurally faithful.  A mechanism with any detector outside
the slice is dropped (closed temporal boundaries): a straddler at the
leading edge was already committed by the previous window, and one at
the trailing edge leaves a lone deferred defect that re-decodes next
window with its partner visible.

Agreement: committed predictions are pinned bit-identical to
whole-history dense matching whenever the optimum is unique (the
window/overlap agreement suite in ``tests/test_window.py``); among
equal-weight optima the windowed and whole-history formulations may
legitimately pick different routes.  Streams no longer than one window
never pay the windowing machinery at all — they fall back to exact
whole-history decoding of the equivalent memory circuit.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.decode.blossom import min_weight_perfect_matching
from repro.decode.graph import MATRIX_NODE_LIMIT
from repro.decode.mwpm import MatchingDecoder
from repro.sim import build_dem, memory_circuit
from repro.sim.dem import DetectorErrorModel, ErrorMechanism
from repro.utils.gf2 import PackedBits

if TYPE_CHECKING:
    from repro.codes import SubsystemCode
    from repro.sim import NoiseModel

__all__ = ["WindowConfig", "SlidingWindowDecoder", "WindowStream"]

#: Pad slack beyond the commit depth: a deferred defect may slip up to
#: this many layers below a window's start before any route containing
#: it is force-committed.  One extra window of context plus margin for
#: shortest paths that dip below the window's leading edge.
_PAD_SLACK = 2

#: Default bound on each per-kind (defect tuple -> outcome) memo.
_DEFAULT_MEMO_SIZE = 65536


@dataclass(frozen=True)
class WindowConfig:
    """Window geometry, in detector layers (one layer per round).

    ``window`` layers are matched at a time; the first ``commit``
    layers of each window become final and the remaining
    ``window - commit`` layers overlap into the next window.  A larger
    overlap widens the context tentative routes re-decode with (more
    robust near the commit line); a larger commit advances the stream
    faster per matching call.
    """

    window: int = 10
    commit: int = 5

    def __post_init__(self) -> None:
        if self.window < 2:
            raise ValueError("window must span at least 2 detector layers")
        if not 1 <= self.commit < self.window:
            raise ValueError(
                "commit must satisfy 1 <= commit < window "
                f"(got commit={self.commit}, window={self.window})"
            )


class SlidingWindowDecoder:
    """Bounded-memory streaming decoder for one memory-experiment setup.

    Holds everything streams share — the probe circuit's sliced window
    graphs, the per-window-kind outcome memos, and the whole-history
    fallback decoders for short streams — so any number of concurrent
    :class:`WindowStream` sessions (one per logical stream) reuse the
    same matrices.  ``workers`` is the forked-pool width handed to the
    fallback's ``decode_batch`` (the canonical spelling shared with
    :class:`~repro.decode.base.Decoder`).

    Every matching graph a stream can touch has at most
    ``(window + commit + 2) × G`` detectors (the window span plus its
    leading pad) regardless of how many rounds the stream runs, which
    is the bounded-memory guarantee the service builds on.
    """

    def __init__(
        self,
        code: SubsystemCode,
        basis: str,
        noise: NoiseModel,
        *,
        config: WindowConfig | None = None,
        defective_data: set | None = None,
        defective_ancillas: set | None = None,
        workers: int | None = None,
        memo_size: int = _DEFAULT_MEMO_SIZE,
    ) -> None:
        self.config = config if config is not None else WindowConfig()
        self.code = code
        self.basis = basis
        self.noise = noise
        self.defective_data = frozenset(defective_data or ())
        self.defective_ancillas = frozenset(defective_ancillas or ())
        self.workers = workers
        self.memo_size = memo_size
        generators = [
            g for g in code.stabilizers.values() if g.basis == basis
        ]
        if not generators:
            raise ValueError(f"code has no {basis}-basis stabilizers")
        #: Detectors per layer: one per same-basis stabilizer generator.
        self.layer_width = len(generators)
        #: Leading-pad depth of a steady-state window graph: deep
        #: enough to host any defect deferred from the previous window
        #: (``commit`` layers) plus the force-commit slack.
        self.pad = self.config.commit + _PAD_SLACK
        padded = self.config.window + self.pad
        if padded * self.layer_width + 1 > MATRIX_NODE_LIMIT:
            raise ValueError(
                f"window of {self.config.window} (+{self.pad} pad) "
                f"layers x {self.layer_width} detectors exceeds the "
                f"all-pairs matrix limit ({MATRIX_NODE_LIMIT} nodes); "
                "use a smaller window"
            )
        self._probe: DetectorErrorModel | None = None
        self._graphs: dict[object, MatchingDecoder] = {}
        self._memos: dict[object, OrderedDict] = {}
        self._whole: dict[int, MatchingDecoder] = {}

    # -- session front doors -------------------------------------------
    def open_stream(self, shots: int) -> WindowStream:
        """A fresh streaming session decoding ``shots`` parallel shots."""
        if shots < 1:
            raise ValueError("shots must be a positive integer")
        return WindowStream(self, shots)

    def decode_batch(
        self, detector_samples: np.ndarray | PackedBits
    ) -> np.ndarray:
        """Stream a complete detector record through windowed decoding.

        Accepts the packed sampler's detector bitplane (rows =
        detectors, bits = shots) or a ``(shots, detectors)`` uint8
        array whose width is a whole number of layers, and returns one
        observable prediction per shot — the committed-region
        predictions of every window plus the final window's.
        """
        rows = _as_shot_rows(detector_samples)
        stream = self.open_stream(len(rows))
        stream.push(rows)
        return stream.finish()

    # -- probe construction and slicing --------------------------------
    def _memory_circuit(self, rounds: int):
        return memory_circuit(
            self.code,
            self.basis,
            rounds,
            self.noise,
            defective_data=set(self.defective_data) or None,
            defective_ancillas=set(self.defective_ancillas) or None,
        )

    def _probe_layers(self) -> int:
        return self.config.window + self.pad + 2

    def _probe_dem(self) -> DetectorErrorModel:
        """DEM of the probe circuit every window graph is sliced from."""
        if self._probe is None:
            rounds = self._probe_layers() - 1
            dem = build_dem(self._memory_circuit(rounds))
            expected = self._probe_layers() * self.layer_width
            if dem.num_detectors != expected:
                raise AssertionError(
                    f"probe circuit produced {dem.num_detectors} "
                    f"detectors, expected {expected}"
                )
            self._probe = dem
        return self._probe

    def _slice_dem(self, start: int, stop: int) -> DetectorErrorModel:
        """Sub-DEM of probe layers ``[start, stop)``, rebased to 0.

        Only mechanisms with *every* detector inside the slice survive
        (closed temporal boundaries); detector-less mechanisms are
        dropped — they never participate in matching.
        """
        probe = self._probe_dem()
        lo = start * self.layer_width
        hi = stop * self.layer_width
        mechanisms = [
            ErrorMechanism(
                m.probability,
                tuple(d - lo for d in m.detectors),
                m.observable_flip,
            )
            for m in probe.mechanisms
            if m.detectors and all(lo <= d < hi for d in m.detectors)
        ]
        return DetectorErrorModel(
            mechanisms, hi - lo, probe.num_observables
        )

    def _graph(self, kind: object) -> MatchingDecoder:
        """Matching machinery for one window kind, built once.

        ``"first"`` covers probe layers ``[0, W)`` (the stream's own
        opening window, initialisation layer included), ``"bulk"``
        covers ``[1, 1 + pad + W)`` (any interior window plus its
        leading pad of committed layers), ``("head", lo)`` covers the
        exact prefix ``[0, lo + W)`` for an interior window starting
        only ``lo <= pad`` layers into the stream, ``("final", B)``
        covers the probe's last ``pad + B`` layers, and
        ``("final_exact", lo, B)`` is the whole-history graph for a
        stream of ``lo + B`` layers whose final window starts at
        ``lo <= pad``.  The dense matcher is pinned so route
        extraction is deterministic.
        """
        decoder = self._graphs.get(kind)
        if decoder is None:
            window = self.config.window
            probe_layers = self._probe_layers()
            if kind == "first":
                start, stop = 0, window
            elif kind == "bulk":
                start, stop = 1, 1 + self.pad + window
            elif kind[0] == "head":  # type: ignore[index]
                start, stop = 0, kind[1] + window  # type: ignore[index]
            elif kind[0] == "final":  # type: ignore[index]
                _, tail = kind  # type: ignore[misc]
                start, stop = probe_layers - self.pad - tail, probe_layers
            else:  # ("final_exact", lo, B): the stream's whole history
                _, lo, tail = kind  # type: ignore[misc]
                decoder = self._whole_history(lo + tail)
                decoder.graph.ensure_matrices()
                self._graphs[kind] = decoder
                return decoder
            decoder = MatchingDecoder(
                self._slice_dem(start, stop), matcher="dense", cache_size=0
            )
            decoder.graph.ensure_matrices()
            self._graphs[kind] = decoder
        return decoder

    def _pad_of(self, kind: object) -> int:
        """Leading-pad depth (in layers) of one window kind's graph."""
        if kind == "first":
            return 0
        if kind == "bulk":
            return self.pad
        tag = kind[0]  # type: ignore[index]
        if tag in ("head", "final_exact"):
            return kind[1]  # type: ignore[index]
        return self.pad  # ("final", B)

    def built_graph_sizes(self) -> dict[object, int]:
        """Detector counts of every window graph built so far (all are
        bounded by ``(window + pad) × layer_width`` whatever the
        stream length)."""
        return {
            kind: decoder.num_detectors
            for kind, decoder in self._graphs.items()
        }

    def _whole_history(self, num_layers: int) -> MatchingDecoder:
        """Exact fallback decoder for streams of ``num_layers`` layers."""
        decoder = self._whole.get(num_layers)
        if decoder is None:
            dem = build_dem(self._memory_circuit(num_layers - 1))
            decoder = MatchingDecoder(dem, matcher="dense")
            self._whole[num_layers] = decoder
        return decoder

    # -- windowed matching ---------------------------------------------
    def _routes(
        self, decoder: MatchingDecoder, defects: tuple[int, ...]
    ) -> list[tuple]:
        """Optimal routing of one defect set, route by route.

        Same objective and construction as
        :meth:`MatchingDecoder._blossom_match` — symmetrised pair
        distances floored by the two-boundary route, dense matching on
        the reduced component — but returning the individual routes
        (``("pair", i, j, parity)`` / ``("boundary", i, parity)`` /
        ``("dangle", i)`` over positions into ``defects``) instead of
        their folded parity, because commitment classifies each route
        by where its defects sit relative to the commit line.  A
        matched pair whose direct path loses to two boundary routes
        splits into those two routes *before* classification, so each
        half commits independently.
        """
        dist, parity, b_dist, b_par = decoder._lookup(defects)
        k = len(defects)
        if k == 1:
            if np.isfinite(b_dist[0]):
                return [("boundary", 0, int(b_par[0]))]
            return [("dangle", 0)]
        dist = np.minimum(dist, dist.T)
        via_boundary = b_dist[:, None] + b_dist[None, :]
        weights = np.minimum(dist, via_boundary)
        use_pair = dist <= via_boundary
        _, cost = MatchingDecoder._reduced_cost(k, weights, b_dist)
        mate, _ = min_weight_perfect_matching(cost)
        routes: list[tuple] = []
        for i in range(k):
            j = int(mate[i])
            if j == k:  # the odd defect routed to the boundary
                routes.append(("boundary", i, int(b_par[i])))
            elif j < 0:  # disconnected leftovers route alone
                if np.isfinite(b_dist[i]):
                    routes.append(("boundary", i, int(b_par[i])))
                else:
                    routes.append(("dangle", i))
            elif i < j:
                if use_pair[i, j]:
                    routes.append(("pair", i, j, int(parity[i, j])))
                else:
                    routes.append(("boundary", i, int(b_par[i])))
                    routes.append(("boundary", j, int(b_par[j])))
        return routes

    def _process(
        self,
        kind: object,
        defects: tuple[int, ...],
        commit_line: int | None,
        floor: int,
    ) -> tuple[int, tuple[int, ...]]:
        """Match one window's defect set; split it at the commit line.

        Returns ``(committed_parity, deferred)``: the XOR of the
        observable parities of every committed route, plus the defects
        of deferred routes — already shifted by the commit depth, so
        they index directly into the *next* window.  A route commits
        only when *all* its defects lie below the commit line (a
        cross-line route's tentative endpoint makes its weight
        unreliable — the window cannot see paths or partners beyond
        its trailing edge — so the whole route re-decodes next window
        with more context), or when any defect lies below ``floor``
        (deferring again would recede past the next window's pad).
        ``commit_line=None`` (the final window) commits everything.
        Outcomes are memoised per window kind: the commit line and
        floor are functions of the kind, so equal defect tuples always
        resolve identically, and low-error-rate streams hit the memo
        for almost every shot.
        """
        memo = self._memos.setdefault(kind, OrderedDict())
        hit = memo.get(defects)
        if hit is not None:
            memo.move_to_end(defects)
            return hit
        parity = 0
        deferred: list[int] = []
        if defects:
            # Defects are window-local (layer 0 = the window's first
            # layer; held defects from earlier windows may be
            # negative); the graph's leading pad shifts them up.
            # Routes come back as positions into ``defects``, so
            # commitment classifies in window coordinates directly.
            pad_shift = self._pad_of(kind) * self.layer_width
            graph_defects = tuple(d + pad_shift for d in defects)
            for route in self._routes(self._graph(kind), graph_defects):
                tag = route[0]
                if tag == "pair":
                    _, i, j, route_parity = route
                    a, b = defects[i], defects[j]
                    if commit_line is None or (
                        max(a, b) < commit_line or min(a, b) < floor
                    ):
                        parity ^= route_parity
                    else:
                        deferred.extend((a, b))
                elif tag == "boundary":
                    _, i, route_parity = route
                    if commit_line is None or defects[i] < commit_line:
                        parity ^= route_parity
                    else:
                        deferred.append(defects[i])
                else:  # dangle: no route exists either way
                    _, i = route
                    if commit_line is not None and defects[i] >= commit_line:
                        deferred.append(defects[i])
        shift = 0 if commit_line is None else (
            self.config.commit * self.layer_width
        )
        result = (parity, tuple(d - shift for d in sorted(deferred)))
        memo[defects] = result
        if len(memo) > self.memo_size:
            memo.popitem(last=False)
        return result


class WindowStream:
    """One logical stream's decoding state (create via ``open_stream``).

    Detector layers arrive through :meth:`push` — any whole number of
    layers at a time, for all ``shots`` of the stream at once — and
    windows advance automatically as soon as a window provably is not
    the stream's last (``window + 1`` layers buffered).  :meth:`finish`
    decodes whatever remains as the final window and returns the
    stream's observable predictions.

    Memory high-water marks are exposed for the bounded-memory
    guarantee: the buffer never holds more than ``window + commit``
    layers (:attr:`max_buffered_layers`), independent of stream length.
    """

    def __init__(self, decoder: SlidingWindowDecoder, shots: int) -> None:
        self._decoder = decoder
        self.shots = shots
        self._layers: list[np.ndarray] = []
        self._parity = np.zeros(shots, dtype=np.uint8)
        self._deferred: list[tuple[int, ...]] = [()] * shots
        #: Local layer index from which buffered raw data is still
        #: authoritative; below it the deferred defect sets supersede
        #: the buffer (committed routes already explained the rest).
        self._fresh_from = 0
        self.windows_processed = 0
        self.layers_seen = 0
        self.max_buffered_layers = 0
        self._finished = False

    # -- ingestion ------------------------------------------------------
    def push(self, chunk: np.ndarray | PackedBits) -> None:
        """Append whole detector layers (``(shots, k*G)`` or bitplane)."""
        if self._finished:
            raise RuntimeError("stream already finished")
        rows = _as_shot_rows(chunk)
        if rows.shape[0] != self.shots:
            raise ValueError(
                f"chunk carries {rows.shape[0]} shots, stream expects "
                f"{self.shots}"
            )
        width = self._decoder.layer_width
        if rows.shape[1] % width:
            raise ValueError(
                f"chunk width {rows.shape[1]} is not a whole number of "
                f"detector layers (layer width {width})"
            )
        for offset in range(0, rows.shape[1], width):
            self._layers.append(
                np.ascontiguousarray(rows[:, offset : offset + width])
            )
        self.layers_seen += rows.shape[1] // width
        self.max_buffered_layers = max(
            self.max_buffered_layers, len(self._layers)
        )
        window = self._decoder.config.window
        # A window is matched only once window + 1 layers are buffered —
        # proof it is not the stream's final window (which needs the
        # final-measurement graph instead).
        while len(self._layers) > window:
            self._advance()

    def _advance(self) -> None:
        decoder = self._decoder
        config = decoder.config
        width = decoder.layer_width
        lo = self.windows_processed * config.commit  # global start layer
        if self.windows_processed == 0:
            kind: object = "first"
        elif lo <= decoder.pad:
            kind = ("head", lo)
        else:
            kind = "bulk"
        # A deferred defect shifts down by ``commit`` layers; it may
        # not recede past the next window's pad.
        next_pad = min(decoder.pad, lo + config.commit)
        floor = (config.commit - next_pad) * width
        self._consume(kind, config.window, config.commit * width, floor)
        del self._layers[: config.commit]
        self._fresh_from = config.window - config.commit
        self.windows_processed += 1

    def _consume(
        self,
        kind: object,
        num_layers: int,
        commit_line: int | None,
        floor: int = 0,
    ) -> None:
        """Match one window over all shots, folding in its outcome."""
        decoder = self._decoder
        for shot, defects in enumerate(
            self._merged_defects(num_layers)
        ):
            if defects:
                parity, deferred = decoder._process(
                    kind, defects, commit_line, floor
                )
                self._parity[shot] ^= parity
                self._deferred[shot] = deferred
            else:
                self._deferred[shot] = ()

    def _merged_defects(self, num_layers: int) -> list[tuple[int, ...]]:
        """Per-shot window defect sets: deferred ∪ fresh raw defects.

        Deferred defects live below ``_fresh_from`` layers (the overlap
        region, superseded raw data), fresh defects at or above it, so
        concatenation is already sorted.  Fresh extraction is one
        ``np.nonzero`` over the stacked fresh layers plus a bincount
        split, the same vector shape ``decode/base.py`` uses.
        """
        width = self._decoder.layer_width
        fresh = min(self._fresh_from, num_layers)
        if fresh >= num_layers:
            fresh_sets: list[list[int]] = [[]] * self.shots
        else:
            data = (
                self._layers[fresh]
                if num_layers - fresh == 1
                else np.concatenate(
                    self._layers[fresh:num_layers], axis=1
                )
            )
            shot_ids, cols = np.nonzero(data)
            bounds = np.zeros(self.shots + 1, dtype=np.int64)
            np.cumsum(
                np.bincount(shot_ids, minlength=self.shots),
                out=bounds[1:],
            )
            flat = (cols + fresh * width).tolist()
            fresh_sets = [
                flat[lo:hi]
                for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
            ]
        return [
            (*held, *new) if held else tuple(new)
            for held, new in zip(self._deferred, fresh_sets, strict=True)
        ]

    # -- completion -----------------------------------------------------
    def finish(self) -> np.ndarray:
        """Decode the final window and return per-shot predictions.

        A stream that never advanced a window (no more than ``window``
        layers in total) skips the windowing machinery entirely: its
        buffered record *is* the whole history, which the exact
        fallback decoder for that round count handles — initialisation
        layer and all — through the ordinary batch path (and the
        forked pool, when the shared decoder was built with
        ``workers``).
        """
        if self._finished:
            raise RuntimeError("stream already finished")
        self._finished = True
        remaining = len(self._layers)
        if self.windows_processed == 0:
            if remaining < 2:
                raise ValueError(
                    "a stream needs at least 2 detector layers (one "
                    "round plus the final measurement)"
                )
            decoder = self._decoder._whole_history(remaining)
            data = np.concatenate(self._layers, axis=1)
            self._parity ^= decoder.decode_batch(
                data, workers=self._decoder.workers
            )
        else:
            lo = self.windows_processed * self._decoder.config.commit
            kind: object = (
                ("final_exact", lo, remaining)
                if lo <= self._decoder.pad
                else ("final", remaining)
            )
            self._consume(kind, remaining, None)
        self._layers.clear()
        return self._parity


def _as_shot_rows(samples: np.ndarray | PackedBits) -> np.ndarray:
    """Canonicalise stream input to ``(shots, detectors)`` uint8 rows.

    Packed bitplanes arrive in the sampler's wire format (rows =
    detectors, bits = shots) and are transposed through the bitplane's
    memoised packed transpose before unpacking.
    """
    if isinstance(samples, PackedBits):
        return samples.transposed().unpack()
    rows = np.asarray(samples, dtype=np.uint8)
    if rows.ndim == 1:
        rows = rows.reshape(1, -1)
    if rows.ndim != 2:
        raise ValueError(
            f"detector samples must be 2-D (shots, detectors), got "
            f"shape {rows.shape}"
        )
    return rows
