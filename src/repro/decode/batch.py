"""Vectorised batch decoding of unique syndromes (blossom method).

The serial matrix path (:meth:`MatchingDecoder._decode_blossom_matrix`)
spends its time in per-shot Python: matrix gathers, a BFS over the
pairable graph, and one subset-DP per component.  This module runs the
identical algorithm over *all* unique syndromes of a batch at once:

1. **Stacked lookups** — syndromes are grouped by defect count ``k``
   and their pairwise distance/parity/boundary arrays gathered as
   ``(group, k, k)`` tensors in a handful of fancy-indexing calls.
2. **Batch component labelling** — the pairable edges of every
   syndrome are block-stacked into one sparse adjacency over all
   defect occurrences and labelled with a single
   :func:`scipy.sparse.csgraph.connected_components` call (edges never
   cross syndromes, so labels respect syndrome boundaries by
   construction).
3. **Size-class bucketing** — components are bucketed by size:
   singletons and pairs resolve with pure array ops, mid-size
   components run the subset DP *stacked* (one gather + ``argmin`` per
   popcount level for every same-size component simultaneously), and
   only components beyond the decoder's DP cutoff
   (``MatchingDecoder._dp_cutoff`` — the stacked-DP ceiling for the
   sparse matcher, :data:`DP_DEFECT_LIMIT` for the dense one) fall
   through to the decoder's oversize matching engine one by one
   (``MatchingDecoder._match_oversize``: the sparse region-growing
   engine by default, the dense blossom as oracle).

Every numerical step reproduces the serial path operation-for-
operation — the same symmetrisation, the same transition tables, the
same tie-breaking ``argmin`` — so predictions are bit-identical to
per-shot decoding; the agreement suites pin this.

The subset-DP transition tables (:func:`_dp_tables`) and the DP size
limits live here and are shared with the serial matchers in
:mod:`repro.decode.mwpm`.
"""

from __future__ import annotations

import numpy as np

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.decode import blossom as _blossom
from repro.decode.blossom import kernel_backend

if TYPE_CHECKING:
    from repro.decode.mwpm import MatchingDecoder

__all__ = [
    "DP_SCALAR_LIMIT",
    "DP_DEFECT_LIMIT",
    "decode_blossom_batch",
]

#: Up to this many defects the exact subset-DP matchers replace blossom:
#: a scalar DP below ``DP_SCALAR_LIMIT``, a numpy level-batched DP with
#: cached per-size index tables up to ``DP_DEFECT_LIMIT``.
DP_SCALAR_LIMIT = 7
DP_DEFECT_LIMIT = 14

#: Cap on ``group × k²`` gather elements per edge-construction chunk;
#: bounds peak memory to tens of MB.
_BATCH_ELEMENT_LIMIT = 1 << 22

#: Largest component size the *stacked* DP handles; beyond it the
#: per-level gathers (``chunk × C(k, k/2) × k/2`` floats) overflow the
#: CPU cache and the serial level-batched DP — whose working set is one
#: component's ``2^k`` table — is measurably faster per component.
_DP_STACK_MAX = 11

#: Cap on ``chunk × 2**k`` stacked-DP table elements; keeps each
#: level's gather within cache (the sweet spot measured on the d=7
#: benchmark: chunks of 64–512 components depending on ``k``).
_DP_CHUNK_ELEMENTS = 1 << 16

# Per-defect-count transition tables for the vectorised subset DP,
# shared across decoders (built once per k, a few MB total).
_DP_TABLES: dict[int, list] = {}


def _dp_tables(k: int) -> list:
    """Level-batched transition tables for the k-defect subset DP.

    For every defect-subset mask, the lowest member ``i`` either pairs
    with another member ``j``, routes to the boundary, or dangles.  All
    masks of equal popcount ``c`` have exactly ``c + 1`` transitions,
    so each level is three dense ``(num_masks, c + 1)`` index arrays:

    * ``cost_idx`` into the flat cost vector ``[W (k²), boundary (k),
      dangle (1)]`` (parities share the same layout),
    * ``other_idx`` — the submask the transition recurses into,
    * ``masks`` — the DP slots this level writes.

    Transition order is pairs by ascending ``j``, then boundary, then
    dangle, so ``argmin`` tie-breaking matches the scalar DP.
    """
    tables = _DP_TABLES.get(k)
    if tables is not None:
        return tables
    from itertools import combinations

    tables = []
    boundary_base = k * k
    dangle_idx = k * k + k
    for c in range(1, k + 1):
        masks = []
        cost_idx = []
        other_idx = []
        for members in combinations(range(k), c):
            mask = 0
            for m in members:
                mask |= 1 << m
            i = members[0]
            rest = mask ^ (1 << i)
            row_cost = []
            row_other = []
            for j in members[1:]:
                row_cost.append(i * k + j)
                row_other.append(rest ^ (1 << j))
            row_cost.append(boundary_base + i)
            row_other.append(rest)
            row_cost.append(dangle_idx)
            row_other.append(rest)
            masks.append(mask)
            cost_idx.append(row_cost)
            other_idx.append(row_other)
        tables.append(
            (
                np.array(masks, dtype=np.int64),
                np.array(cost_idx, dtype=np.int64),
                np.array(other_idx, dtype=np.int64),
            )
        )
    _DP_TABLES[k] = tables
    return tables


def _gather(graph, det):
    """Stacked route arrays for ``(batch, k)`` defect index rows.

    Returns ``(W, use_pair, pairable, P, b_dist, b_par)`` exactly as
    the serial path computes them per shot: distances symmetrised
    (Dijkstra rows round independently), pair cost floored by the
    two-boundary route, ``use_pair`` preferring the pair on ties.  The
    arithmetic lives in the graph's whole-matrix route tables
    (:meth:`~repro.decode.graph.DecodingGraph.ensure_route_tables`);
    this is four flat gathers sharing one precomputed index array, so
    the per-call cost is memory traffic only.
    """
    W_full, up_full, pair_full, par, b_dist, b_par = (
        graph.ensure_route_tables()
    )
    idx = det[:, :, None] * len(b_dist) + det[:, None, :]
    return (
        W_full.ravel()[idx],
        up_full.ravel()[idx],
        pair_full.ravel()[idx],
        par.ravel()[idx],
        b_dist[det],
        b_par[det],
    )


def _pairable(graph, det):
    """Just the pairable-adjacency mask of :func:`_gather`.

    Edge construction only needs ``d ≤ b(a)+b(b)`` and finiteness;
    gathering one bool table instead of six arrays keeps the
    decomposition stage's fancy-indexing volume minimal.
    """
    pair_full = graph.ensure_route_tables()[2]
    idx = det[:, :, None] * pair_full.shape[0] + det[:, None, :]
    return pair_full.ravel()[idx]


def _dp_flatten(k, W, use_pair, P, b_dist, b_par):
    """Flat ``[pair | boundary | dangle]`` transition vectors.

    The layout both DP backends index: ``cost_flat`` holds the k²
    route costs, the k boundary costs and the dangle penalty per
    component; ``par_flat`` the matching parities.  The dangle
    reduction happens *here*, in numpy, for both backends — its float
    summation order decides last-ulp values, and sharing the vectors
    is what makes the compiled DP bit-identical to the Python loop.
    """
    batch = W.shape[0]
    route_par = np.where(
        use_pair, P, b_par[:, :, None] ^ b_par[:, None, :]
    ).astype(np.uint8)
    finite_b = np.isfinite(b_dist)
    # The serial DPs reduce the finite entries with differently-grouped
    # sums; the value only needs to exceed every achievable matching
    # cost (it is selected solely for stranded defects, where every
    # alternative is +inf), so the vectorised reduction's last-ulp
    # differences cannot change predictions.
    dangle = (
        1.0
        + np.where(np.isfinite(W), W, 0.0).sum(axis=(1, 2))
        + np.where(finite_b, b_dist, 0.0).sum(axis=1)
    )
    cost_flat = np.concatenate(
        [
            W.reshape(batch, -1),
            np.where(finite_b, b_dist, np.inf),
            dangle[:, None],
        ],
        axis=1,
    )
    par_flat = np.concatenate(
        [
            route_par.reshape(batch, -1),
            b_par.astype(np.uint8),
            np.zeros((batch, 1), dtype=np.uint8),
        ],
        axis=1,
    )
    return cost_flat, par_flat


def _dp_match_batch(k, W, use_pair, P, b_dist, b_par) -> np.ndarray:
    """Stacked subset DP over ``(batch, k, k)`` component arrays.

    Identical recurrence, transition tables and tie-breaking as the
    per-component DPs in :mod:`repro.decode.mwpm`; the only new axis is
    the leading batch dimension.  The flat transition vectors are
    always prepared by :func:`_dp_flatten`; the recurrence itself runs
    in ``_cblossom.dp_match_batch`` when the compiled kernel is loaded
    and in the pinned numpy fallback (:func:`_dp_match_batch_py`)
    otherwise — the C loop replicates the level loop's transition
    order and first-minimum ``argmin`` tie-breaking, so both backends
    return bit-identical parities.
    """
    cost_flat, par_flat = _dp_flatten(k, W, use_pair, P, b_dist, b_par)
    kernel = _blossom._KERNEL
    if kernel is not None:
        out = np.empty(len(cost_flat), dtype=np.uint8)
        kernel.dp_match_batch(
            len(cost_flat),
            int(k),
            np.ascontiguousarray(cost_flat, dtype=np.float64),
            np.ascontiguousarray(par_flat, dtype=np.uint8),
            out,
        )
        return out
    return _dp_match_batch_py(k, cost_flat, par_flat)


def _dp_match_batch_py(k, cost_flat, par_flat) -> np.ndarray:
    """The numpy level loop over pre-flattened transition vectors.

    Pinned fallback for the compiled DP (and the reference the
    identity tests compare it against): one gather + ``argmin`` per
    popcount level resolves every same-size component simultaneously.
    """
    batch = len(cost_flat)
    f = np.zeros((batch, 1 << k))
    g = np.zeros((batch, 1 << k), dtype=np.uint8)
    rows = None
    for masks, cost_idx, other_idx in _dp_tables(k):
        costs = cost_flat[:, cost_idx] + f[:, other_idx]
        choice = np.argmin(costs, axis=2)
        if rows is None or rows.shape[1] != len(masks):
            rows = np.arange(len(masks))[None, :]
        f[:, masks] = np.take_along_axis(costs, choice[:, :, None], axis=2)[
            :, :, 0
        ]
        g[:, masks] = np.take_along_axis(
            par_flat, cost_idx[rows, choice], axis=1
        ) ^ np.take_along_axis(g, other_idx[rows, choice], axis=1)
    return g[:, (1 << k) - 1]


def _dp_bucket(decoder, out, syn_ids, det) -> None:
    """Run one same-size DP bucket (chunked) and XOR results into out.

    Sizes up to :data:`_DP_STACK_MAX` run the stacked DP in cache-sized
    chunks; larger ones loop the serial level-batched DP per component
    (identical recurrence — see :data:`_DP_STACK_MAX`).
    """
    k = det.shape[1]
    if k > _DP_STACK_MAX:
        W, use_pair, _, P, b_dist, b_par = _gather(decoder.graph, det)
        results = np.fromiter(
            (
                decoder._dp_match_vec(
                    k, W[i], use_pair[i], P[i], b_dist[i], b_par[i]
                )
                for i in range(len(det))
            ),
            dtype=np.uint8,
            count=len(det),
        )
        np.bitwise_xor.at(out, syn_ids, results)
        return
    chunk = max(1, _DP_CHUNK_ELEMENTS >> k)
    for start in range(0, len(det), chunk):
        sl = slice(start, start + chunk)
        W, use_pair, _, P, b_dist, b_par = _gather(decoder.graph, det[sl])
        np.bitwise_xor.at(
            out,
            syn_ids[sl],
            _dp_match_batch(k, W, use_pair, P, b_dist, b_par),
        )


def decode_blossom_batch(
    decoder: MatchingDecoder, defect_sets: Sequence[tuple[int, ...]]
) -> np.ndarray:
    """Predictions for a list of unique nonempty defect tuples.

    ``decoder`` is a matrix-backed blossom :class:`MatchingDecoder`;
    the result is bit-identical to calling its serial
    ``_decode_defects`` on each tuple.
    """
    dist, par = decoder.graph.ensure_matrices()
    b_col = decoder.graph.boundary_index
    num = len(defect_sets)
    out = np.zeros(num, dtype=np.uint8)
    if num == 0:
        return out
    counts = np.fromiter(
        (len(d) for d in defect_sets), dtype=np.int64, count=num
    )
    flat_det = np.fromiter(
        (d for ds in defect_sets for d in ds),
        dtype=np.int64,
        count=int(counts.sum()),
    )
    offsets = np.zeros(num + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])

    # --- k == 1: lone defect routes to the boundary when reachable.
    ones = np.nonzero(counts == 1)[0]
    if ones.size:
        det = flat_det[offsets[ones]]
        b_dist = dist[det, b_col]
        out[ones] = np.where(np.isfinite(b_dist), par[det, b_col], 0)

    # --- k == 2: pair route, two boundary routes, or stranded.
    twos = np.nonzero(counts == 2)[0]
    if twos.size:
        a = flat_det[offsets[twos]]
        b = flat_det[offsets[twos] + 1]
        D = np.minimum(dist[a, b], dist[b, a])
        b_a, b_b = dist[a, b_col], dist[b, b_col]
        via = b_a + b_b
        W = np.minimum(D, via)
        pair_or_via = np.where(
            D <= via, par[a, b], par[a, b_col] ^ par[b, b_col]
        )
        alone = np.where(np.isfinite(b_a), par[a, b_col], 0) ^ np.where(
            np.isfinite(b_b), par[b, b_col], 0
        )
        out[twos] = np.where(np.isfinite(W), pair_or_via, alone)

    # --- 3 ≤ k ≤ DP_SCALAR_LIMIT: whole-set subset DP, no
    # decomposition — mirroring the serial path's small-k shortcut.
    for k in range(3, DP_SCALAR_LIMIT + 1):
        rows = np.nonzero(counts == k)[0]
        if rows.size:
            det = flat_det[offsets[rows, None] + np.arange(k)[None, :]]
            _dp_bucket(decoder, out, rows, det)

    # --- k > DP_SCALAR_LIMIT: decompose every syndrome's pairable
    # graph in one block-stacked connected_components call, then
    # bucket the components by size class.
    dp_cutoff = decoder._dp_cutoff
    big = np.nonzero(counts > DP_SCALAR_LIMIT)[0]
    if big.size == 0:
        return out
    edge_u: list[np.ndarray] = []
    edge_v: list[np.ndarray] = []
    for k in np.unique(counts[big]):
        rows = np.nonzero(counts == k)[0]
        iu, ju = np.triu_indices(int(k), 1)
        chunk = max(1, _BATCH_ELEMENT_LIMIT // int(k * k))
        for start in range(0, rows.size, chunk):
            sub = rows[start : start + chunk]
            det = flat_det[offsets[sub, None] + np.arange(k)[None, :]]
            pairable = _pairable(decoder.graph, det)
            g, e = np.nonzero(pairable[:, iu, ju])
            base = offsets[sub][g]
            edge_u.append(base + iu[e])
            edge_v.append(base + ju[e])

    from scipy.sparse import coo_matrix
    from scipy.sparse.csgraph import connected_components

    num_nodes = int(offsets[-1])
    us = np.concatenate(edge_u) if edge_u else np.zeros(0, dtype=np.int64)
    vs = np.concatenate(edge_v) if edge_v else np.zeros(0, dtype=np.int64)
    adjacency = coo_matrix(
        (np.ones(len(us), dtype=np.uint8), (us, vs)),
        shape=(num_nodes, num_nodes),
    )
    _, labels = connected_components(adjacency, directed=False)

    # Keep only nodes of the decomposed syndromes, grouped by label.
    big_counts = counts[big]
    big_total = int(big_counts.sum())
    run_starts = np.zeros(len(big), dtype=np.int64)
    np.cumsum(big_counts[:-1], out=run_starts[1:])
    big_nodes = (
        np.arange(big_total) + np.repeat(offsets[big] - run_starts, big_counts)
    )
    node_syn = np.repeat(big, big_counts)
    big_labels = labels[big_nodes]
    order = np.argsort(big_labels, kind="stable")
    sorted_nodes = big_nodes[order]  # ascending node id within a label
    sorted_syn = node_syn[order]
    sorted_labels = big_labels[order]
    comp_starts = np.concatenate(
        [[0], np.nonzero(np.diff(sorted_labels))[0] + 1, [len(sorted_nodes)]]
    )
    comp_sizes = np.diff(comp_starts)

    # Singleton components: boundary route (vectorised).
    single = np.nonzero(comp_sizes == 1)[0]
    if single.size:
        nodes = sorted_nodes[comp_starts[single]]
        det = flat_det[nodes]
        b_dist = dist[det, b_col]
        contrib = np.where(np.isfinite(b_dist), par[det, b_col], 0).astype(
            np.uint8
        )
        np.bitwise_xor.at(out, sorted_syn[comp_starts[single]], contrib)

    # Pair components: the pairable edge is the optimal route.
    pairs = np.nonzero(comp_sizes == 2)[0]
    if pairs.size:
        first = comp_starts[pairs]
        det_a = flat_det[sorted_nodes[first]]
        det_b = flat_det[sorted_nodes[first + 1]]
        np.bitwise_xor.at(
            out, sorted_syn[first], par[det_a, det_b].astype(np.uint8)
        )

    # Mid-size components: stacked subset DP per size class.
    for n in range(3, dp_cutoff + 1):
        comps = np.nonzero(comp_sizes == n)[0]
        if comps.size == 0:
            continue
        member_idx = comp_starts[comps, None] + np.arange(n)[None, :]
        det = flat_det[sorted_nodes[member_idx]]
        _dp_bucket(decoder, out, sorted_syn[comp_starts[comps]], det)

    # Oversize components: stacked setup, then the matching engine —
    # sparse region-growing by default, dense blossom under
    # matcher="dense" (the same dispatch the serial path uses, so both
    # stay bit-identical).  Same-size components share one gather
    # exactly as the DP buckets stack theirs; with the compiled sparse
    # matcher the whole chunk is matched in one C call, so there is no
    # per-component Python left at all.
    over = np.nonzero(comp_sizes > dp_cutoff)[0]
    if over.size == 0:
        return out
    sparse = getattr(decoder, "matcher", None) == "sparse"
    compiled = kernel_backend() == "compiled"
    # The compiled sparse matcher takes a whole same-size chunk per C
    # call (``sparse_match_batch``), amortising the per-call overhead
    # across the group; the pure-Python oracle keeps the per-component
    # loop — with one stacked kNN-seed pass per chunk, since the
    # compiled matcher recomputes its (identical) seeds in C.
    batch_entry = sparse and compiled
    need_seeds = sparse and not compiled
    if batch_entry:
        from repro.decode import sparse_match as sparse_mod
    if need_seeds:
        from repro.decode.sparse_match import knn_candidates_batch
    for size in np.unique(comp_sizes[over]):
        n = int(size)
        comps = over[comp_sizes[over] == size]
        member_idx = comp_starts[comps, None] + np.arange(n)[None, :]
        det_all = flat_det[sorted_nodes[member_idx]]
        syn_all = sorted_syn[comp_starts[comps]]
        chunk = max(1, _BATCH_ELEMENT_LIMIT // (n * n))
        for start in range(0, len(comps), chunk):
            sl = slice(start, start + chunk)
            det = det_all[sl]
            W, use_pair, _, P, b_dist, b_par = _gather(decoder.graph, det)
            if batch_entry:
                parities = sparse_mod.sparse_match_parity_batch(
                    n, W, use_pair, P, b_dist, b_par
                )
                np.bitwise_xor.at(out, syn_all[sl], parities)
                continue
            seeds = knn_candidates_batch(W) if need_seeds else None
            for i in range(det.shape[0]):
                parity = decoder._match_oversize(
                    n, W[i], use_pair[i], P[i], b_dist[i], b_par[i],
                    seeds=seeds[i] if need_seeds else None,
                )
                out[syn_all[sl][i]] ^= np.uint8(parity)
    return out
