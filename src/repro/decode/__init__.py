"""High-throughput decoding (the PyMatching substitute).

Exact blossom matching, nearest-neighbour greedy, and an almost-linear
union-find decoder behind one batched, syndrome-cached front-end, all
reading pairwise path data from precomputed all-pairs matrices.
Matching runs on the package's own primal–dual blossom engine
(:mod:`repro.decode.blossom`); no external graph library is imported
anywhere under ``repro.decode``.  Dense-syndrome batches can shard
their unique syndromes across a forked worker pool
(``MatchingDecoder(..., workers=N)``).
"""

from repro.decode.blossom import min_weight_perfect_matching
from repro.decode.graph import DecodingGraph
from repro.decode.mwpm import MatchingDecoder
from repro.decode.uf import UnionFindDecoder

__all__ = [
    "MatchingDecoder",
    "DecodingGraph",
    "UnionFindDecoder",
    "min_weight_perfect_matching",
]
