"""Minimum-weight perfect matching decoding (the PyMatching substitute)."""

from repro.decode.mwpm import MatchingDecoder
from repro.decode.graph import DecodingGraph

__all__ = ["MatchingDecoder", "DecodingGraph"]
