"""High-throughput decoding (the PyMatching substitute).

Exact blossom matching, nearest-neighbour greedy, and an almost-linear
union-find decoder behind one batch-first front-end
(:class:`repro.decode.base.Decoder`): syndrome canonicalisation (uint8
rows or packed uint64 bitplanes), zero-syndrome fast path, unique-
syndrome deduplication, a syndrome LRU, and forked-pool sharding
(``workers=N``).  Matrix-backed blossom batches additionally run the
vectorised component pipeline (:mod:`repro.decode.batch`): stacked
all-pairs lookups, one ``connected_components`` call over the whole
batch, and size-bucketed stacked subset DPs.  Matching runs on the
package's own primal–dual blossom engine behind the
``MatchingDecoder(matcher=...)`` dispatch — large components grow
match regions on sparse candidate edges
(:mod:`repro.decode.sparse_match`, the default) with the dense
complete-graph path (:mod:`repro.decode.blossom`) kept as the oracle;
no external graph library is imported anywhere under ``repro.decode``.
"""

from repro.decode.base import Decoder
from repro.decode.blossom import min_weight_perfect_matching
from repro.decode.graph import DecodingGraph
from repro.decode.mwpm import MatchingDecoder
from repro.decode.uf import UnionFindDecoder
from repro.decode.window import (
    SlidingWindowDecoder,
    WindowConfig,
    WindowStream,
)

__all__ = [
    "Decoder",
    "MatchingDecoder",
    "DecodingGraph",
    "UnionFindDecoder",
    "min_weight_perfect_matching",
    "SlidingWindowDecoder",
    "WindowConfig",
    "WindowStream",
]
