"""High-throughput decoding (the PyMatching substitute).

Exact blossom matching, nearest-neighbour greedy, and an almost-linear
union-find decoder behind one batched, syndrome-cached front-end, all
reading pairwise path data from precomputed all-pairs matrices.
"""

from repro.decode.mwpm import MatchingDecoder
from repro.decode.graph import DecodingGraph
from repro.decode.uf import UnionFindDecoder

__all__ = ["MatchingDecoder", "DecodingGraph", "UnionFindDecoder"]
