/* _cblossom: compiled blossom_core kernel.
 *
 * A statement-for-statement port of the pure-Python primal-dual blossom
 * engine in repro/decode/blossom.py (`_blossom_core_py`, Galil's
 * formulation of Edmonds' algorithm).  The port preserves the engine's
 * determinism contract exactly:
 *
 *   - identical scan order (free vertices in ascending index order, the
 *     queue popped LIFO, edges enumerated in input order),
 *   - identical tie-breaking (every `<` comparison is strict in the same
 *     places),
 *   - identical IEEE-754 double arithmetic: the slack and delta
 *     expressions associate exactly as the Python source does, and the
 *     build compiles with -ffp-contract=off so no FMA contraction can
 *     change rounding.
 *
 * Mates and duals are therefore bit-identical to the pure engine on
 * every input; tests/test_blossom_kernel.py pins this with a hypothesis
 * property suite.  The module deliberately uses only the Python buffer
 * protocol (no numpy C API), so it builds against any contiguous
 * int64/float64 arrays and needs no numpy headers.
 *
 * Entry point (consumed by repro.decode.blossom.blossom_core, never
 * called directly by user code):
 *
 *   blossom_core(n, edge_i, edge_j, edge_w, jumpstart, mate_out, dual_out)
 *
 * where edge_i/edge_j are contiguous int64 buffers of length m, edge_w
 * a contiguous float64 buffer of length m, mate_out a writable int64
 * buffer of length n (filled with partner vertex ids or -1) and
 * dual_out a writable float64 buffer of length 2n (final vertex and
 * blossom duals).  Requires n >= 1 and m >= 1 (the wrapper handles the
 * empty cases).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <limits.h>
#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

#define EPS 1e-9

/* ------------------------------------------------------------------ */
/* Growable int vector (list-of-int stand-in).                         */

typedef struct {
    int *data;
    int len;
    int cap;
} ivec;

static int
ivec_init(ivec *v, int cap)
{
    if (cap < 4) {
        cap = 4;
    }
    v->data = (int *)malloc((size_t)cap * sizeof(int));
    v->len = 0;
    v->cap = cap;
    return v->data != NULL;
}

static void
ivec_free(ivec *v)
{
    free(v->data);
    v->data = NULL;
    v->len = v->cap = 0;
}

static int
ivec_push(ivec *v, int x)
{
    if (v->len == v->cap) {
        int cap = v->cap * 2;
        int *data = (int *)realloc(v->data, (size_t)cap * sizeof(int));
        if (data == NULL) {
            return 0;
        }
        v->data = data;
        v->cap = cap;
    }
    v->data[v->len++] = x;
    return 1;
}

static ivec *
ivec_new(int cap)
{
    ivec *v = (ivec *)malloc(sizeof(ivec));
    if (v == NULL) {
        return NULL;
    }
    if (!ivec_init(v, cap)) {
        free(v);
        return NULL;
    }
    return v;
}

static void
ivec_del(ivec **slot)
{
    if (*slot != NULL) {
        ivec_free(*slot);
        free(*slot);
        *slot = NULL;
    }
}

/* ------------------------------------------------------------------ */
/* Engine state.                                                       */

typedef struct {
    int n;      /* vertices */
    int m;      /* edges */
    int *edge_i;
    int *edge_j;
    const double *edge_w;
    int *endpoint;      /* [2m] vertex at endpoint p */
    int *nb_off;        /* [n+1] CSR offsets into nb */
    int *nb;            /* [2m] remote endpoints per vertex, input order */
    double *dualvar;    /* [2n] */
    int *mate;          /* [n] endpoint codes, -1 = free */
    int *label;         /* [2n] */
    int *labelend;      /* [2n] */
    int *inblossom;     /* [n] */
    int *blossomparent; /* [2n] */
    int *blossombase;   /* [2n] */
    int *bestedge;      /* [2n] */
    char *allowedge;    /* [m] */
    ivec **blossomchilds;     /* [2n], NULL or list */
    ivec **blossomendps;      /* [2n], NULL or list */
    ivec **blossombestedges;  /* [2n], NULL or list */
    ivec unused;        /* free blossom ids, popped LIFO */
    ivec queue;         /* S-vertex scan stack, popped LIFO */
    int *leafbuf_a;     /* [n] scratch: assign_label leaves */
    int *leafbuf_b;     /* [n] scratch: add/expand blossom leaves */
    int *scanpath;      /* [2n] scratch: scan_blossom visited list */
    int *bestedgeto;    /* [2n] scratch: add_blossom best-edge merge */
    int *pathbuf;       /* [2n+1] scratch: add_blossom child path */
    int *endpsbuf;      /* [2n+1] scratch: add_blossom endpoints */
    int *rotbuf;        /* [2n] scratch: augment_blossom rotation */
    int oom;            /* allocation failure flag */
} state;

static double
slack_of(const state *st, int k)
{
    return st->dualvar[st->edge_i[k]] + st->dualvar[st->edge_j[k]]
        - 2.0 * st->edge_w[k];
}

/* Python negative list indexing: idx in [-len, len). */
static int
wrapi(int idx, int len)
{
    return idx < 0 ? idx + len : idx;
}

/* DFS leaf collection, preserving the generator's yield order. */
static int
leaves_fill(const state *st, int b, int *out)
{
    if (b < st->n) {
        out[0] = b;
        return 1;
    }
    int cnt = 0;
    const ivec *ch = st->blossomchilds[b];
    for (int t = 0; t < ch->len; t++) {
        int c = ch->data[t];
        if (c < st->n) {
            out[cnt++] = c;
        }
        else {
            cnt += leaves_fill(st, c, out + cnt);
        }
    }
    return cnt;
}

static void
assign_label(state *st, int w, int t, int p)
{
    int b = st->inblossom[w];
    st->label[w] = t;
    st->label[b] = t;
    st->labelend[w] = p;
    st->labelend[b] = p;
    st->bestedge[w] = -1;
    st->bestedge[b] = -1;
    if (t == 1) {
        if (b < st->n) {
            if (!ivec_push(&st->queue, b)) {
                st->oom = 1;
            }
        }
        else {
            int cnt = leaves_fill(st, b, st->leafbuf_a);
            for (int i = 0; i < cnt; i++) {
                if (!ivec_push(&st->queue, st->leafbuf_a[i])) {
                    st->oom = 1;
                    return;
                }
            }
        }
    }
    else {
        int base = st->blossombase[b];
        assign_label(st, st->endpoint[st->mate[base]], 1, st->mate[base] ^ 1);
    }
}

static int
scan_blossom(state *st, int v, int w)
{
    int pathlen = 0;
    int base = -1;
    while (v != -1 || w != -1) {
        int b = st->inblossom[v];
        if (st->label[b] & 4) {
            base = st->blossombase[b];
            break;
        }
        st->scanpath[pathlen++] = b;
        st->label[b] = 5;
        if (st->labelend[b] == -1) {
            v = -1;
        }
        else {
            v = st->endpoint[st->labelend[b]];
            b = st->inblossom[v];
            v = st->endpoint[st->labelend[b]];
        }
        if (w != -1) {
            int tmp = v;
            v = w;
            w = tmp;
        }
    }
    for (int i = 0; i < pathlen; i++) {
        st->label[st->scanpath[i]] = 1;
    }
    return base;
}

static void
add_blossom(state *st, int base, int k)
{
    int n = st->n;
    int v = st->edge_i[k];
    int w = st->edge_j[k];
    int bb = st->inblossom[base];
    int bv = st->inblossom[v];
    int bw = st->inblossom[w];
    int b = st->unused.data[--st->unused.len];
    st->blossombase[b] = base;
    st->blossomparent[b] = -1;
    st->blossomparent[bb] = b;
    int plen = 0;
    int elen = 0;
    while (bv != bb) { /* trace from v down to the base */
        st->blossomparent[bv] = b;
        st->pathbuf[plen++] = bv;
        st->endpsbuf[elen++] = st->labelend[bv];
        v = st->endpoint[st->labelend[bv]];
        bv = st->inblossom[v];
    }
    st->pathbuf[plen++] = bb;
    /* path.reverse(); endps.reverse(); endps.append(2k) */
    for (int i = 0, j = plen - 1; i < j; i++, j--) {
        int tmp = st->pathbuf[i];
        st->pathbuf[i] = st->pathbuf[j];
        st->pathbuf[j] = tmp;
    }
    for (int i = 0, j = elen - 1; i < j; i++, j--) {
        int tmp = st->endpsbuf[i];
        st->endpsbuf[i] = st->endpsbuf[j];
        st->endpsbuf[j] = tmp;
    }
    st->endpsbuf[elen++] = 2 * k;
    while (bw != bb) { /* trace from w down to the base */
        st->blossomparent[bw] = b;
        st->pathbuf[plen++] = bw;
        st->endpsbuf[elen++] = st->labelend[bw] ^ 1;
        w = st->endpoint[st->labelend[bw]];
        bw = st->inblossom[w];
    }
    ivec *childs = ivec_new(plen);
    ivec *endps = ivec_new(elen);
    if (childs == NULL || endps == NULL) {
        st->oom = 1;
        ivec_del(&childs);
        ivec_del(&endps);
        return;
    }
    memcpy(childs->data, st->pathbuf, (size_t)plen * sizeof(int));
    childs->len = plen;
    memcpy(endps->data, st->endpsbuf, (size_t)elen * sizeof(int));
    endps->len = elen;
    st->blossomchilds[b] = childs;
    st->blossomendps[b] = endps;
    st->label[b] = 1;
    st->labelend[b] = st->labelend[bb];
    st->dualvar[b] = 0.0;
    int cnt = leaves_fill(st, b, st->leafbuf_b);
    for (int i = 0; i < cnt; i++) {
        int leaf = st->leafbuf_b[i];
        if (st->label[st->inblossom[leaf]] == 2) {
            /* Former T-vertices become S and must be scanned. */
            if (!ivec_push(&st->queue, leaf)) {
                st->oom = 1;
                return;
            }
        }
        st->inblossom[leaf] = b;
    }
    /* Merge the children's best-edge lists into the new blossom's. */
    for (int i = 0; i < 2 * n; i++) {
        st->bestedgeto[i] = -1;
    }
    for (int ci = 0; ci < childs->len; ci++) {
        int bv2 = childs->data[ci];
        ivec *stored = st->blossombestedges[bv2];
        if (stored == NULL) {
            int lcnt = leaves_fill(st, bv2, st->leafbuf_b);
            for (int li = 0; li < lcnt; li++) {
                int leaf = st->leafbuf_b[li];
                for (int pi = st->nb_off[leaf]; pi < st->nb_off[leaf + 1];
                     pi++) {
                    int k2 = st->nb[pi] >> 1;
                    int i2 = st->edge_i[k2];
                    int j2 = st->edge_j[k2];
                    if (st->inblossom[j2] == b) {
                        int tmp = i2;
                        i2 = j2;
                        j2 = tmp;
                    }
                    int bj = st->inblossom[j2];
                    if (bj != b && st->label[bj] == 1
                        && (st->bestedgeto[bj] == -1
                            || slack_of(st, k2)
                                < slack_of(st, st->bestedgeto[bj]))) {
                        st->bestedgeto[bj] = k2;
                    }
                }
            }
        }
        else {
            for (int si = 0; si < stored->len; si++) {
                int k2 = stored->data[si];
                int i2 = st->edge_i[k2];
                int j2 = st->edge_j[k2];
                if (st->inblossom[j2] == b) {
                    int tmp = i2;
                    i2 = j2;
                    j2 = tmp;
                }
                int bj = st->inblossom[j2];
                if (bj != b && st->label[bj] == 1
                    && (st->bestedgeto[bj] == -1
                        || slack_of(st, k2)
                            < slack_of(st, st->bestedgeto[bj]))) {
                    st->bestedgeto[bj] = k2;
                }
            }
        }
        ivec_del(&st->blossombestedges[bv2]);
        st->bestedge[bv2] = -1;
    }
    ivec *best = ivec_new(8);
    if (best == NULL) {
        st->oom = 1;
        return;
    }
    for (int i = 0; i < 2 * n; i++) {
        if (st->bestedgeto[i] != -1) {
            if (!ivec_push(best, st->bestedgeto[i])) {
                st->oom = 1;
                ivec_del(&best);
                return;
            }
        }
    }
    st->blossombestedges[b] = best;
    st->bestedge[b] = -1;
    for (int i = 0; i < best->len; i++) {
        int k2 = best->data[i];
        if (st->bestedge[b] == -1
            || slack_of(st, k2) < slack_of(st, st->bestedge[b])) {
            st->bestedge[b] = k2;
        }
    }
}

static void
expand_blossom(state *st, int b, int endstage)
{
    int n = st->n;
    ivec *childs = st->blossomchilds[b];
    for (int ci = 0; ci < childs->len; ci++) {
        int s = childs->data[ci];
        st->blossomparent[s] = -1;
        if (s < n) {
            st->inblossom[s] = s;
        }
        else if (endstage && st->dualvar[s] < EPS) {
            expand_blossom(st, s, endstage);
        }
        else {
            int cnt = leaves_fill(st, s, st->leafbuf_b);
            for (int i = 0; i < cnt; i++) {
                st->inblossom[st->leafbuf_b[i]] = s;
            }
        }
    }
    if (!endstage && st->label[b] == 2) {
        /* The expanding blossom sits on an alternating path; relabel
         * the children between its entry child and its base. */
        int entrychild =
            st->inblossom[st->endpoint[st->labelend[b] ^ 1]];
        childs = st->blossomchilds[b];
        ivec *endps = st->blossomendps[b];
        int len = childs->len;
        int j = 0;
        while (childs->data[j] != entrychild) {
            j++;
        }
        int jstep, endptrick;
        if (j & 1) { /* entry at odd index: walk forward with wrap */
            j -= len;
            jstep = 1;
            endptrick = 0;
        }
        else { /* entry at even index: walk backward */
            jstep = -1;
            endptrick = 1;
        }
        int p = st->labelend[b];
        while (j != 0) {
            /* Relabel the T-sub-blossom we step through. */
            st->label[st->endpoint[p ^ 1]] = 0;
            int ep = endps->data[wrapi(j - endptrick, len)];
            st->label[st->endpoint[ep ^ endptrick ^ 1]] = 0;
            assign_label(st, st->endpoint[p ^ 1], 2, p);
            if (st->oom) {
                return;
            }
            st->allowedge[ep >> 1] = 1;
            j += jstep;
            p = endps->data[wrapi(j - endptrick, len)] ^ endptrick;
            st->allowedge[p >> 1] = 1;
            j += jstep;
        }
        /* The base child keeps label T without recursing to its mate. */
        int bv = childs->data[wrapi(j, len)];
        st->label[st->endpoint[p ^ 1]] = 2;
        st->label[bv] = 2;
        st->labelend[st->endpoint[p ^ 1]] = p;
        st->labelend[bv] = p;
        st->bestedge[bv] = -1;
        /* Children outside the entry->base path become free, unless
         * some vertex inside already carries a label. */
        j += jstep;
        while (childs->data[wrapi(j, len)] != entrychild) {
            bv = childs->data[wrapi(j, len)];
            if (st->label[bv] == 1) {
                j += jstep;
                continue;
            }
            int cnt = leaves_fill(st, bv, st->leafbuf_b);
            int leaf = -1;
            for (int i = 0; i < cnt; i++) {
                leaf = st->leafbuf_b[i];
                if (st->label[leaf] != 0) {
                    break;
                }
            }
            /* `leaf` is the first labeled leaf, or the last leaf when
             * none is labeled — the Python loop-variable semantics. */
            if (st->label[leaf] != 0) {
                st->label[leaf] = 0;
                st->label[st->endpoint[st->mate[st->blossombase[bv]]]] = 0;
                assign_label(st, leaf, 2, st->labelend[leaf]);
                if (st->oom) {
                    return;
                }
            }
            j += jstep;
        }
    }
    st->label[b] = -1;
    st->labelend[b] = -1;
    ivec_del(&st->blossomchilds[b]);
    ivec_del(&st->blossomendps[b]);
    st->blossombase[b] = -1;
    ivec_del(&st->blossombestedges[b]);
    st->bestedge[b] = -1;
    if (!ivec_push(&st->unused, b)) {
        st->oom = 1;
    }
}

static void
augment_blossom(state *st, int b, int v)
{
    int n = st->n;
    int t = v;
    while (st->blossomparent[t] != b) {
        t = st->blossomparent[t];
    }
    if (t >= n) {
        augment_blossom(st, t, v);
    }
    ivec *childs = st->blossomchilds[b];
    ivec *endps = st->blossomendps[b];
    int len = childs->len;
    int i = 0;
    while (childs->data[i] != t) {
        i++;
    }
    int j = i;
    int jstep, endptrick;
    if (i & 1) {
        j -= len;
        jstep = 1;
        endptrick = 0;
    }
    else {
        jstep = -1;
        endptrick = 1;
    }
    while (j != 0) {
        j += jstep;
        t = childs->data[wrapi(j, len)];
        int p = endps->data[wrapi(j - endptrick, len)] ^ endptrick;
        if (t >= n) {
            augment_blossom(st, t, st->endpoint[p]);
        }
        j += jstep;
        t = childs->data[wrapi(j, len)];
        if (t >= n) {
            augment_blossom(st, t, st->endpoint[p ^ 1]);
        }
        st->mate[st->endpoint[p]] = p ^ 1;
        st->mate[st->endpoint[p ^ 1]] = p;
    }
    /* childs = childs[i:] + childs[:i]; same for endps. */
    if (i > 0) {
        memcpy(st->rotbuf, childs->data, (size_t)len * sizeof(int));
        for (int x = 0; x < len; x++) {
            childs->data[x] = st->rotbuf[(x + i) % len];
        }
        memcpy(st->rotbuf, endps->data, (size_t)len * sizeof(int));
        for (int x = 0; x < len; x++) {
            endps->data[x] = st->rotbuf[(x + i) % len];
        }
    }
    st->blossombase[b] = st->blossombase[childs->data[0]];
}

static void
augment_matching(state *st, int k)
{
    int n = st->n;
    for (int side = 0; side < 2; side++) {
        int s = side == 0 ? st->edge_i[k] : st->edge_j[k];
        int p = side == 0 ? 2 * k + 1 : 2 * k;
        for (;;) {
            int bs = st->inblossom[s];
            if (bs >= n) {
                augment_blossom(st, bs, s);
            }
            st->mate[s] = p;
            if (st->labelend[bs] == -1) {
                break; /* reached a forest root */
            }
            int t = st->endpoint[st->labelend[bs]];
            int bt = st->inblossom[t];
            s = st->endpoint[st->labelend[bt]];
            int j = st->endpoint[st->labelend[bt] ^ 1];
            if (bt >= n) {
                augment_blossom(st, bt, j);
            }
            st->mate[j] = st->labelend[bt];
            p = st->labelend[bt] ^ 1;
        }
    }
}

/* ------------------------------------------------------------------ */
/* Driver.                                                             */

static int
run_core(state *st, int jumpstart, double max_weight, int64_t *mate_out,
         double *dual_out)
{
    int n = st->n;
    int m = st->m;

    if (jumpstart) {
        /* Greedy matching on initially-tight edges (w == max weight). */
        double tight = max_weight - EPS;
        for (int k = 0; k < m; k++) {
            if (st->edge_w[k] >= tight) {
                int i = st->edge_i[k];
                int j = st->edge_j[k];
                if (st->mate[i] == -1 && st->mate[j] == -1 && i != j) {
                    st->mate[i] = 2 * k + 1;
                    st->mate[j] = 2 * k;
                }
            }
        }
    }

    for (int stage = 0; stage < n; stage++) {
        memset(st->label, 0, (size_t)(2 * n) * sizeof(int));
        for (int i = 0; i < 2 * n; i++) {
            st->bestedge[i] = -1;
        }
        for (int b = n; b < 2 * n; b++) {
            ivec_del(&st->blossombestedges[b]);
        }
        memset(st->allowedge, 0, (size_t)m);
        st->queue.len = 0;
        for (int v = 0; v < n; v++) {
            if (st->mate[v] == -1 && st->label[st->inblossom[v]] == 0) {
                assign_label(st, v, 1, -1);
                if (st->oom) {
                    return 0;
                }
            }
        }
        int augmented = 0;
        for (;;) {
            while (st->queue.len > 0 && !augmented) {
                int v = st->queue.data[--st->queue.len];
                for (int pi = st->nb_off[v]; pi < st->nb_off[v + 1]; pi++) {
                    int p = st->nb[pi];
                    int k = p >> 1;
                    int w = st->endpoint[p];
                    if (st->inblossom[v] == st->inblossom[w]) {
                        continue; /* internal blossom edge */
                    }
                    double kslack = 0.0;
                    if (!st->allowedge[k]) {
                        kslack = st->dualvar[st->edge_i[k]]
                            + st->dualvar[st->edge_j[k]]
                            - 2.0 * st->edge_w[k];
                        if (kslack <= EPS) {
                            st->allowedge[k] = 1;
                        }
                    }
                    if (st->allowedge[k]) {
                        int bw = st->inblossom[w];
                        if (st->label[bw] == 0) {
                            assign_label(st, w, 2, p ^ 1);
                            if (st->oom) {
                                return 0;
                            }
                        }
                        else if (st->label[bw] == 1) {
                            int base = scan_blossom(st, v, w);
                            if (base >= 0) {
                                add_blossom(st, base, k);
                                if (st->oom) {
                                    return 0;
                                }
                            }
                            else {
                                augment_matching(st, k);
                                augmented = 1;
                                break;
                            }
                        }
                        else if (st->label[w] == 0) {
                            st->label[w] = 2;
                            st->labelend[w] = p ^ 1;
                        }
                    }
                    else if (st->label[st->inblossom[w]] == 1) {
                        int b = st->inblossom[v];
                        int kb = st->bestedge[b];
                        if (kb == -1 || kslack < slack_of(st, kb)) {
                            st->bestedge[b] = k;
                        }
                    }
                    else if (st->label[w] == 0) {
                        int kb = st->bestedge[w];
                        if (kb == -1 || kslack < slack_of(st, kb)) {
                            st->bestedge[w] = k;
                        }
                    }
                }
            }
            if (augmented) {
                break;
            }
            /* No tight edge to use: compute the dual adjustment. */
            int deltatype = -1;
            double delta = 0.0;
            int deltaedge = -1;
            int deltablossom = -1;
            for (int v = 0; v < n; v++) {
                int kb = st->bestedge[v];
                if (st->label[st->inblossom[v]] == 0 && kb != -1) {
                    double d = slack_of(st, kb);
                    if (deltatype == -1 || d < delta) {
                        delta = d;
                        deltatype = 2;
                        deltaedge = kb;
                    }
                }
            }
            for (int b = 0; b < 2 * n; b++) {
                int kb = st->bestedge[b];
                if (st->blossomparent[b] == -1 && st->label[b] == 1
                    && kb != -1) {
                    double d = slack_of(st, kb) / 2.0;
                    if (deltatype == -1 || d < delta) {
                        delta = d;
                        deltatype = 3;
                        deltaedge = kb;
                    }
                }
            }
            for (int b = n; b < 2 * n; b++) {
                if (st->blossombase[b] >= 0 && st->blossomparent[b] == -1
                    && st->label[b] == 2
                    && (deltatype == -1 || st->dualvar[b] < delta)) {
                    delta = st->dualvar[b];
                    deltatype = 4;
                    deltablossom = b;
                }
            }
            if (deltatype == -1) {
                /* Forest saturated: maximum cardinality reached. */
                deltatype = 1;
                double mn = st->dualvar[0];
                for (int v = 1; v < n; v++) {
                    if (st->dualvar[v] < mn) {
                        mn = st->dualvar[v];
                    }
                }
                delta = mn < 0.0 ? 0.0 : mn; /* max(0.0, min(...)) */
            }
            for (int v = 0; v < n; v++) {
                int lb = st->label[st->inblossom[v]];
                if (lb == 1) {
                    st->dualvar[v] -= delta;
                }
                else if (lb == 2) {
                    st->dualvar[v] += delta;
                }
            }
            for (int b = n; b < 2 * n; b++) {
                if (st->blossombase[b] >= 0 && st->blossomparent[b] == -1) {
                    if (st->label[b] == 1) {
                        st->dualvar[b] += delta;
                    }
                    else if (st->label[b] == 2) {
                        st->dualvar[b] -= delta;
                    }
                }
            }
            if (deltatype == 1) {
                break;
            }
            if (deltatype == 2) {
                st->allowedge[deltaedge] = 1;
                int i2 = st->edge_i[deltaedge];
                if (st->label[st->inblossom[i2]] == 0) {
                    i2 = st->edge_j[deltaedge];
                }
                if (!ivec_push(&st->queue, i2)) {
                    return 0;
                }
            }
            else if (deltatype == 3) {
                st->allowedge[deltaedge] = 1;
                if (!ivec_push(&st->queue, st->edge_i[deltaedge])) {
                    return 0;
                }
            }
            else {
                expand_blossom(st, deltablossom, 0);
                if (st->oom) {
                    return 0;
                }
            }
        }
        if (!augmented) {
            break;
        }
        for (int b = n; b < 2 * n; b++) {
            if (st->blossomparent[b] == -1 && st->blossombase[b] >= 0
                && st->label[b] == 1 && st->dualvar[b] < EPS) {
                expand_blossom(st, b, 1);
                if (st->oom) {
                    return 0;
                }
            }
        }
    }

    for (int v = 0; v < n; v++) {
        mate_out[v] = st->mate[v] >= 0 ? st->endpoint[st->mate[v]] : -1;
    }
    memcpy(dual_out, st->dualvar, (size_t)(2 * n) * sizeof(double));
    return 1;
}

/* ------------------------------------------------------------------ */
/* Allocation / teardown.                                              */

static void
state_free(state *st)
{
    free(st->edge_i);
    free(st->edge_j);
    free(st->endpoint);
    free(st->nb_off);
    free(st->nb);
    free(st->dualvar);
    free(st->mate);
    free(st->label);
    free(st->labelend);
    free(st->inblossom);
    free(st->blossomparent);
    free(st->blossombase);
    free(st->bestedge);
    free(st->allowedge);
    free(st->leafbuf_a);
    free(st->leafbuf_b);
    free(st->scanpath);
    free(st->bestedgeto);
    free(st->pathbuf);
    free(st->endpsbuf);
    free(st->rotbuf);
    if (st->blossomchilds != NULL) {
        for (int i = 0; i < 2 * st->n; i++) {
            ivec_del(&st->blossomchilds[i]);
        }
        free(st->blossomchilds);
    }
    if (st->blossomendps != NULL) {
        for (int i = 0; i < 2 * st->n; i++) {
            ivec_del(&st->blossomendps[i]);
        }
        free(st->blossomendps);
    }
    if (st->blossombestedges != NULL) {
        for (int i = 0; i < 2 * st->n; i++) {
            ivec_del(&st->blossombestedges[i]);
        }
        free(st->blossombestedges);
    }
    ivec_free(&st->unused);
    ivec_free(&st->queue);
}

static int
state_init(state *st, int n, int m, const int64_t *ei64, const int64_t *ej64,
           const double *ew)
{
    memset(st, 0, sizeof(*st));
    st->n = n;
    st->m = m;
    st->edge_w = ew;
    st->edge_i = (int *)malloc((size_t)m * sizeof(int));
    st->edge_j = (int *)malloc((size_t)m * sizeof(int));
    st->endpoint = (int *)malloc((size_t)(2 * m) * sizeof(int));
    st->nb_off = (int *)calloc((size_t)n + 2, sizeof(int));
    st->nb = (int *)malloc((size_t)(2 * m) * sizeof(int));
    st->dualvar = (double *)malloc((size_t)(2 * n) * sizeof(double));
    st->mate = (int *)malloc((size_t)n * sizeof(int));
    st->label = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->labelend = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->inblossom = (int *)malloc((size_t)n * sizeof(int));
    st->blossomparent = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->blossombase = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->bestedge = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->allowedge = (char *)malloc((size_t)m);
    st->leafbuf_a = (int *)malloc((size_t)n * sizeof(int));
    st->leafbuf_b = (int *)malloc((size_t)n * sizeof(int));
    st->scanpath = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->bestedgeto = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->pathbuf = (int *)malloc((size_t)(2 * n + 1) * sizeof(int));
    st->endpsbuf = (int *)malloc((size_t)(2 * n + 1) * sizeof(int));
    st->rotbuf = (int *)malloc((size_t)(2 * n) * sizeof(int));
    st->blossomchilds = (ivec **)calloc((size_t)(2 * n), sizeof(ivec *));
    st->blossomendps = (ivec **)calloc((size_t)(2 * n), sizeof(ivec *));
    st->blossombestedges = (ivec **)calloc((size_t)(2 * n), sizeof(ivec *));
    if (st->edge_i == NULL || st->edge_j == NULL || st->endpoint == NULL
        || st->nb_off == NULL || st->nb == NULL || st->dualvar == NULL
        || st->mate == NULL || st->label == NULL || st->labelend == NULL
        || st->inblossom == NULL || st->blossomparent == NULL
        || st->blossombase == NULL || st->bestedge == NULL
        || st->allowedge == NULL || st->leafbuf_a == NULL
        || st->leafbuf_b == NULL || st->scanpath == NULL
        || st->bestedgeto == NULL || st->pathbuf == NULL
        || st->endpsbuf == NULL || st->rotbuf == NULL
        || st->blossomchilds == NULL || st->blossomendps == NULL
        || st->blossombestedges == NULL || !ivec_init(&st->unused, n)
        || !ivec_init(&st->queue, n)) {
        return 0;
    }
    for (int k = 0; k < m; k++) {
        st->edge_i[k] = (int)ei64[k];
        st->edge_j[k] = (int)ej64[k];
        st->endpoint[2 * k] = st->edge_i[k];
        st->endpoint[2 * k + 1] = st->edge_j[k];
    }
    /* neighbend as CSR, preserving the per-vertex input order the
     * Python append loop produces. */
    for (int k = 0; k < m; k++) {
        st->nb_off[st->edge_i[k] + 1]++;
        st->nb_off[st->edge_j[k] + 1]++;
    }
    for (int v = 0; v < n; v++) {
        st->nb_off[v + 1] += st->nb_off[v];
    }
    {
        int *cursor = (int *)malloc((size_t)n * sizeof(int));
        if (cursor == NULL) {
            return 0;
        }
        memcpy(cursor, st->nb_off, (size_t)n * sizeof(int));
        for (int k = 0; k < m; k++) {
            st->nb[cursor[st->edge_i[k]]++] = 2 * k + 1;
            st->nb[cursor[st->edge_j[k]]++] = 2 * k;
        }
        free(cursor);
    }
    for (int v = 0; v < n; v++) {
        st->mate[v] = -1;
        st->inblossom[v] = v;
    }
    for (int i = 0; i < 2 * n; i++) {
        st->label[i] = 0;
        st->labelend[i] = -1;
        st->blossomparent[i] = -1;
        st->bestedge[i] = -1;
        st->blossombase[i] = i < n ? i : -1;
    }
    for (int b = n; b < 2 * n; b++) {
        ivec_push(&st->unused, b); /* capacity n preallocated */
    }
    return 1;
}

/* ------------------------------------------------------------------ */
/* Shared solve helper: init state, seed duals, run the stage loop.    */

static int
solve_graph(int n, int m, const int64_t *ei, const int64_t *ej,
            const double *ew, int jumpstart, int64_t *mate_out,
            double *dual_out)
{
    double max_weight = ew[0];
    for (int k = 1; k < m; k++) {
        if (ew[k] > max_weight) {
            max_weight = ew[k];
        }
    }
    state st;
    int ok = 0;
    if (state_init(&st, n, m, ei, ej, ew)) {
        for (int v = 0; v < n; v++) {
            st.dualvar[v] = max_weight;
        }
        for (int b = n; b < 2 * n; b++) {
            st.dualvar[b] = 0.0;
        }
        ok = run_core(&st, jumpstart, max_weight, mate_out, dual_out);
    }
    state_free(&st);
    return ok;
}

/* ------------------------------------------------------------------ */
/* Sparse component matcher.                                           */
/*                                                                     */
/* A statement-for-statement port of sparse_match + sparse_match_parity
 * in repro/decode/sparse_match.py: kNN candidate seeding (the c
 * smallest (weight, index) partners per defect, the stable-argsort
 * order the Python seeder uses), a jumpstarted blossom solve over the
 * candidate edges plus the boundary star, and the dual-certificate
 * repair loop that re-adds any withheld pair with negative transformed
 * slack (or the whole star of an uncovered defect) until the solve is
 * provably optimal on the complete component.  All float expressions
 * associate exactly as the numpy source does, so the matching — and
 * the resulting observable parity — is bit-identical to the pure
 * path.                                                               */

#define SPARSE_KNN_SEEDS 3

typedef struct {
    char *finite;      /* [k*k] off-diagonal finite W mask            */
    char *finite_b;    /* [k] finite boundary-distance mask           */
    char *present;     /* [k*k] candidate pairs fed to the engine     */
    int64_t *ei;       /* [max_edges] engine edge endpoints           */
    int64_t *ej;
    double *ew;        /* [max_edges] engine edge weights             */
    int64_t *mate;     /* [n] engine mates                            */
    double *dual;      /* [2n] engine duals                           */
} sparse_ws;

static void
sparse_ws_free(sparse_ws *ws)
{
    free(ws->finite);
    free(ws->finite_b);
    free(ws->present);
    free(ws->ei);
    free(ws->ej);
    free(ws->ew);
    free(ws->mate);
    free(ws->dual);
}

static int
sparse_ws_init(sparse_ws *ws, int k, int n, int max_edges)
{
    memset(ws, 0, sizeof(*ws));
    ws->finite = (char *)malloc((size_t)k * (size_t)k);
    ws->finite_b = (char *)malloc((size_t)k);
    ws->present = (char *)calloc((size_t)k * (size_t)k, 1);
    ws->ei = (int64_t *)malloc((size_t)max_edges * sizeof(int64_t));
    ws->ej = (int64_t *)malloc((size_t)max_edges * sizeof(int64_t));
    ws->ew = (double *)malloc((size_t)max_edges * sizeof(double));
    ws->mate = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    ws->dual = (double *)malloc((size_t)(2 * n) * sizeof(double));
    return ws->finite != NULL && ws->finite_b != NULL
        && ws->present != NULL && ws->ei != NULL && ws->ej != NULL
        && ws->ew != NULL && ws->mate != NULL && ws->dual != NULL;
}

/* Mark each row's c nearest partners (diagonal masked to +inf, ties
 * broken toward the lower index — the lexicographic (weight, index)
 * order np.argsort(kind="stable") yields) as present candidate pairs,
 * skipping infinite entries exactly as knn_candidates does. */
static void
sparse_seed_knn(int k, const double *W, char *present)
{
    int c = SPARSE_KNN_SEEDS < k - 1 ? SPARSE_KNN_SEEDS : k - 1;
    double best_w[SPARSE_KNN_SEEDS];
    int best_j[SPARSE_KNN_SEEDS];
    for (int i = 0; i < k; i++) {
        int cnt = 0;
        for (int j = 0; j < k; j++) {
            double w = j == i ? INFINITY : W[(size_t)i * k + j];
            /* j ascends, so on ties the earlier index stays ahead:
             * insert strictly before the first entry with a larger
             * weight. */
            if (cnt < c) {
                int pos = cnt;
                while (pos > 0 && w < best_w[pos - 1]) {
                    best_w[pos] = best_w[pos - 1];
                    best_j[pos] = best_j[pos - 1];
                    pos--;
                }
                best_w[pos] = w;
                best_j[pos] = j;
                cnt++;
            }
            else if (w < best_w[cnt - 1]) {
                int pos = cnt - 1;
                while (pos > 0 && w < best_w[pos - 1]) {
                    best_w[pos] = best_w[pos - 1];
                    best_j[pos] = best_j[pos - 1];
                    pos--;
                }
                best_w[pos] = w;
                best_j[pos] = j;
            }
        }
        for (int s = 0; s < cnt; s++) {
            int j = best_j[s];
            int a = i < j ? i : j;
            int b = i < j ? j : i;
            if (isfinite(W[(size_t)a * k + b])) {
                present[(size_t)a * k + b] = 1;
                present[(size_t)b * k + a] = 1;
            }
        }
    }
}

/* Engine edge list from the present mask: upper-triangle pairs in
 * lexicographic order (np.nonzero(np.triu(present, 1))), then the
 * boundary star in ascending defect order. */
static int
sparse_build_edges(int k, int use_virtual, const double *W,
                   const double *b_dist, const char *finite_b, double big,
                   const char *present, int64_t *ei, int64_t *ej,
                   double *ew)
{
    int m = 0;
    for (int a = 0; a < k; a++) {
        for (int b = a + 1; b < k; b++) {
            if (present[(size_t)a * k + b]) {
                ei[m] = a;
                ej[m] = b;
                ew[m] = big - W[(size_t)a * k + b];
                m++;
            }
        }
    }
    if (use_virtual) {
        for (int i = 0; i < k; i++) {
            if (finite_b[i]) {
                ei[m] = i;
                ej[m] = k;
                ew[m] = big - b_dist[i];
                m++;
            }
        }
    }
    return m;
}

/* Returns 0 on allocation failure (parity_out untouched), 1 on
 * success. */
static int
sparse_component_parity(int k, const double *W,
                        const unsigned char *use_pair,
                        const unsigned char *P, const double *b_dist,
                        const unsigned char *b_par, int *parity_out)
{
    if (k < 2) {
        *parity_out =
            (k == 1 && isfinite(b_dist[0])) ? (int)(b_par[0] & 1) : 0;
        return 1;
    }
    int use_virtual = 0;
    int any_fb = 0;
    for (int i = 0; i < k; i++) {
        if (isfinite(b_dist[i])) {
            any_fb = 1;
            break;
        }
    }
    use_virtual = (k % 2) && any_fb;
    int n = k + (use_virtual ? 1 : 0);
    int max_edges = k * (k - 1) / 2 + k;
    sparse_ws ws;
    if (!sparse_ws_init(&ws, k, n, max_edges)) {
        sparse_ws_free(&ws);
        return 0;
    }
    for (int a = 0; a < k; a++) {
        for (int b = 0; b < k; b++) {
            ws.finite[(size_t)a * k + b] =
                a != b && isfinite(W[(size_t)a * k + b]);
        }
    }
    for (int i = 0; i < k; i++) {
        ws.finite_b[i] = isfinite(b_dist[i]);
    }
    /* big = 1.0 + 2.0 * maxw, maxw over finite pair routes and (when
     * the virtual boundary node participates) finite boundary
     * routes. */
    double maxw = 0.0;
    int have = 0;
    for (int a = 0; a < k; a++) {
        for (int b = 0; b < k; b++) {
            if (ws.finite[(size_t)a * k + b]) {
                double w = W[(size_t)a * k + b];
                if (!have || w > maxw) {
                    maxw = w;
                    have = 1;
                }
            }
        }
    }
    if (use_virtual) {
        double bmax = 0.0;
        int haveb = 0;
        for (int i = 0; i < k; i++) {
            if (ws.finite_b[i]) {
                double w = b_dist[i];
                if (!haveb || w > bmax) {
                    bmax = w;
                    haveb = 1;
                }
            }
        }
        if (bmax > maxw) {
            maxw = bmax;
        }
    }
    double big = 1.0 + 2.0 * maxw;
    sparse_seed_knn(k, W, ws.present);
    /* Solve + certificate repair until no withheld pair can improve
     * the matching; each round adds at least one edge, so the loop is
     * bounded by the pair count. */
    for (;;) {
        int m = sparse_build_edges(k, use_virtual, W, b_dist, ws.finite_b,
                                   big, ws.present, ws.ei, ws.ej, ws.ew);
        if (m == 0) {
            for (int v = 0; v < n; v++) {
                ws.mate[v] = -1;
            }
            for (int v = 0; v < 2 * n; v++) {
                ws.dual[v] = 0.0;
            }
        }
        else if (!solve_graph(n, m, ws.ei, ws.ej, ws.ew, 1, ws.mate,
                              ws.dual)) {
            sparse_ws_free(&ws);
            return 0;
        }
        int added = 0;
        for (int a = 0; a < k; a++) {
            for (int b = a + 1; b < k; b++) {
                if (ws.present[(size_t)a * k + b]
                    || !ws.finite[(size_t)a * k + b]) {
                    continue;
                }
                /* Transformed slack of a withheld pair:
                 * u_a + u_b - 2(big - W); negative means the pair
                 * could still improve the matching. */
                double threshold =
                    big - 0.5 * (ws.dual[a] + ws.dual[b]);
                int v = W[(size_t)a * k + b] < threshold - EPS;
                if (!v && (ws.mate[a] < 0 || ws.mate[b] < 0)) {
                    /* A defect the sparse graph could not cover:
                     * offer its whole star so cardinality matches
                     * the dense solve. */
                    v = 1;
                }
                if (v) {
                    ws.present[(size_t)a * k + b] = 1;
                    ws.present[(size_t)b * k + a] = 1;
                    added = 1;
                }
            }
        }
        if (!added) {
            break;
        }
    }
    /* Observable parity, mirroring sparse_match_parity. */
    int parity = 0;
    for (int i = 0; i < k; i++) {
        int64_t j = ws.mate[i];
        if (j == k) { /* the odd defect routed to the boundary */
            parity ^= b_par[i] & 1;
        }
        else if (j < 0) { /* disconnected leftovers route alone */
            if (ws.finite_b[i]) {
                parity ^= b_par[i] & 1;
            }
        }
        else if (i < j) {
            if (use_pair[(size_t)i * k + j]) {
                parity ^= P[(size_t)i * k + j] & 1;
            }
            else {
                parity ^= (b_par[i] ^ b_par[j]) & 1;
            }
        }
    }
    sparse_ws_free(&ws);
    *parity_out = parity;
    return 1;
}

/* ------------------------------------------------------------------ */
/* Stacked subset DP.                                                  */
/*                                                                     */
/* The recurrence of repro/decode/batch.py::_dp_match_batch_py run over
 * one same-size chunk of components: for every defect-subset mask the
 * lowest member either pairs with another member (ascending partner
 * order), routes to the boundary, or dangles, and the first strict
 * minimum wins — exactly the transition order and argmin tie-breaking
 * of the numpy level loop.  The flat cost/parity vectors (including
 * the dangle reduction, whose float summation order must match the
 * interpreter) are prepared by the Python caller, so every f value is
 * the same chain of binary adds on both backends and the parities are
 * bit-identical.                                                      */

static int
dp_match_chunk(int g, int k, const double *cost_flat,
               const unsigned char *par_flat, unsigned char *parity_out)
{
    size_t size = (size_t)1 << k;
    double *f = (double *)malloc(size * sizeof(double));
    unsigned char *gp = (unsigned char *)malloc(size);
    if (f == NULL || gp == NULL) {
        free(f);
        free(gp);
        return 0;
    }
    size_t stride = (size_t)k * k + (size_t)k + 1;
    size_t boundary_base = (size_t)k * k;
    size_t dangle_idx = boundary_base + (size_t)k;
    for (int c = 0; c < g; c++) {
        const double *cost = cost_flat + (size_t)c * stride;
        const unsigned char *par = par_flat + (size_t)c * stride;
        f[0] = 0.0;
        gp[0] = 0;
        for (size_t mask = 1; mask < size; mask++) {
            int i = 0;
            while (((mask >> i) & 1) == 0) {
                i++;
            }
            size_t rest = mask ^ ((size_t)1 << i);
            double best = 0.0;
            unsigned char best_par = 0;
            int first = 1;
            for (int j = i + 1; j < k; j++) {
                if (((rest >> j) & 1) == 0) {
                    continue;
                }
                size_t other = rest ^ ((size_t)1 << j);
                double cand = cost[(size_t)i * k + j] + f[other];
                if (first || cand < best) {
                    best = cand;
                    best_par = (unsigned char)(par[(size_t)i * k + j]
                                               ^ gp[other]);
                    first = 0;
                }
            }
            double cand = cost[boundary_base + (size_t)i] + f[rest];
            if (first || cand < best) {
                best = cand;
                best_par = (unsigned char)(par[boundary_base + (size_t)i]
                                           ^ gp[rest]);
                first = 0;
            }
            cand = cost[dangle_idx] + f[rest];
            if (cand < best) { /* never first: boundary seeded above */
                best = cand;
                best_par = (unsigned char)(par[dangle_idx] ^ gp[rest]);
            }
            f[mask] = best;
            gp[mask] = best_par;
        }
        parity_out[c] = gp[size - 1];
    }
    free(f);
    free(gp);
    return 1;
}

/* ------------------------------------------------------------------ */
/* Python binding.                                                     */

static PyObject *
py_blossom_core(PyObject *self, PyObject *args)
{
    (void)self;
    Py_ssize_t n_arg;
    int jumpstart;
    Py_buffer bi = {0}, bj = {0}, bw = {0}, bmate = {0}, bdual = {0};
    if (!PyArg_ParseTuple(args, "ny*y*y*pw*w*", &n_arg, &bi, &bj, &bw,
                          &jumpstart, &bmate, &bdual)) {
        return NULL;
    }
    PyObject *result = NULL;
    Py_ssize_t m = (Py_ssize_t)(bi.len / (Py_ssize_t)sizeof(int64_t));
    if (n_arg < 1 || m < 1 || n_arg > INT_MAX / 4 || m > INT_MAX / 4
        || bi.len != m * (Py_ssize_t)sizeof(int64_t) || bj.len != bi.len
        || bw.len != m * (Py_ssize_t)sizeof(double)
        || bmate.len != n_arg * (Py_ssize_t)sizeof(int64_t)
        || bdual.len != 2 * n_arg * (Py_ssize_t)sizeof(double)) {
        PyErr_SetString(PyExc_ValueError,
                        "blossom_core: inconsistent buffer lengths");
        goto done;
    }
    {
        const int64_t *ei64 = (const int64_t *)bi.buf;
        const int64_t *ej64 = (const int64_t *)bj.buf;
        const double *ew = (const double *)bw.buf;
        for (Py_ssize_t k = 0; k < m; k++) {
            if (ei64[k] < 0 || ei64[k] >= n_arg || ej64[k] < 0
                || ej64[k] >= n_arg) {
                PyErr_SetString(PyExc_ValueError,
                                "blossom_core: edge endpoint out of range");
                goto done;
            }
        }
        double max_weight = ew[0];
        for (Py_ssize_t k = 1; k < m; k++) {
            if (ew[k] > max_weight) {
                max_weight = ew[k];
            }
        }
        state st;
        int ok;
        int init_ok;
        Py_BEGIN_ALLOW_THREADS;
        init_ok = state_init(&st, (int)n_arg, (int)m, ei64, ej64, ew);
        if (init_ok) {
            for (int v = 0; v < (int)n_arg; v++) {
                st.dualvar[v] = max_weight;
            }
            for (int b = (int)n_arg; b < 2 * (int)n_arg; b++) {
                st.dualvar[b] = 0.0;
            }
            ok = run_core(&st, jumpstart, max_weight, (int64_t *)bmate.buf,
                          (double *)bdual.buf);
        }
        else {
            ok = 0;
        }
        state_free(&st);
        Py_END_ALLOW_THREADS;
        if (!ok) {
            PyErr_NoMemory();
            goto done;
        }
        result = Py_None;
        Py_INCREF(result);
    }
done:
    PyBuffer_Release(&bi);
    PyBuffer_Release(&bj);
    PyBuffer_Release(&bw);
    PyBuffer_Release(&bmate);
    PyBuffer_Release(&bdual);
    return result;
}

static PyObject *
py_sparse_match_parity(PyObject *self, PyObject *args)
{
    (void)self;
    Py_ssize_t k_arg;
    Py_buffer bW = {0}, bup = {0}, bP = {0}, bbd = {0}, bbp = {0};
    if (!PyArg_ParseTuple(args, "ny*y*y*y*y*", &k_arg, &bW, &bup, &bP,
                          &bbd, &bbp)) {
        return NULL;
    }
    PyObject *result = NULL;
    Py_ssize_t kk = k_arg * k_arg;
    if (k_arg < 1 || k_arg > INT_MAX / 4 || kk / k_arg != k_arg
        || bW.len != kk * (Py_ssize_t)sizeof(double) || bup.len != kk
        || bP.len != kk || bbd.len != k_arg * (Py_ssize_t)sizeof(double)
        || bbp.len != k_arg) {
        PyErr_SetString(PyExc_ValueError,
                        "sparse_match_parity: inconsistent buffer lengths");
        goto done;
    }
    {
        int parity = 0;
        int ok;
        Py_BEGIN_ALLOW_THREADS;
        ok = sparse_component_parity(
            (int)k_arg, (const double *)bW.buf,
            (const unsigned char *)bup.buf, (const unsigned char *)bP.buf,
            (const double *)bbd.buf, (const unsigned char *)bbp.buf,
            &parity);
        Py_END_ALLOW_THREADS;
        if (!ok) {
            PyErr_NoMemory();
            goto done;
        }
        result = PyLong_FromLong(parity);
    }
done:
    PyBuffer_Release(&bW);
    PyBuffer_Release(&bup);
    PyBuffer_Release(&bP);
    PyBuffer_Release(&bbd);
    PyBuffer_Release(&bbp);
    return result;
}

static PyObject *
py_sparse_match_batch(PyObject *self, PyObject *args)
{
    (void)self;
    Py_ssize_t g_arg, k_arg;
    Py_buffer bW = {0}, bup = {0}, bP = {0}, bbd = {0}, bbp = {0},
              bout = {0};
    if (!PyArg_ParseTuple(args, "nny*y*y*y*y*w*", &g_arg, &k_arg, &bW,
                          &bup, &bP, &bbd, &bbp, &bout)) {
        return NULL;
    }
    PyObject *result = NULL;
    Py_ssize_t kk = k_arg * k_arg;
    if (g_arg < 1 || k_arg < 1 || k_arg > INT_MAX / 4
        || kk / k_arg != k_arg
        || g_arg > PY_SSIZE_T_MAX / (kk * (Py_ssize_t)sizeof(double))
        || bW.len != g_arg * kk * (Py_ssize_t)sizeof(double)
        || bup.len != g_arg * kk || bP.len != g_arg * kk
        || bbd.len != g_arg * k_arg * (Py_ssize_t)sizeof(double)
        || bbp.len != g_arg * k_arg || bout.len != g_arg) {
        PyErr_SetString(PyExc_ValueError,
                        "sparse_match_batch: inconsistent buffer lengths");
        goto done;
    }
    {
        int ok = 1;
        Py_BEGIN_ALLOW_THREADS;
        const double *W = (const double *)bW.buf;
        const unsigned char *up = (const unsigned char *)bup.buf;
        const unsigned char *P = (const unsigned char *)bP.buf;
        const double *bd = (const double *)bbd.buf;
        const unsigned char *bp = (const unsigned char *)bbp.buf;
        unsigned char *out = (unsigned char *)bout.buf;
        for (Py_ssize_t c = 0; c < g_arg && ok; c++) {
            int parity = 0;
            ok = sparse_component_parity(
                (int)k_arg, W + c * kk, up + c * kk, P + c * kk,
                bd + c * k_arg, bp + c * k_arg, &parity);
            out[c] = (unsigned char)parity;
        }
        Py_END_ALLOW_THREADS;
        if (!ok) {
            PyErr_NoMemory();
            goto done;
        }
        result = Py_None;
        Py_INCREF(result);
    }
done:
    PyBuffer_Release(&bW);
    PyBuffer_Release(&bup);
    PyBuffer_Release(&bP);
    PyBuffer_Release(&bbd);
    PyBuffer_Release(&bbp);
    PyBuffer_Release(&bout);
    return result;
}

static PyObject *
py_dp_match_batch(PyObject *self, PyObject *args)
{
    (void)self;
    Py_ssize_t g_arg, k_arg;
    Py_buffer bc = {0}, bp = {0}, bout = {0};
    if (!PyArg_ParseTuple(args, "nny*y*w*", &g_arg, &k_arg, &bc, &bp,
                          &bout)) {
        return NULL;
    }
    PyObject *result = NULL;
    /* k is capped at _DP_STACK_MAX (11) by the caller; 24 bounds the
     * 2^k DP table at something still allocatable before the length
     * checks can overflow. */
    Py_ssize_t stride = k_arg * k_arg + k_arg + 1;
    if (g_arg < 1 || g_arg > INT_MAX / 4 || k_arg < 1 || k_arg > 24
        || g_arg > PY_SSIZE_T_MAX / (stride * (Py_ssize_t)sizeof(double))
        || bc.len != g_arg * stride * (Py_ssize_t)sizeof(double)
        || bp.len != g_arg * stride || bout.len != g_arg) {
        PyErr_SetString(PyExc_ValueError,
                        "dp_match_batch: inconsistent buffer lengths");
        goto done;
    }
    {
        int ok;
        Py_BEGIN_ALLOW_THREADS;
        ok = dp_match_chunk((int)g_arg, (int)k_arg,
                            (const double *)bc.buf,
                            (const unsigned char *)bp.buf,
                            (unsigned char *)bout.buf);
        Py_END_ALLOW_THREADS;
        if (!ok) {
            PyErr_NoMemory();
            goto done;
        }
        result = Py_None;
        Py_INCREF(result);
    }
done:
    PyBuffer_Release(&bc);
    PyBuffer_Release(&bp);
    PyBuffer_Release(&bout);
    return result;
}

static PyMethodDef cblossom_methods[] = {
    {"sparse_match_parity", py_sparse_match_parity, METH_VARARGS,
     "sparse_match_parity(k, W, use_pair, P, b_dist, b_par)\n\n"
     "Observable parity of one oversize component via the compiled\n"
     "sparse region-growing matcher; bit-identical to the pure-Python\n"
     "sparse_match_parity in repro.decode.sparse_match.  W and b_dist\n"
     "are contiguous float64 buffers (k*k and k), use_pair/P/b_par\n"
     "contiguous 1-byte buffers (k*k, k*k, k)."},
    {"sparse_match_batch", py_sparse_match_batch, METH_VARARGS,
     "sparse_match_batch(g, k, W, use_pair, P, b_dist, b_par, "
     "parity_out)\n\n"
     "Observable parities of one same-size component group in a single\n"
     "call: g stacked components of k defects each, looped inside C so\n"
     "the per-call overhead amortises across the group.  Buffers are\n"
     "the contiguous stacked gather arrays — W (g*k*k float64),\n"
     "use_pair/P (g*k*k bytes), b_dist (g*k float64), b_par (g*k\n"
     "bytes) — and parity_out a writable g-byte buffer.  Component c\n"
     "gets exactly sparse_match_parity(k, W[c], ...), so results are\n"
     "bit-identical to the per-component path."},
    {"dp_match_batch", py_dp_match_batch, METH_VARARGS,
     "dp_match_batch(g, k, cost_flat, par_flat, parity_out)\n\n"
     "Stacked subset-DP over one same-size chunk of g components with\n"
     "k defects each.  cost_flat (g*(k*k+k+1) float64) and par_flat\n"
     "(g*(k*k+k+1) bytes) are the flattened [pair | boundary | dangle]\n"
     "transition vectors prepared by repro.decode.batch._dp_flatten;\n"
     "parity_out is a writable g-byte buffer.  Replicates the numpy\n"
     "level loop's transition order and first-minimum tie-breaking, so\n"
     "parities are bit-identical to the Python fallback."},
    {"blossom_core", py_blossom_core, METH_VARARGS,
     "blossom_core(n, edge_i, edge_j, edge_w, jumpstart, mate_out, "
     "dual_out)\n\n"
     "Compiled primal-dual blossom matching core; bit-identical to the\n"
     "pure-Python engine in repro.decode.blossom.  Fills mate_out\n"
     "(int64[n], partner vertex or -1) and dual_out (float64[2n])."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cblossom_module = {
    PyModuleDef_HEAD_INIT,
    "repro.decode._cblossom",
    "Compiled blossom matching kernel (see repro.decode.blossom).",
    -1,
    cblossom_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit__cblossom(void)
{
    return PyModule_Create(&cblossom_module);
}
