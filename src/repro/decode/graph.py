"""Weighted decoding graph with precomputed all-pairs path matrices.

Nodes are detector indices plus a virtual ``boundary`` node; each
graphlike mechanism (one or two flipped detectors) becomes an edge whose
weight is the log-likelihood ratio ``ln((1−p)/p)`` and which carries the
observable-flip parity of the underlying physical error.  Parallel
mechanisms between the same endpoints are merged: probabilities combine
as independent channels (``p ← p₁(1−p₂) + p₂(1−p₁)``) while the
observable parity is taken from the *likeliest single channel* — the
"dominant channel wins" rule.  (The seed implementation compared each
new channel against the running combined probability, so the winner
depended on insertion order; the rule is now order-independent and
pinned by a test.)

The graph is stored twice:

* as compact numpy edge arrays feeding the precomputed **all-pairs
  shortest-path matrices** — a ``float64`` distance matrix and a
  ``uint8`` observable-parity matrix over ``num_detectors + 1`` nodes
  (the last row/column is the boundary).  Decoders read pairwise
  distances and path parities as O(1) array lookups instead of running
  a Dijkstra per shot.  Matrices are built lazily on first use and only
  below ``matrix_node_limit`` nodes; larger graphs fall back to the
  legacy per-source Dijkstra.
* as a plain dict-of-dicts adjacency (:class:`Adjacency`) for the
  legacy per-source path queries (:meth:`shortest`, a heap-based
  Dijkstra, and :meth:`path_observable_parity`) that the agreement
  tests and the pre-matrix decode path still use.  The decode package
  depends on no graph library: matching runs on the native blossom
  engine (:mod:`repro.decode.blossom`) and path queries on this
  module's own Dijkstra.

The parity matrix is derived from the Dijkstra predecessor matrix by
pointer doubling: start with each node's one-hop parity to its
predecessor, then repeatedly square the ancestor pointers while XORing
parities, so the full matrix costs O(n² log n) vectorised byte ops.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.dem import DetectorErrorModel

if TYPE_CHECKING:
    from scipy.sparse import csr_matrix

BOUNDARY = "boundary"

#: A graph node: a detector index, or the ``BOUNDARY`` sentinel string.
Node = int | str

#: Above this many nodes (detectors + boundary) the all-pairs matrices
#: are skipped and per-source Dijkstra is used on demand instead.
MATRIX_NODE_LIMIT = 4096

__all__ = ["DecodingGraph", "Adjacency", "BOUNDARY", "MATRIX_NODE_LIMIT"]


class Adjacency(dict):
    """Dict-of-dicts undirected adjacency: ``adj[u][v]`` is the edge
    attribute dict (``weight``, ``probability``, ``observable``).

    Covers the small slice of the ``networkx.Graph`` API the decode
    package historically exposed (node membership, item access,
    :meth:`number_of_edges`) without the library dependency.
    """

    def add_node(self, u: Node) -> None:
        self.setdefault(u, {})

    def add_edge(self, u: Node, v: Node, **attrs: object) -> None:
        self.setdefault(u, {})[v] = attrs
        self.setdefault(v, {})[u] = attrs

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self.values()) // 2


class DecodingGraph:
    """Matching graph over detectors with precomputed shortest paths."""

    def __init__(
        self,
        dem: DetectorErrorModel,
        *,
        min_p: float = 1e-12,
        matrix_node_limit: int = MATRIX_NODE_LIMIT,
    ) -> None:
        self.dem = dem
        self.num_detectors = dem.num_detectors
        self.boundary_index = dem.num_detectors
        self.matrix_node_limit = matrix_node_limit

        graph = Adjacency()
        for node in range(dem.num_detectors):
            graph.add_node(node)
        graph.add_node(BOUNDARY)
        # key -> [combined probability, best single-channel p, its parity]
        combined: dict[tuple, list] = {}
        for mech in dem.graphlike():
            if len(mech.detectors) == 1:
                key = (mech.detectors[0], BOUNDARY)
            else:
                a, b = sorted(mech.detectors)
                key = (a, b)
            entry = combined.get(key)
            if entry is None:
                combined[key] = [
                    mech.probability,
                    mech.probability,
                    mech.observable_flip,
                ]
            else:
                entry[0] = (
                    entry[0] + mech.probability - 2 * entry[0] * mech.probability
                )
                if mech.probability > entry[1]:
                    entry[1] = mech.probability
                    entry[2] = mech.observable_flip
        edges_u: list[int] = []
        edges_v: list[int] = []
        weights: list[float] = []
        parities: list[int] = []
        for (u, v), (p, _, obs) in combined.items():
            p = min(max(p, min_p), 0.5 - min_p)
            weight = math.log((1 - p) / p)
            graph.add_edge(u, v, weight=weight, probability=p, observable=obs)
            edges_u.append(self.boundary_index if u == BOUNDARY else u)
            edges_v.append(self.boundary_index if v == BOUNDARY else v)
            weights.append(weight)
            parities.append(1 if obs else 0)
        self.graph = graph
        self.edge_endpoints = (
            np.array(edges_u, dtype=np.int64),
            np.array(edges_v, dtype=np.int64),
        )
        self.edge_weights = np.array(weights, dtype=np.float64)
        self.edge_parities = np.array(parities, dtype=np.uint8)
        self._path_cache: dict = {}
        self._matrices: tuple[np.ndarray, np.ndarray] | None = None
        self._route_tables: tuple | None = None
        self._csr = None

    # -- precomputed matrices ------------------------------------------
    @property
    def use_matrices(self) -> bool:
        """Whether the all-pairs matrices are (to be) available."""
        return self.num_detectors + 1 <= self.matrix_node_limit

    def ensure_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """Distance and observable-parity matrices, built on first use.

        Returns ``(dist, parity)`` with shape ``(n+1, n+1)`` where index
        ``n`` is the boundary; ``dist`` is ``inf`` for unreachable pairs
        and ``parity[u, v]`` is the XOR of edge observable bits along
        one shortest ``u``–``v`` path.
        """
        if self._matrices is None:
            self._matrices = self._build_matrices()
        return self._matrices

    def adopt_matrices(self, dist: np.ndarray, parity: np.ndarray) -> bool:
        """Install precomputed all-pairs matrices (artifact-cache path).

        Shapes and dtypes are validated against this graph — matrices
        from a store keyed on a different configuration are refused (and
        the graph falls back to building its own), never installed
        blindly.  Returns whether the matrices were adopted.
        """
        n1 = self.num_detectors + 1
        dist = np.asarray(dist)
        parity = np.asarray(parity)
        if (
            dist.shape != (n1, n1)
            or parity.shape != (n1, n1)
            or dist.dtype != np.float64
            or parity.dtype != np.uint8
        ):
            return False
        self._matrices = (dist, parity)
        self._route_tables = None
        return True

    def ensure_route_tables(
        self,
    ) -> tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray
    ]:
        """Whole-graph route tables the batch gathers index flat.

        Returns ``(W, use_pair, pairable, parity, b_dist, b_par)`` over
        all ``(n+1)²`` node pairs: ``W`` the symmetrised pair cost
        floored by the two-boundary route, ``use_pair`` whether the
        pair route wins (ties prefer the pair), ``pairable`` the
        finite-pair adjacency with the diagonal cleared, plus the
        boundary distance/parity columns.  Each entry equals what the
        per-component gather used to recompute from ``ensure_matrices``
        — elementwise identical operations, so gathering from these
        tables is bit-identical to the old per-call ``minimum``/
        compare pipeline while doing the arithmetic once per graph
        instead of once per gather.
        """
        if self._route_tables is None:
            dist, par = self.ensure_matrices()
            b_dist = np.ascontiguousarray(dist[:, self.boundary_index])
            b_par = np.ascontiguousarray(par[:, self.boundary_index])
            d_sym = np.minimum(dist, dist.T)
            via = b_dist[:, None] + b_dist[None, :]
            W = np.minimum(d_sym, via)
            use_pair = d_sym <= via
            pairable = use_pair & np.isfinite(d_sym)
            np.fill_diagonal(pairable, False)
            self._route_tables = (
                W,
                use_pair,
                pairable,
                np.ascontiguousarray(par),
                b_dist,
                b_par,
            )
        return self._route_tables

    def _build_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        from scipy.sparse.csgraph import dijkstra

        n1 = self.num_detectors + 1
        us, vs = self.edge_endpoints
        if us.size == 0:
            dist = np.full((n1, n1), np.inf)
            np.fill_diagonal(dist, 0.0)
            return dist, np.zeros((n1, n1), dtype=np.uint8)
        adj = self.ensure_csr()  # one shared adjacency with region growth
        dist, preds = dijkstra(adj, directed=False, return_predecessors=True)

        edge_obs = np.zeros((n1, n1), dtype=np.uint8)
        edge_obs[us, vs] = self.edge_parities
        edge_obs[vs, us] = self.edge_parities

        cols = np.arange(n1)
        anc = preds.astype(np.int64)
        no_pred = anc < 0  # source itself or unreachable: self-pointer
        anc[no_pred] = np.broadcast_to(cols, anc.shape)[no_pred]
        parity = edge_obs[anc, cols[None, :]]
        parity[no_pred] = 0
        # Pointer doubling: parity[s, t] accumulates the path parity from
        # t up 2^k ancestors per step; self-pointers carry parity 0 so
        # converged entries are XOR-stable.
        for _ in range(max(1, n1.bit_length())):
            parity ^= np.take_along_axis(parity, anc, axis=1)
            anc = np.take_along_axis(anc, anc, axis=1)
        return dist, parity

    def ensure_csr(self) -> csr_matrix:
        """Sparse CSR adjacency over ``num_detectors + 1`` nodes, cached.

        One direction per edge (callers pass ``directed=False`` to the
        scipy graph routines, exactly as :meth:`_build_matrices` does);
        index ``num_detectors`` is the boundary.  This is the
        structure the sparse matcher's region growth walks
        (:func:`repro.decode.sparse_match.region_candidates`), built
        once per graph like the all-pairs matrices.
        """
        if self._csr is None:
            from scipy.sparse import csr_matrix

            n1 = self.num_detectors + 1
            us, vs = self.edge_endpoints
            self._csr = csr_matrix(
                (self.edge_weights, (us, vs)), shape=(n1, n1)
            )
        return self._csr

    def node_index(self, node: Node) -> int:
        """Matrix index of a graph node (detector int or ``BOUNDARY``)."""
        return self.boundary_index if node == BOUNDARY else int(node)

    def distance(self, u: Node, v: Node) -> float:
        """Shortest-path weight between two nodes (matrix lookup)."""
        dist, _ = self.ensure_matrices()
        return float(dist[self.node_index(u), self.node_index(v)])

    def parity(self, u: Node, v: Node) -> int:
        """Observable parity along one shortest ``u``–``v`` path."""
        _, par = self.ensure_matrices()
        return int(par[self.node_index(u), self.node_index(v)])

    # -- legacy per-source queries -------------------------------------
    def shortest(self, source: Node) -> tuple[dict, dict]:
        """Dijkstra distances and paths from ``source`` (cached).

        Returns ``(dist, path)`` dicts over reachable nodes, ``path``
        holding full node lists from ``source`` — the same contract as
        ``networkx.single_source_dijkstra``, implemented on the plain
        adjacency with a binary heap.
        """
        if source not in self._path_cache:
            dist: dict = {source: 0.0}
            prev: dict = {}
            seen: set = set()
            counter = 0  # heap tie-breaker; nodes mix ints and strings
            heap: list = [(0.0, counter, source)]
            while heap:
                d, _, node = heapq.heappop(heap)
                if node in seen:
                    continue
                seen.add(node)
                for nbr, attrs in self.graph[node].items():
                    cand = d + attrs["weight"]
                    if cand < dist.get(nbr, math.inf):
                        dist[nbr] = cand
                        prev[nbr] = node
                        counter += 1
                        heapq.heappush(heap, (cand, counter, nbr))
            path: dict = {}
            for node in dist:
                walk = [node]
                while walk[-1] != source:
                    walk.append(prev[walk[-1]])
                walk.reverse()
                path[node] = walk
            self._path_cache[source] = (dist, path)
        return self._path_cache[source]

    def path_observable_parity(self, path: list) -> int:
        """XOR of edge observable bits along a node path."""
        parity = 0
        for u, v in zip(path, path[1:], strict=False):
            if self.graph[u][v]["observable"]:
                parity ^= 1
        return parity
