"""Weighted decoding graph built from a detector error model.

Nodes are detector indices plus a virtual ``boundary`` node; each
graphlike mechanism (one or two flipped detectors) becomes an edge whose
weight is the log-likelihood ratio ``ln((1−p)/p)`` and which carries the
observable-flip parity of the underlying physical error.  Parallel
mechanisms between the same endpoints are merged by probability
combination before weighting, exactly as PyMatching does.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.sim.dem import DetectorErrorModel

BOUNDARY = "boundary"

__all__ = ["DecodingGraph", "BOUNDARY"]


class DecodingGraph:
    """Matching graph over detectors with precomputed shortest paths."""

    def __init__(self, dem: DetectorErrorModel, *, min_p: float = 1e-12) -> None:
        self.dem = dem
        graph = nx.Graph()
        graph.add_nodes_from(range(dem.num_detectors))
        graph.add_node(BOUNDARY)
        combined: dict[tuple, tuple[float, bool]] = {}
        for mech in dem.graphlike():
            if len(mech.detectors) == 1:
                key = (mech.detectors[0], BOUNDARY)
            else:
                a, b = sorted(mech.detectors)
                key = (a, b)
            p_old, obs_old = combined.get(key, (0.0, False))
            if p_old == 0.0:
                combined[key] = (mech.probability, mech.observable_flip)
            else:
                # Keep the likelier channel's observable parity; combine p.
                p_new = p_old + mech.probability - 2 * p_old * mech.probability
                obs = obs_old if p_old >= mech.probability else mech.observable_flip
                combined[key] = (p_new, obs)
        for (u, v), (p, obs) in combined.items():
            p = min(max(p, min_p), 0.5 - min_p)
            weight = math.log((1 - p) / p)
            graph.add_edge(u, v, weight=weight, probability=p, observable=obs)
        self.graph = graph
        self._path_cache: dict = {}

    def shortest(self, source) -> tuple[dict, dict]:
        """Dijkstra distances and paths from ``source`` (cached)."""
        if source not in self._path_cache:
            dist, path = nx.single_source_dijkstra(self.graph, source, weight="weight")
            self._path_cache[source] = (dist, path)
        return self._path_cache[source]

    def path_observable_parity(self, path: list) -> int:
        """XOR of edge observable bits along a node path."""
        parity = 0
        for u, v in zip(path, path[1:]):
            if self.graph[u][v]["observable"]:
                parity ^= 1
        return parity
