"""Union-find decoder (Delfosse–Nickerson weighted growth + peeling).

An almost-linear-time alternative to minimum-weight perfect matching:

1. **Weighted growth** — every odd (unpaired-parity) cluster of defects
   grows radially along its frontier edges; each round advances all
   active frontiers by the smallest increment that fully covers at
   least one edge (an edge grown from both sides advances twice as
   fast).  Covered edges union their endpoint clusters.  A cluster
   stops growing once it is *neutral*: even defect parity, or touching
   the virtual boundary node (which can absorb any parity).
2. **Peeling** — within each frozen cluster, build a spanning forest of
   the covered edges (rooted at the boundary when present) and peel
   leaves inward: a leaf carrying a defect emits its tree edge into the
   correction and hands the defect to its parent.  The predicted
   observable flip is the XOR of the observable bits of emitted edges.

Growth uses the same log-likelihood edge weights as matching, so the
cluster radii respect channel probabilities (the "weighted growth"
variant of Delfosse–Nickerson, which closes most of the accuracy gap to
MWPM).  Defects on detectors disconnected from the rest of the graph
are dropped, matching the matching decoder's behaviour.

The matching machinery is stateless across shots apart from the
immutable adjacency arrays, so one instance both serves as a
standalone decoder (it inherits the full batched
:class:`repro.decode.base.Decoder` front-end — syndrome LRU,
deduplication, packed input, sharding) and backs all cached-syndrome
lookups in :class:`repro.decode.MatchingDecoder` with ``method="uf"``.
"""

from __future__ import annotations

import numpy as np

from repro.decode.base import DEFAULT_CACHE_SIZE, Decoder
from repro.decode.graph import DecodingGraph

__all__ = ["UnionFindDecoder"]

_SLACK_EPS = 1e-9


class UnionFindDecoder(Decoder):
    """Union-find decoding over a :class:`DecodingGraph`."""

    def __init__(
        self,
        graph: DecodingGraph,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | None = None,
    ) -> None:
        super().__init__(graph, cache_size=cache_size, workers=workers)
        self.boundary = graph.boundary_index
        self.num_nodes = graph.num_detectors + 1
        us, vs = graph.edge_endpoints
        self.edge_u = us
        self.edge_v = vs
        self.edge_weight = graph.edge_weights
        self.edge_parity = graph.edge_parities
        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for e in range(len(us)):
            adjacency[us[e]].append(e)
            adjacency[vs[e]].append(e)
        self.adjacency = adjacency

    # ------------------------------------------------------------------
    def _decode_defects(self, defects: tuple[int, ...]) -> int:
        """Predicted observable flip (0/1) for one defect set."""
        if not defects:
            return 0
        covered = self._grow(defects)
        if not covered:
            return 0
        return self._peel(covered, defects)

    # ------------------------------------------------------------------
    def _grow(self, defects: tuple[int, ...]) -> list[int]:
        """Grow odd clusters until neutral; return fully-covered edges."""
        parent = list(range(self.num_nodes))

        def find(a: int) -> int:
            root = a
            while parent[root] != root:
                root = parent[root]
            while parent[a] != root:
                parent[a], a = root, parent[a]
            return root

        parity = bytearray(self.num_nodes)
        touches_boundary = bytearray(self.num_nodes)
        touches_boundary[self.boundary] = 1
        frontier: dict[int, list[int]] = {}
        for d in defects:
            parity[d] ^= 1
        # Identical defects cancel; seed one cluster per odd defect.
        # Sorted so cluster creation order (and every tie downstream)
        # is independent of set hash order.
        active = set()
        for d in sorted(set(defects)):
            if parity[d]:
                frontier[d] = list(self.adjacency[d])
                active.add(d)

        growth: dict[int, float] = {}
        covered: list[int] = []
        covered_set: set[int] = set()

        while active:
            # Pass 1: smallest per-round slack over live frontier edges.
            delta = np.inf
            live: list[tuple[int, int]] = []  # (edge, growing sides)
            seen: set[int] = set()
            for root in active:
                kept: list[int] = []
                for e in frontier[root]:
                    if e in covered_set:
                        continue
                    ru = find(self.edge_u[e])
                    rv = find(self.edge_v[e])
                    if ru == rv:
                        continue  # became internal: no longer frontier
                    kept.append(e)
                    if e in seen:
                        continue
                    seen.add(e)
                    sides = (ru in active) + (rv in active)
                    slack = (self.edge_weight[e] - growth.get(e, 0.0)) / sides
                    live.append((e, sides))
                    if slack < delta:
                        delta = slack
                frontier[root] = kept
            if not live:
                break  # isolated odd defects: freeze and drop them
            # Pass 2: advance every live edge; union the saturated ones.
            merges: list[int] = []
            for e, sides in live:
                grown = growth.get(e, 0.0) + sides * delta
                growth[e] = grown
                if grown >= self.edge_weight[e] - _SLACK_EPS:
                    merges.append(e)
            for e in merges:
                ru = find(self.edge_u[e])
                rv = find(self.edge_v[e])
                if ru == rv:
                    continue
                covered.append(e)
                covered_set.add(e)
                fu = frontier.get(ru)
                fv = frontier.get(rv)
                if fu is None:
                    fu = list(self.adjacency[ru]) if ru != self.boundary else []
                if fv is None:
                    fv = list(self.adjacency[rv]) if rv != self.boundary else []
                if len(fu) < len(fv):
                    ru, rv = rv, ru
                    fu, fv = fv, fu
                parent[rv] = ru
                fu.extend(fv)
                frontier[ru] = fu
                frontier.pop(rv, None)
                parity[ru] ^= parity[rv]
                touches_boundary[ru] |= touches_boundary[rv]
                active.discard(ru)
                active.discard(rv)
                if parity[ru] and not touches_boundary[ru]:
                    active.add(ru)
        return covered

    # ------------------------------------------------------------------
    def _peel(self, covered: list[int], defects: tuple[int, ...]) -> int:
        """Shortest-path-forest leaf peeling over the covered edges.

        The peeling tree of each cluster is the Dijkstra tree from its
        root (the boundary when present), so within the covered
        subgraph every defect hands its charge along a minimum-weight
        route — on tie-free graphs a lone defect therefore picks up
        exactly the matching decoder's path parity even when the
        cluster contains cycles.
        """
        import heapq

        support: dict[int, list[tuple[int, int]]] = {}
        for e in covered:
            u, v = int(self.edge_u[e]), int(self.edge_v[e])
            support.setdefault(u, []).append((e, v))
            support.setdefault(v, []).append((e, u))

        defect = bytearray(self.num_nodes)
        for d in defects:
            defect[d] ^= 1

        visited = bytearray(self.num_nodes)
        prediction = 0
        # Root the boundary's component at the boundary so leftover
        # defects are absorbed there.  Other components are rooted at a
        # defect when possible: a stalled odd cluster (boundary
        # unreachable) then absorbs its leftover charge at the root
        # without emitting correction edges, matching the matching
        # decoder's dangling-defect behaviour.
        roots = []
        if self.boundary in support:
            roots.append(self.boundary)
        roots.extend(sorted(support, key=lambda n: (not defect[n], n)))
        for root in roots:
            if visited[root]:
                continue
            visited[root] = 1
            # Dijkstra tree of the cluster, rooted at ``root``.
            order: list[tuple[int, int, int]] = []  # (node, parent, edge)
            best: dict[int, float] = {root: 0.0}
            heap: list[tuple[float, int, int, int]] = [(0.0, root, root, -1)]
            while heap:
                dist, node, parent, via = heapq.heappop(heap)
                if node != root:
                    if visited[node]:
                        continue
                    visited[node] = 1
                    order.append((node, parent, via))
                for e, other in support[node]:
                    if visited[other] and other != root:
                        continue
                    if other == root:
                        continue
                    cand = dist + float(self.edge_weight[e])
                    if cand < best.get(other, np.inf):
                        best[other] = cand
                        heapq.heappush(heap, (cand, other, node, e))
            # Dijkstra settles parents before children: reverse order
            # peels leaves first.
            for node, par, e in reversed(order):
                if defect[node]:
                    prediction ^= self.edge_parity[e]
                    defect[node] = 0
                    defect[par] ^= 1
            defect[root] = 0  # boundary absorbs; even clusters end clean
        return int(prediction)
