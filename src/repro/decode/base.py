"""Shared batch-first decoder contract.

Every decoder in the package — exact matching, greedy, union-find, and
the legacy per-shot-Dijkstra formulation — decodes *defect sets* (the
tuple of fired detector indices below the graph's detector count).
:class:`Decoder` owns everything around that core so each backend only
implements :meth:`Decoder._decode_defects`:

* **canonicalisation** — ``decode_batch`` accepts a ``(shots,
  detectors)`` uint8 array, a 1-D single shot, or a
  :class:`~repro.utils.gf2.PackedBits` bitplane straight from the
  packed sampler (rows = detectors, bits = shots).  Every flavour is
  brought to bit-packed per-shot rows — uint8 input is packed into
  uint64 words up front, packed input reuses its cached transpose —
  and only the *unique* syndromes are ever unpacked.
* **zero-syndrome fast path** — one ``any``-reduction over the packed
  words drops the all-zero shots that dominate low-error-rate batches.
* **deduplication** — ``np.unique`` collapses the batch to its unique
  nonzero syndromes on the packed words (~64× less data per row
  comparison than byte rows); predictions scatter back through the
  inverse map.
* **syndrome LRU** — decoded predictions are cached keyed on the
  defect tuple; repeat syndromes across batches are dictionary hits.
* **sharding** — ``workers=N`` forks one worker process per shard of
  the unique syndromes (copy-on-write graph data, results absorbed
  into the parent's cache); see :meth:`Decoder._decode_unique_parallel`.
  The pool is *fault-tolerant*: a worker that crashes, is killed, or
  exceeds :attr:`Decoder.pool_timeout` only forfeits its own shard —
  the parent detects the dead pipe and decodes that shard serially,
  so predictions are identical to the serial path whatever happens to
  the workers, and every forked process is joined on every exit path.

Single-shot :meth:`Decoder.decode` is a thin wrapper over the same
machinery.  Subclasses may override :meth:`Decoder._decode_misses` to
decode a list of cache-missing unique syndromes at once — that is the
hook the vectorised component pipeline (:mod:`repro.decode.batch`)
plugs into.
"""

from __future__ import annotations

import multiprocessing
import sys
import threading
import time
from collections import OrderedDict

import numpy as np

from typing import TYPE_CHECKING

from repro.utils.gf2 import PackedBits, gf2_pack_rows, gf2_unpack

if TYPE_CHECKING:
    from repro.decode.graph import DecodingGraph

__all__ = ["Decoder", "DEFAULT_CACHE_SIZE"]

#: Default maximum number of cached syndromes per decoder.
DEFAULT_CACHE_SIZE = 65536

#: Minimum number of unique syndromes per worker before decode_batch
#: bothers forking: below this the pool start-up cost dominates.
_MIN_SYNDROMES_PER_WORKER = 32

#: Decoder a forked pool worker decodes against (inherited copy-on-write
#: from the parent at fork time; never set in the parent's own workers).
#: Guarded by ``_POOL_LOCK`` for the set→fork window so concurrent
#: ``decode_batch`` calls from different threads cannot fork against
#: the wrong decoder.
_POOL_DECODER: "Decoder | None" = None
_POOL_LOCK = threading.Lock()

#: Fault-injection seam for the crash-safety tests: when set to a
#: callable, every shard worker invokes it with its shard index right
#: after forking (before decoding).  Tests install e.g. a SIGKILL of
#: the worker's own pid for one shard to exercise the serial-fallback
#: path; production never sets it.
_WORKER_FAULT = None

#: Seconds between liveness/pipe polls while collecting a shard.
_POOL_POLL_INTERVAL = 0.02


def _shard_worker(shard_index: int, defect_sets, conn) -> None:
    """Decode one shard in a forked child and pipe the bytes back.

    The decoder (graph matrices included) is inherited copy-on-write
    via ``_POOL_DECODER``; only the result bytes cross the pipe.  Any
    abnormal end — crash, kill, unpickleable state — simply closes the
    pipe, which the parent observes as EOF and treats as shard loss.
    """
    if _WORKER_FAULT is not None:
        _WORKER_FAULT(shard_index)
    out = bytearray(len(defect_sets))
    for i, defects in enumerate(defect_sets):
        out[i] = _POOL_DECODER._decode_cached(defects)
    conn.send_bytes(bytes(out))
    conn.close()


class Decoder:
    """Batched, cached, shardable front-end over ``_decode_defects``."""

    #: Per-shard wall-clock budget for forked workers, in seconds
    #: (``None`` = unbounded).  A shard whose worker is still running
    #: past the budget is terminated and decoded serially in the
    #: parent; crashes are detected immediately via pipe EOF and never
    #: wait for this.  Settable per instance.
    pool_timeout: float | None = None

    #: Minimum unique syndromes per worker before ``decode_batch``
    #: bothers forking a pool — below it start-up cost dominates.
    #: Settable per instance; the scaling benchmark lowers it so a
    #: fixed workload shards at every pool width it sweeps.
    min_shard_syndromes: int = _MIN_SYNDROMES_PER_WORKER

    def __init__(
        self,
        graph: DecodingGraph,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
        workers: int | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        self.graph = graph
        self.num_detectors = graph.num_detectors
        self.workers = workers
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple[int, ...], int] | None = (
            OrderedDict() if cache_size > 0 else None
        )
        self.cache_hits = 0
        self.cache_misses = 0
        #: Shards recovered serially after a worker crash/kill/timeout.
        self.pool_failures = 0

    # -- the backend contract ------------------------------------------
    def _decode_defects(self, defects: tuple[int, ...]) -> int:
        """Predicted observable flip for one nonempty defect set."""
        raise NotImplementedError

    def _decode_misses(self, defect_sets: list[tuple[int, ...]]) -> np.ndarray:
        """Decode cache-missing unique syndromes (override to vectorise)."""
        return np.fromiter(
            (self._decode_defects(d) for d in defect_sets),
            dtype=np.uint8,
            count=len(defect_sets),
        )

    # -- single-shot front door ----------------------------------------
    def decode(self, detector_sample: np.ndarray) -> int:
        """Predicted observable flip (0/1) for one shot's detector bits."""
        sample = np.asarray(detector_sample)
        nonzero = np.nonzero(sample)[0]
        limit = self.num_detectors
        defects = tuple(int(d) for d in nonzero if d < limit)
        return self._decode_cached(defects)

    def _decode_cached(self, defects: tuple[int, ...]) -> int:
        if not defects:
            return 0
        cache = self._cache
        if cache is not None:
            cached = cache.get(defects)
            if cached is not None:
                cache.move_to_end(defects)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        result = self._decode_defects(defects)
        if cache is not None:
            cache[defects] = result
            if len(cache) > self.cache_size:
                cache.popitem(last=False)
        return result

    # -- batch front door ----------------------------------------------
    def decode_batch(
        self,
        detector_samples: np.ndarray | PackedBits,
        *,
        workers: int | None = None,
    ) -> np.ndarray:
        """Vector of predictions, one per shot.

        ``detector_samples`` is a ``(shots, detectors)`` uint8 array, a
        1-D single shot, or a :class:`PackedBits` detector bitplane
        (rows = detectors, bits = shots) from the packed sampler.
        ``workers=N`` (or the constructor default) shards the unique
        nonzero syndromes across ``N`` forked processes; serial,
        sharded, and packed decoding produce identical predictions.
        """
        if isinstance(detector_samples, PackedBits):
            # The transpose is memoised on the bitplane (the wire
            # format is write-once), so re-decoding one sample —
            # benchmark reps, streamed throughput loops — pays for the
            # full-plane transpose exactly once.
            packed = detector_samples.transposed().words
            num_shots = detector_samples.num_bits
            row_width = detector_samples.num_rows
        else:
            rows = np.asarray(detector_samples, dtype=np.uint8)
            if rows.ndim == 1:
                rows = rows.reshape(1, -1)
            num_shots = len(rows)
            row_width = rows.shape[1]
            # Pack before deduplicating: the axis-0 np.unique then
            # compares ~row_width/64 words per row instead of row_width
            # bytes, and only the unique survivors are ever unpacked —
            # the same shape the packed input path has always had.
            packed = gf2_pack_rows(rows)
        predictions = np.zeros(num_shots, dtype=np.uint8)
        if num_shots == 0:
            return predictions
        nonzero_rows, unique, inverse = _packed_dedup(packed, row_width)
        if nonzero_rows.size == 0:
            return predictions
        defect_sets = _defect_tuples(unique, self.num_detectors)
        if workers is None:
            workers = self.workers
        if (
            workers is not None
            and workers > 1
            and self._can_shard(len(defect_sets), workers)
        ):
            unique_predictions = self._decode_unique_parallel(
                defect_sets, workers
            )
        else:
            unique_predictions = self._decode_unique(defect_sets)
        predictions[nonzero_rows] = unique_predictions[inverse]
        return predictions

    def logical_error_rate(
        self,
        detector_samples: np.ndarray | PackedBits,
        observable_samples: np.ndarray | PackedBits,
    ) -> float:
        """Fraction of shots where the prediction misses the actual flip.

        An empty batch has no misses: zero shots return 0.0 instead of
        propagating a ``mean of empty slice`` NaN.
        """
        predictions = self.decode_batch(detector_samples)
        if len(predictions) == 0:
            return 0.0
        if isinstance(observable_samples, PackedBits):
            actual = observable_samples.column_parity()
        else:
            actual = np.asarray(observable_samples).reshape(
                len(predictions), -1
            )
            actual = (actual.sum(axis=1) % 2).astype(np.uint8)
        return float((predictions != actual).mean())

    # -- unique-syndrome decoding --------------------------------------
    def _cache_scan(
        self, defect_sets: list[tuple[int, ...]], out: np.ndarray
    ) -> list[int]:
        """Resolve cache hits into ``out``; return the miss indices.

        Empty defect sets decode to 0 and never touch the cache.
        """
        cache = self._cache
        if cache is None:
            return [i for i, d in enumerate(defect_sets) if d]
        misses: list[int] = []
        for i, defects in enumerate(defect_sets):
            if not defects:
                continue
            cached = cache.get(defects)
            if cached is not None:
                cache.move_to_end(defects)
                self.cache_hits += 1
                out[i] = cached
            else:
                misses.append(i)
        return misses

    def _decode_unique(self, defect_sets: list[tuple[int, ...]]) -> np.ndarray:
        """Cache-aware decoding of the batch's unique defect sets."""
        out = np.zeros(len(defect_sets), dtype=np.uint8)
        misses = self._cache_scan(defect_sets, out)
        if misses:
            results = self._decode_misses([defect_sets[i] for i in misses])
            self._absorb_results(out, defect_sets, misses, results)
        return out

    def _absorb_results(self, out, defect_sets, misses, results) -> None:
        """Scatter miss results into ``out`` and warm the cache."""
        cache = self._cache
        for i, result in zip(misses, results, strict=True):
            out[i] = result
            if cache is not None:
                self.cache_misses += 1
                cache[defect_sets[i]] = int(result)
                if len(cache) > self.cache_size:
                    cache.popitem(last=False)

    # -- forked-pool sharding ------------------------------------------
    def _can_shard(self, num_unique: int, workers: int) -> bool:
        """Whether forking a pool is worthwhile (and safe) here."""
        if workers <= 1:
            # ``workers=1`` means serial, no fork — explicitly, not
            # merely because one shard happens to fall below the
            # per-worker floor.  Serial decoding never touches
            # ``pool_failures``.
            return False
        if num_unique < workers * self.min_shard_syndromes:
            return False
        # macOS advertises fork but aborts forked children that touch
        # Apple-framework state; only Linux fork is trusted here.
        return sys.platform.startswith("linux") and (
            "fork" in multiprocessing.get_all_start_methods()
        )

    def _prepare_fork(self) -> None:
        """Build anything workers should inherit copy-on-write (hook)."""

    def _decode_unique_parallel(
        self, defect_sets: list[tuple[int, ...]], workers: int
    ) -> np.ndarray:
        """Shard unique-syndrome decoding across forked worker processes.

        The decoder (path matrices included) is inherited by each
        worker copy-on-write at fork time, so nothing large is pickled;
        only the defect tuples and the uint8 results cross the pipe.
        Cache hits are resolved in the parent first, and the parent's
        syndrome LRU absorbs the workers' results afterwards, so a
        sharded batch warms the cache exactly like a serial one.

        Fault tolerance: each shard has its own worker and pipe.  A
        worker that dies (crash, OOM kill, SIGKILL) closes its pipe,
        which the parent sees as EOF; a worker still running past
        :attr:`pool_timeout` is terminated.  Either way only that shard
        falls back to serial decoding in the parent
        (``pool_failures`` counts the recoveries) — predictions are
        always exactly the serial path's.  The ``finally`` block
        terminates and joins every worker on every exit path, so no
        forked process outlives the call even when the caller's side
        raises.

        Caveat: decoders whose per-shot state is rebuilt on demand
        (e.g. ``use_matrices=False`` path caches) duplicate that work
        across workers and discard it with the pool — results stay
        correct but the speed-up erodes there.
        """
        self._prepare_fork()
        out = np.zeros(len(defect_sets), dtype=np.uint8)
        misses = self._cache_scan(defect_sets, out)
        if len(misses) < workers * self.min_shard_syndromes:
            # A warm cache can shrink a shard-worthy batch to a handful
            # of misses; forking a pool for those loses to the serial
            # loop, so the floor is re-checked on the actual work.
            results = self._decode_misses([defect_sets[i] for i in misses])
            self._absorb_results(out, defect_sets, misses, results)
            return out
        global _POOL_DECODER
        ctx = multiprocessing.get_context("fork")
        miss_sets = [defect_sets[i] for i in misses]
        shards = np.array_split(np.arange(len(miss_sets)), workers)
        results = np.zeros(len(miss_sets), dtype=np.uint8)
        procs: list[tuple] = []
        # The lock spans the workers' whole lifetime: every shard forks
        # against this decoder.  Concurrent sharded batches from other
        # threads serialise here — overlapping process pools would only
        # fight for the same cores.
        with _POOL_LOCK:
            _POOL_DECODER = self
            try:
                for k, shard in enumerate(shards):
                    if len(shard) == 0:
                        continue
                    recv, send = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_shard_worker,
                        args=(k, [miss_sets[i] for i in shard], send),
                        daemon=True,
                    )
                    proc.start()
                    # Close the parent's copy of the write end so a dead
                    # worker's pipe reads as EOF instead of blocking.
                    send.close()
                    procs.append((proc, recv, shard))
                for proc, recv, shard in procs:
                    shard_results = self._collect_shard(proc, recv, len(shard))
                    if shard_results is None:
                        self.pool_failures += 1
                        if proc.is_alive():
                            proc.terminate()
                        shard_results = self._decode_misses(
                            [miss_sets[i] for i in shard]
                        )
                    results[shard] = shard_results
            finally:
                _POOL_DECODER = None
                for proc, recv, _ in procs:
                    if proc.is_alive():
                        proc.terminate()
                    proc.join()
                    recv.close()
        self._absorb_results(out, defect_sets, misses, results)
        return out

    def _collect_shard(self, proc, conn, expected: int) -> np.ndarray | None:
        """One shard's result bytes, or ``None`` if the worker was lost.

        Polls the pipe (so a result sent just before an abnormal exit
        is still honoured) and the process liveness; EOF on the pipe —
        the immediate consequence of any worker death — reports loss
        without waiting for a timeout.
        """
        deadline = (
            time.monotonic() + self.pool_timeout
            if self.pool_timeout is not None
            else None
        )
        while True:
            if conn.poll(_POOL_POLL_INTERVAL):
                try:
                    data = conn.recv_bytes()
                except (EOFError, OSError):
                    return None
                if len(data) != expected:
                    return None
                return np.frombuffer(data, dtype=np.uint8).copy()
            if not proc.is_alive() and not conn.poll(0):
                return None
            if deadline is not None and time.monotonic() > deadline:
                return None


def _packed_dedup(
    packed: np.ndarray, row_width: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Word-packed dedup: ``(nonzero shot ids, unique rows, inverse)``.

    ``packed`` holds one bit-packed syndrome row per shot (64 detectors
    per ``uint64`` word) — both input flavours of ``decode_batch``
    arrive here, uint8 rows via :func:`~repro.utils.gf2.gf2_pack_rows`
    and ``PackedBits`` bitplanes via the cached transpose.  The
    zero-shot ``any`` reduction and the axis-0 ``np.unique`` both run
    on the words; only the unique survivors are unpacked back to uint8
    rows for defect extraction.
    """
    nonzero_rows = np.nonzero(packed.any(axis=1))[0]
    if nonzero_rows.size == 0:
        return (
            nonzero_rows,
            np.zeros((0, row_width), dtype=np.uint8),
            np.zeros(0, dtype=np.intp),
        )
    unique_words, inverse = np.unique(
        packed[nonzero_rows], axis=0, return_inverse=True
    )
    return (
        nonzero_rows,
        gf2_unpack(unique_words, row_width),
        inverse.reshape(-1),
    )


def _defect_tuples(
    unique_rows: np.ndarray, limit: int
) -> list[tuple[int, ...]]:
    """Defect tuples of every unique syndrome row, in one vector pass.

    One global ``np.nonzero`` plus a ``searchsorted`` split replaces the
    per-row Python ``np.nonzero`` loop; only the tuple materialisation
    (needed as cache keys and fork payloads) stays per-row.
    """
    width = unique_rows.shape[1]
    clipped = unique_rows[:, :limit] if limit < width else unique_rows
    rows, cols = np.nonzero(clipped)
    if len(unique_rows) == 1:
        return [tuple(cols.tolist())]
    # Slice one Python list at per-row bounds: np.split would build an
    # ndarray (plus a tolist) per row, which dominates d = 9 batches
    # where every row is unique.
    bounds = np.zeros(len(unique_rows) + 1, dtype=np.int64)
    np.cumsum(np.bincount(rows, minlength=len(unique_rows)), out=bounds[1:])
    flat = cols.tolist()
    return [
        tuple(flat[lo:hi])
        for lo, hi in zip(bounds[:-1], bounds[1:], strict=True)
    ]
