"""Lattice surgery primitives: merge, split, and routed CNOT (fig. 4).

``merge_patches`` really performs the code-level merge: two patches and
the ancilla region between them become one code by activating the seam
checks — implemented with the same rectangle-rebuild machinery as
``PatchQ_ADD``, which is exactly the paper's observation that lattice
surgery and code deformation are both gauge fixing.  ``split_patch``
reverses it.  ``cnot_via_ancilla`` models the two-window measurement
sequence (Z⊗Z then X⊗X with an ancilla) of a long-range CNOT.

Each merge/split window must run for ``SURGERY_WINDOW_ROUNDS(d) = d``
QEC rounds to be fault tolerant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.surface.patch import SurfacePatch, rotated_rect_patch

__all__ = [
    "SurgeryOp",
    "merge_patches",
    "split_patch",
    "cnot_via_ancilla",
    "SURGERY_WINDOW_ROUNDS",
]


def SURGERY_WINDOW_ROUNDS(d: int) -> int:
    """QEC rounds one merge/split window lasts (= d for fault tolerance)."""
    return d


@dataclass(frozen=True)
class SurgeryOp:
    """One scheduled lattice-surgery operation."""

    kind: str  # "merge" | "split" | "cnot"
    operands: tuple
    rounds: int


def merge_patches(a: SurfacePatch, b: SurfacePatch) -> SurfacePatch:
    """Merge two horizontally adjacent patches into one code.

    The patches must share the same vertical extent and be separated by
    an odd number of data columns (the ancilla region).  The merged code
    spans the union rectangle; any defective qubits recorded on either
    patch are inherited (and must be re-removed by the caller if inside).
    """
    ax0, ay0, ax1, ay1 = a.footprint
    bx0, by0, bx1, by1 = b.footprint
    if (ay0, ay1) != (by0, by1):
        raise ValueError("merge requires equal vertical extents")
    if ax0 > bx0:
        a, b = b, a
        ax0, ay0, ax1, ay1, bx0, by0, bx1, by1 = (
            bx0,
            by0,
            bx1,
            by1,
            ax0,
            ay0,
            ax1,
            ay1,
        )
    if ax1 >= bx0:
        raise ValueError("patches overlap")
    width = (bx1 - ax0) // 2 + 1
    height = (ay1 - ay0) // 2 + 1
    merged = rotated_rect_patch(width, height, (ax0 - 1, ay0 - 1), target_d=a.d)
    merged.defective_data = a.defective_data | b.defective_data
    merged.defective_ancillas = a.defective_ancillas | b.defective_ancillas
    return merged


def split_patch(
    patch: SurfacePatch, left_width: int
) -> tuple[SurfacePatch, SurfacePatch]:
    """Split a merged patch back into two (west part of ``left_width``
    data columns, the rest — minus one separator column — as the east
    part)."""
    x0, y0, x1, y1 = patch.footprint
    total_width = (x1 - x0) // 2 + 1
    if not 2 <= left_width <= total_width - 3:
        raise ValueError("left_width leaves no room for separator + right patch")
    height = (y1 - y0) // 2 + 1
    left = rotated_rect_patch(left_width, height, (x0 - 1, y0 - 1), target_d=patch.d)
    right_origin_x = x0 + 2 * (left_width + 1) - 1
    right = rotated_rect_patch(
        total_width - left_width - 1,
        height,
        (right_origin_x, y0 - 1),
        target_d=patch.d,
    )
    for part in (left, right):
        part.defective_data = set(patch.defective_data)
        part.defective_ancillas = set(patch.defective_ancillas)
    return left, right


def cnot_via_ancilla(d: int, path_length: int) -> list[SurgeryOp]:
    """The op sequence of a long-range CNOT through an ancilla path.

    Two measurement windows (Z⊗Z merge on the control side, X⊗X on the
    target side, fig. 4b) regardless of path length — the ancilla patch
    just stretches; ``path_length`` only matters for routing conflicts.
    """
    window = SURGERY_WINDOW_ROUNDS(d)
    return [
        SurgeryOp(kind="merge", operands=("control", "ancilla", path_length), rounds=window),
        SurgeryOp(kind="split", operands=("ancilla",), rounds=window),
        SurgeryOp(kind="merge", operands=("ancilla", "target", path_length), rounds=window),
        SurgeryOp(kind="split", operands=("ancilla",), rounds=window),
    ]
