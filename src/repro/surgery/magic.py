"""Magic-state (T) factories for logical T gates (section VII-A).

Logical T gates consume magic states produced by 15-to-1 distillation
factories [Fowler & Gidney].  For schedule estimation only the
factory's footprint and production rate matter.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TFactory"]


@dataclass(frozen=True)
class TFactory:
    """A 15-to-1 distillation factory model.

    Attributes:
        d: code distance of the factory's inner patches.
        logical_footprint: logical-qubit slots the factory occupies
            (Litinski-style block: ≈ 11 tiles).
        rounds_per_state: QEC rounds to distill one magic state
            (≈ 6 d for a pipelined 15-to-1 block).
    """

    d: int
    logical_footprint: int = 11
    rounds_per_state_factor: float = 6.0

    @property
    def rounds_per_state(self) -> float:
        return self.rounds_per_state_factor * self.d

    def states_per_round(self) -> float:
        return 1.0 / self.rounds_per_state

    def rounds_for(self, t_count: float, num_factories: int = 1) -> float:
        """QEC rounds to produce ``t_count`` magic states."""
        if t_count <= 0:
            return 0.0
        return t_count * self.rounds_per_state / max(1, num_factories)
