"""Program schedule estimation on a lattice-surgery layout.

Converts a compiled program's logical gate counts into a QEC-cycle
runtime: CNOTs run in parallel waves limited by channel capacity, T
gates are limited by magic-state production, and every surgery window
lasts d rounds.  This is the space-time accounting the paper's Table II
"runtime" and retry-risk numbers rest on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.surgery.magic import TFactory
from repro.surgery.ops import SURGERY_WINDOW_ROUNDS

__all__ = ["ScheduleEstimate", "estimate_schedule"]


@dataclass(frozen=True)
class ScheduleEstimate:
    """Runtime breakdown of a program on a layout."""

    cnot_windows: float
    t_windows: float
    total_cycles: float
    parallel_capacity: float

    @property
    def total_windows(self) -> float:
        return self.cnot_windows + self.t_windows


def estimate_schedule(
    *,
    cx_count: float,
    t_count: float,
    num_logical: int,
    d: int,
    channel_capacity_fraction: float = 0.5,
    num_factories: int | None = None,
) -> ScheduleEstimate:
    """Estimate a program's runtime in QEC cycles.

    ``channel_capacity_fraction`` is the fraction of logical qubits that
    can be involved in concurrently routed CNOTs per window (an
    uncongested grid layout keeps about half its qubits busy).  Each T
    gate needs a magic state plus one CNOT window for injection;
    factories default to ~N/2, the throughput-oriented provisioning the
    paper's T-heavy workloads (10⁸–10⁹ T gates) imply.
    """
    window = SURGERY_WINDOW_ROUNDS(d)
    capacity = max(1.0, channel_capacity_fraction * num_logical / 2.0)
    cnot_windows = cx_count / capacity
    if num_factories is None:
        num_factories = max(1, num_logical // 2)
    factory = TFactory(d=d)
    t_production_rounds = factory.rounds_for(t_count, num_factories)
    t_injection_windows = t_count / capacity
    t_windows = max(t_production_rounds / window, t_injection_windows)
    total = (cnot_windows + t_windows) * window
    return ScheduleEstimate(
        cnot_windows=cnot_windows,
        t_windows=t_windows,
        total_cycles=total,
        parallel_capacity=capacity,
    )
