"""Lattice-surgery logical operations and magic-state resources (section II-D)."""

from repro.surgery.ops import (
    SurgeryOp,
    merge_patches,
    split_patch,
    cnot_via_ancilla,
    SURGERY_WINDOW_ROUNDS,
)
from repro.surgery.magic import TFactory
from repro.surgery.schedule import ScheduleEstimate, estimate_schedule

__all__ = [
    "SurgeryOp",
    "merge_patches",
    "split_patch",
    "cnot_via_ancilla",
    "SURGERY_WINDOW_ROUNDS",
    "TFactory",
    "ScheduleEstimate",
    "estimate_schedule",
]
