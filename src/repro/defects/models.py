"""Dynamic defect models (section VII-A, derived from McEwen et al.).

Each physical qubit is struck by defect events as a Poisson process with
rate ``event_rate`` (1 / (26 qubits × 10 s) in the paper).  A strike at a
qubit raises the error rate of the surrounding region (up to 24 adjacent
qubits — a region of lattice radius ≈ 2, i.e. "size 4" in data-qubit
diameter) to ≈ 50 % for ``duration_s`` (25 ms ≈ 25 000 QEC cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.surface.lattice import Coord

__all__ = ["DefectEvent", "CosmicRayModel", "sample_defect_region"]

#: QEC cycle time assumed when converting durations (1 µs, matching the
#: paper's "25 ms ≈ 25 000 QEC cycles").
CYCLE_TIME_S = 1e-6


@dataclass(frozen=True)
class DefectEvent:
    """One dynamic defect strike.

    Attributes:
        center: lattice coordinate of the struck qubit.
        start_cycle: QEC cycle at which the event begins.
        duration_cycles: how long the elevated error rate persists.
        region: all physical qubit coordinates affected.
    """

    center: Coord
    start_cycle: int
    duration_cycles: int
    region: frozenset[Coord]

    def active_at(self, cycle: int) -> bool:
        return self.start_cycle <= cycle < self.start_cycle + self.duration_cycles


def sample_defect_region(
    center: Coord, all_qubits: set[Coord], radius: int = 2
) -> frozenset[Coord]:
    """Qubits within Chebyshev lattice ``radius`` of ``center``.

    Radius 2 over the doubled-coordinate lattice covers up to 24 adjacent
    physical qubits around the strike, matching the paper's defect model.
    """
    cx, cy = center
    return frozenset(
        q
        for q in all_qubits
        if max(abs(q[0] - cx), abs(q[1] - cy)) <= 2 * radius
    )


@dataclass
class CosmicRayModel:
    """Poisson cosmic-ray / error-drift event generator.

    Attributes:
        event_rate_hz_per_qubit: strike rate per physical qubit
            (paper: ``0.1 Hz / 26 qubits``).
        duration_s: how long a strike's effect lasts (paper: 25 ms).
        region_radius: Chebyshev radius of the affected region.
        seed: RNG seed for reproducible event streams.
    """

    event_rate_hz_per_qubit: float = 0.1 / 26.0
    duration_s: float = 25e-3
    region_radius: int = 2
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    @property
    def duration_cycles(self) -> int:
        return max(1, int(round(self.duration_s / CYCLE_TIME_S)))

    def rate_per_cycle(self, num_qubits: int) -> float:
        """Expected events per QEC cycle over ``num_qubits`` qubits."""
        return self.event_rate_hz_per_qubit * num_qubits * CYCLE_TIME_S

    def expected_events(self, num_qubits: int, cycles: int) -> float:
        return self.rate_per_cycle(num_qubits) * cycles

    def sample_events(
        self, qubits: set[Coord], cycles: int
    ) -> list[DefectEvent]:
        """Sample the defect-event stream over a spacetime volume."""
        qubit_list = sorted(qubits)
        lam = self.expected_events(len(qubit_list), cycles)
        count = int(self._rng.poisson(lam))
        events = []
        for _ in range(count):
            center = qubit_list[int(self._rng.integers(len(qubit_list)))]
            start = int(self._rng.integers(cycles))
            events.append(
                DefectEvent(
                    center=center,
                    start_cycle=start,
                    duration_cycles=self.duration_cycles,
                    region=sample_defect_region(
                        center, qubits, self.region_radius
                    ),
                )
            )
        return sorted(events, key=lambda e: e.start_cycle)

    def sample_defective_qubits(
        self, qubits: set[Coord], count: int
    ) -> set[Coord]:
        """Sample ``count`` defective qubits for static-snapshot studies.

        Strikes are placed at random centres and their regions truncated
        so that exactly ``count`` qubits (when available) are defective —
        used by the fig. 11 / 13 / 14 experiments, which are parameterised
        by the *number* of defective qubits.
        """
        qubit_list = sorted(qubits)
        defective: set[Coord] = set()
        guard = 0
        while len(defective) < count and guard < 100 * count + 100:
            guard += 1
            center = qubit_list[int(self._rng.integers(len(qubit_list)))]
            region = sorted(sample_defect_region(center, qubits, self.region_radius))
            self._rng.shuffle(region)
            for q in region:
                if len(defective) >= count:
                    break
                defective.add(q)
        return defective
