"""Dynamic defect models and detection (sections II-B and VII-A)."""

from repro.defects.models import CosmicRayModel, DefectEvent, sample_defect_region
from repro.defects.detector import DefectDetector

__all__ = [
    "CosmicRayModel",
    "DefectEvent",
    "sample_defect_region",
    "DefectDetector",
]
