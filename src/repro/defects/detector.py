"""Dynamic defect detection with configurable unreliability (fig. 14b).

Real detectors locate defects statistically and make mistakes; the paper
evaluates robustness with false-positive and false-negative probabilities
of 0.01.  :class:`DefectDetector` filters a ground-truth defect set
accordingly: missed defects stay in the code untreated (their noise keeps
acting) while false positives remove healthy qubits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.surface.lattice import Coord

__all__ = ["DefectDetector"]


@dataclass
class DefectDetector:
    """Imperfect defect detector.

    Attributes:
        false_negative: probability a true defect goes unreported.
        false_positive: probability a healthy qubit is reported defective.
        seed: RNG seed.
    """

    false_negative: float = 0.0
    false_positive: float = 0.0
    seed: int | None = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def report(
        self, true_defects: set[Coord], healthy: set[Coord]
    ) -> tuple[set[Coord], set[Coord]]:
        """Detector output for a ground-truth defect set.

        Returns ``(reported, missed)``: the set handed to the deformation
        unit and the true defects it failed to flag (which keep injecting
        defect-level noise untreated).
        """
        reported: set[Coord] = set()
        missed: set[Coord] = set()
        for q in sorted(true_defects):
            if self._rng.random() < self.false_negative:
                missed.add(q)
            else:
                reported.add(q)
        for q in sorted(healthy - true_defects):
            if self.false_positive > 0 and self._rng.random() < self.false_positive:
                reported.add(q)
        return reported, missed
