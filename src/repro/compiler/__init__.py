"""Quantum program generators and resource models (section VII-A)."""

from repro.compiler.programs import (
    Program,
    simon,
    ripple_carry_adder,
    qft,
    grover,
    PAPER_BENCHMARKS,
    paper_benchmark,
)

__all__ = [
    "Program",
    "simon",
    "ripple_carry_adder",
    "qft",
    "grover",
    "PAPER_BENCHMARKS",
    "paper_benchmark",
]
