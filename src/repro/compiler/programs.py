"""Benchmark quantum programs (section VII-A) and their logical resources.

Two layers:

* **Generators** (``simon``, ``ripple_carry_adder``, ``qft``,
  ``grover``) build programs from first principles — gate-count formulas
  derived from the cited constructions (Takahashi-Kunihiro adder,
  Coppersmith approximate QFT with gridsynth-style rotation synthesis,
  Grover iterations ∝ √2ⁿ).  The formulas reproduce Table II's CX/T
  counts to within a few percent.
* **PAPER_BENCHMARKS** pins the exact workload parameters of Table II
  (name, qubits, CX count, T count, evaluated distances) so the Table II
  harness reproduces the paper's rows from the same inputs the authors
  used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Program",
    "simon",
    "ripple_carry_adder",
    "qft",
    "grover",
    "PAPER_BENCHMARKS",
    "paper_benchmark",
]


@dataclass(frozen=True)
class Program:
    """A compiled quantum program's logical resource profile.

    ``distances`` lists the code distances Table II evaluates the
    program at (two per row: targeting 1 % and 0.1 % retry risk).
    """

    name: str
    num_qubits: int
    cx_count: int
    t_count: int
    repetitions: int = 1
    distances: tuple[int, ...] = ()

    @property
    def gate_volume(self) -> int:
        return self.cx_count + self.t_count


def simon(n: int, reps: int) -> Program:
    """Simon's algorithm: Clifford-only oracle, ≈ 0.75 n CNOTs/iteration."""
    cx = round(0.755 * n) * reps
    return Program(name=f"Simon-{n}-{reps}", num_qubits=n, cx_count=cx, t_count=0,
                   repetitions=reps)


def ripple_carry_adder(n: int, reps: int) -> Program:
    """Takahashi-Kunihiro linear-size adder: ≈ 8n CX and 7n T per add."""
    return Program(
        name=f"RCA-{n}-{reps}",
        num_qubits=n,
        cx_count=8 * n * reps,
        t_count=7 * n * reps,
        repetitions=reps,
    )


def qft(n: int, reps: int) -> Program:
    """Quantum Fourier Transform with synthesised controlled rotations.

    n(n−1)/2 controlled rotations per layer; each costs ~2 CX plus a
    rotation synthesis whose T count grows with the precision needed for
    the full circuit (calibrated to Table II: ≈ 158 n T per rotation).
    """
    rotations = n * (n - 1) // 2 * reps
    cx = round(2.125 * rotations)
    t = round(158 * n) * rotations
    return Program(name=f"QFT-{n}-{reps}", num_qubits=n, cx_count=cx, t_count=t,
                   repetitions=reps)


def grover(n: int, reps: int) -> Program:
    """Grover search: ⌈(π/4)√2ⁿ⌉ iterations of oracle + diffusion."""
    iterations = max(1, math.ceil(math.pi / 4 * math.sqrt(2**n))) * reps
    cx = round(4.5 * n) * iterations
    # Multi-controlled phase per iteration, synthesised to T gates.
    t = round(32 * n * math.sqrt(2**n)) * reps * int(math.sqrt(iterations / reps) + 1)
    return Program(name=f"Grover-{n}-{reps}", num_qubits=n, cx_count=cx, t_count=t,
                   repetitions=reps)


#: Table II's exact workloads: (#CX, #T, #qubits, evaluated distances).
PAPER_BENCHMARKS: dict[str, Program] = {
    p.name: p
    for p in [
        Program("Simon-400-1000", 400, int(3.02e5), 0, 1000, (19, 21)),
        Program("Simon-900-1500", 900, int(1.01e6), 0, 1500, (21, 23)),
        Program("RCA-225-500", 225, int(8.96e5), int(7.84e5), 500, (21, 23)),
        Program("RCA-729-100", 729, int(5.82e5), int(5.10e5), 100, (21, 23)),
        Program("QFT-25-160", 25, int(1.02e5), int(1.87e8), 160, (23, 25)),
        Program("QFT-100-20", 100, int(2.30e5), int(1.58e9), 20, (25, 27)),
        Program("Grover-9-80", 9, int(1.36e5), int(1.99e8), 80, (23, 25)),
        Program("Grover-16-2", 16, int(4.29e5), int(1.13e9), 2, (25, 27)),
    ]
}


def paper_benchmark(name: str) -> Program:
    """Look up one of Table II's workloads by name."""
    if name not in PAPER_BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; choices: {sorted(PAPER_BENCHMARKS)}"
        )
    return PAPER_BENCHMARKS[name]
