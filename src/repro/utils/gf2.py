"""Linear algebra over GF(2), with a bit-packed fast path.

All matrices are ``numpy`` arrays of dtype ``uint8`` whose entries are 0/1.
Rows are vectors; a matrix with shape ``(m, n)`` holds ``m`` vectors of
length ``n``.  These routines back the stabilizer-code analysis in
:mod:`repro.codes` (rank counting, logical-operator extraction, membership
tests for stabilizer groups).

Elimination-heavy entry points (:func:`gf2_gaussian_elimination`,
:func:`gf2_row_reduce`, :func:`gf2_rank`) transparently switch to a
word-packed backend once a matrix is at least :data:`PACKED_MIN_COLS`
columns wide: rows are packed 64 bits per ``np.uint64`` word
(``np.packbits`` little-endian layout), so each row XOR touches ``n/64``
words instead of ``n`` bytes.  Pivot selection and elimination order are
identical to the dense loop, hence so are the outputs — pinned by tests
that compare both backends on random matrices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "gf2_gaussian_elimination",
    "gf2_rank",
    "gf2_nullspace",
    "gf2_solve",
    "gf2_in_rowspace",
    "gf2_row_reduce",
    "gf2_independent_rows",
    "gf2_pack",
    "gf2_pack_rows",
    "gf2_unpack",
    "gf2_xor_csr",
    "PackedBits",
]

#: Matrices at least this many columns wide use the packed backend.
PACKED_MIN_COLS = 256


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    arr = np.asarray(matrix, dtype=np.uint8) % 2
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    return arr


def gf2_pack(matrix: np.ndarray) -> np.ndarray:
    """Pack 0/1 rows into little-endian ``uint64`` words (64 bits each)."""
    return _pack_words(_as_gf2(matrix))


def gf2_pack_rows(matrix: np.ndarray) -> np.ndarray:
    """Pack rows into ``uint64`` words, any nonzero entry a set bit.

    Unlike :func:`gf2_pack` there is no mod-2 canonicalisation: an
    entry contributes a set bit iff it is nonzero (``np.packbits``
    boolean semantics).  That is the convention syndrome rows use — a
    detector fired iff its byte is nonzero — so packing commutes with
    defect extraction and the packed words are a faithful dedup key
    for ``decode_batch``.
    """
    a = np.asarray(matrix, dtype=np.uint8)
    if a.ndim == 1:
        a = a.reshape(1, -1)
    return _pack_words(a)


def _pack_words(a: np.ndarray) -> np.ndarray:
    packed_bytes = np.packbits(a, axis=1, bitorder="little")
    pad = (-packed_bytes.shape[1]) % 8
    if pad:
        packed_bytes = np.pad(packed_bytes, ((0, 0), (0, pad)))
    return np.ascontiguousarray(packed_bytes).view(np.uint64)


def gf2_unpack(packed: np.ndarray, num_cols: int) -> np.ndarray:
    """Inverse of :func:`gf2_pack` (truncated back to ``num_cols``)."""
    as_bytes = np.ascontiguousarray(packed).view(np.uint8)
    return np.unpackbits(as_bytes, axis=1, bitorder="little")[:, :num_cols]


@dataclass(frozen=True)
class PackedBits:
    """A ``(num_rows, num_bits)`` bit matrix packed along axis 1.

    ``words`` has shape ``(num_rows, ceil(num_bits / 64))`` and dtype
    ``uint64`` in the :func:`gf2_pack` little-endian layout; bits past
    ``num_bits`` in the last word are zero.  This is the wire format of
    the packed sampler→decoder flow: the frame engine emits detector
    samples as one row per *detector* with one bit per *shot*, and
    ``Decoder.decode_batch`` consumes that object directly — per-shot
    syndrome rows only ever materialise bit-packed (via
    :meth:`transpose`), never as a ``(shots, detectors)`` uint8 array.
    """

    words: np.ndarray
    num_bits: int

    @property
    def num_rows(self) -> int:
        return int(self.words.shape[0])

    @classmethod
    def pack(cls, matrix: np.ndarray) -> "PackedBits":
        """Pack a 0/1 ``(rows, bits)`` array (rows stay rows)."""
        a = _as_gf2(matrix)
        return cls(gf2_pack(a), a.shape[1])

    def unpack(self) -> np.ndarray:
        """Back to a ``(num_rows, num_bits)`` uint8 array."""
        if self.num_rows == 0 or self.num_bits == 0:
            return np.zeros((self.num_rows, self.num_bits), dtype=np.uint8)
        return gf2_unpack(self.words, self.num_bits)

    def transpose(self, block: int = 4096) -> "PackedBits":
        """The packed transpose, built in bounded ``block``-bit slices.

        Word-aligned column blocks are unpacked to ``(rows, block)``
        uint8 and re-packed row-major, so peak intermediate memory is
        ``num_rows × block`` bytes regardless of ``num_bits``.
        """
        block = max(64, (block // 64) * 64)
        out = np.zeros(
            (self.num_bits, (self.num_rows + 63) // 64), dtype=np.uint64
        )
        if self.num_rows == 0:
            return PackedBits(out, self.num_rows)
        for start in range(0, self.num_bits, block):
            stop = min(start + block, self.num_bits)
            bits = gf2_unpack(
                self.words[:, start // 64 : (stop + 63) // 64], stop - start
            )
            out[start:stop] = gf2_pack(bits.T)
        return PackedBits(out, self.num_rows)

    def transposed(self) -> "PackedBits":
        """:meth:`transpose`, memoised on the instance.

        Bitplanes on the sampler→decoder wire are write-once, so the
        block transpose is computed at most once per object no matter
        how many times it is decoded (benchmark reps and throughput
        loops re-decode one plane; only the first call pays for the
        transpose).
        """
        cached: PackedBits | None = self.__dict__.get("_transposed")
        if cached is None:
            cached = self.transpose()
            # Frozen dataclass: route around the frozen __setattr__ for
            # the private memo slot (not a field, so it stays out of
            # __eq__ and __repr__).
            object.__setattr__(self, "_transposed", cached)
        return cached

    def column_parity(self) -> np.ndarray:
        """XOR over rows, per bit column: a ``(num_bits,)`` uint8 vector."""
        if self.num_rows == 0:
            return np.zeros(self.num_bits, dtype=np.uint8)
        folded = np.bitwise_xor.reduce(self.words, axis=0, keepdims=True)
        return gf2_unpack(folded, self.num_bits)[0]


def gf2_xor_csr(
    packed: np.ndarray, indices: np.ndarray, offsets: np.ndarray
) -> np.ndarray:
    """XOR-reduce groups of packed rows: a GF(2) sparse-matrix product.

    ``indices``/``offsets`` describe a CSR matrix ``S`` over GF(2) (row
    ``i`` selects ``indices[offsets[i]:offsets[i+1]]``); the result is
    ``S @ packed`` on bit-packed words, i.e. row ``i`` is the XOR of the
    selected rows of ``packed``.  Every group must be non-empty (point
    empty groups at a dedicated all-zero row; ``np.bitwise_xor.reduceat``
    cannot represent an empty reduction).
    """
    n_groups = len(offsets) - 1
    if n_groups <= 0 or packed.shape[0] == 0:
        return np.zeros((max(n_groups, 0), packed.shape[1]), dtype=packed.dtype)
    return np.bitwise_xor.reduceat(packed[indices], offsets[:-1], axis=0)


def _packed_elimination(
    a: np.ndarray, *, reduce: bool
) -> tuple[np.ndarray, list[int]]:
    """Forward (or full Gauss–Jordan) elimination on packed words.

    Mirrors the dense loop exactly: first row at or below the cursor
    with the pivot bit set is swapped up, then XORed into every row
    below (and above, when ``reduce``) that has the bit set.
    """
    rows, cols = a.shape
    packed = gf2_pack(a)
    pivot_cols: list[int] = []
    r = 0
    one = np.uint64(1)
    for c in range(cols):
        if r >= rows:
            break
        word, bit = divmod(c, 64)
        mask = one << np.uint64(bit)
        column_bits = (packed[r:, word] & mask) != 0
        hit = int(np.argmax(column_bits))
        if not column_bits[hit]:
            continue
        pivot = r + hit
        if pivot != r:
            packed[[r, pivot]] = packed[[pivot, r]]
        below = np.nonzero((packed[r + 1 :, word] & mask) != 0)[0]
        if below.size:
            packed[below + r + 1] ^= packed[r]
        if reduce:
            above = np.nonzero((packed[:r, word] & mask) != 0)[0]
            if above.size:
                packed[above] ^= packed[r]
        pivot_cols.append(c)
        r += 1
    return gf2_unpack(packed, cols), pivot_cols


def gf2_gaussian_elimination(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row-echelon form of ``matrix`` over GF(2).

    Returns ``(echelon, pivot_columns)``.  The input is not modified.
    Wide matrices are eliminated on bit-packed words (same output).
    """
    a = _as_gf2(matrix)
    rows, cols = a.shape
    if cols >= PACKED_MIN_COLS:
        return _packed_elimination(a, reduce=False)
    a = a.copy()
    pivot_cols: list[int] = []
    r = 0
    for c in range(cols):
        if r >= rows:
            break
        pivot = None
        for i in range(r, rows):
            if a[i, c]:
                pivot = i
                break
        if pivot is None:
            continue
        if pivot != r:
            a[[r, pivot]] = a[[pivot, r]]
        below = np.nonzero(a[r + 1 :, c])[0]
        if below.size:
            a[below + r + 1] ^= a[r]
        pivot_cols.append(c)
        r += 1
    return a, pivot_cols


def gf2_row_reduce(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form (RREF) of ``matrix`` over GF(2)."""
    a = _as_gf2(matrix)
    if a.shape[1] >= PACKED_MIN_COLS:
        return _packed_elimination(a, reduce=True)
    a, pivot_cols = gf2_gaussian_elimination(a)
    for r, c in enumerate(pivot_cols):
        above = np.nonzero(a[:r, c])[0]
        if above.size:
            a[above] ^= a[r]
    return a, pivot_cols


def gf2_rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2)."""
    if np.asarray(matrix).size == 0:
        return 0
    _, pivots = gf2_gaussian_elimination(matrix)
    return len(pivots)


def gf2_nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis for the right nullspace ``{v : M v = 0}`` over GF(2).

    Returns a matrix whose rows are basis vectors (possibly zero rows
    omitted; an empty nullspace yields shape ``(0, n)``).
    """
    a = _as_gf2(matrix)
    rows, cols = a.shape
    rref, pivots = gf2_row_reduce(a)
    pivot_set = set(pivots)
    free_cols = [c for c in range(cols) if c not in pivot_set]
    basis = np.zeros((len(free_cols), cols), dtype=np.uint8)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        for r, p in enumerate(pivots):
            if rref[r, free]:
                basis[i, p] = 1
    return basis


def gf2_solve(matrix: np.ndarray, target: np.ndarray) -> np.ndarray | None:
    """Solve ``x @ matrix == target`` over GF(2) for a row-combination ``x``.

    ``matrix`` has shape ``(m, n)``; ``target`` has length ``n``.  Returns a
    length-``m`` 0/1 vector selecting rows whose XOR equals ``target``, or
    ``None`` when ``target`` is not in the rowspace.
    """
    a = _as_gf2(matrix)
    t = np.asarray(target, dtype=np.uint8).reshape(-1) % 2
    m, n = a.shape
    if t.shape[0] != n:
        raise ValueError(f"target length {t.shape[0]} != matrix columns {n}")
    # Augment with an identity to track the row combination.
    aug = np.concatenate([a, np.eye(m, dtype=np.uint8)], axis=1)
    work = np.concatenate([t, np.zeros(m, dtype=np.uint8)])
    r = 0
    for c in range(n):
        pivot = None
        for i in range(r, m):
            if aug[i, c]:
                pivot = i
                break
        if pivot is None:
            continue
        if pivot != r:
            aug[[r, pivot]] = aug[[pivot, r]]
        for i in range(m):
            if i != r and aug[i, c]:
                aug[i] ^= aug[r]
        if work[c]:
            work ^= aug[r]
        r += 1
    if work[:n].any():
        return None
    return work[n:]


def gf2_in_rowspace(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """Whether ``vector`` lies in the GF(2) rowspace of ``matrix``."""
    a = _as_gf2(matrix)
    if a.size == 0:
        return not np.asarray(vector, dtype=np.uint8).any()
    return gf2_solve(a, vector) is not None


def gf2_independent_rows(matrix: np.ndarray) -> list[int]:
    """Indices of a maximal linearly-independent subset of rows.

    Greedy from the top: a row is kept iff it is independent of the rows
    kept before it, so the result is stable for callers that put preferred
    generators first.
    """
    a = _as_gf2(matrix)
    kept: list[int] = []
    basis: list[np.ndarray] = []
    for i in range(a.shape[0]):
        candidate = a[i].copy()
        for b in basis:
            lead = int(np.argmax(b))
            if candidate[lead]:
                candidate ^= b
        if candidate.any():
            # Re-reduce into echelon order for subsequent eliminations.
            basis.append(candidate)
            basis.sort(key=lambda row: int(np.argmax(row)))
            kept.append(i)
    return kept
