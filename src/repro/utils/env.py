"""One grammar for every ``REPRO_*`` environment toggle.

Before this module each toggle hand-rolled its own ``os.environ.get``
check, and the semantics disagreed: ``REPRO_PURE_BLOSSOM=0`` used to
*enable* pure mode (any non-empty string was truthy).  Every toggle now
parses through one documented grammar:

* truthy: ``1``, ``true``, ``yes``, ``on``
* falsy: ``0``, ``false``, ``no``, ``off``, and the empty string
* matching is case-insensitive and ignores surrounding whitespace
* unset means the caller's default
* anything else raises :class:`ValueError` — a misspelled toggle must
  fail loudly, not silently run the wrong configuration

The repo's toggles:

==========================  ==========================================
``REPRO_PURE_BLOSSOM``      flag — force the pure-Python blossom
                            engine even when the compiled kernel built
``REPRO_STORE``             path — directory enabling the process-wide
                            artifact store (empty/unset disables)
``REPRO_BENCH_SCALE``       float — scales benchmark shot counts
==========================  ==========================================
"""

from __future__ import annotations

import os

__all__ = ["env_flag", "env_float", "env_str"]

_TRUTHY = frozenset({"1", "true", "yes", "on"})
_FALSY = frozenset({"", "0", "false", "no", "off"})


def env_flag(name: str, default: bool = False) -> bool:
    """Parse a boolean toggle per the module grammar."""
    raw = os.environ.get(name)
    if raw is None:
        return default
    value = raw.strip().lower()
    if value in _TRUTHY:
        return True
    if value in _FALSY:
        return False
    raise ValueError(
        f"{name}={raw!r} is not a recognised flag value; use one of "
        f"{sorted(_TRUTHY)} / {sorted(_FALSY)} (case-insensitive)"
    )


def env_str(name: str, default: str | None = None) -> str | None:
    """A string-valued variable; empty or unset means ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    return raw


def env_float(name: str, default: float) -> float:
    """A float-valued variable; empty or unset means ``default``."""
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(
            f"{name}={raw!r} is not a valid float"
        ) from None
