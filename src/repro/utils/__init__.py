"""Shared low-level utilities (GF(2) linear algebra, small helpers)."""

from repro.utils.gf2 import (
    gf2_gaussian_elimination,
    gf2_rank,
    gf2_nullspace,
    gf2_solve,
    gf2_in_rowspace,
    gf2_row_reduce,
    gf2_independent_rows,
    gf2_pack,
    gf2_unpack,
)

__all__ = [
    "gf2_gaussian_elimination",
    "gf2_rank",
    "gf2_nullspace",
    "gf2_solve",
    "gf2_in_rowspace",
    "gf2_row_reduce",
    "gf2_independent_rows",
    "gf2_pack",
    "gf2_unpack",
]
