"""Artifact store: atomic persistence, verification, quarantine."""

import json
import os
import threading

import numpy as np
import pytest

from repro.sim import NoiseModel
from repro.store import (
    ArtifactStore,
    atomic_write_bytes,
    atomic_write_text,
    durable_append,
    get_store,
    key_digest,
    set_store,
    using_store,
)

pytestmark = pytest.mark.fault_injection


class TestAtomicWrites:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "out.bin"
        atomic_write_bytes(path, b"abc")
        assert path.read_bytes() == b"abc"
        atomic_write_text(path, "later")
        assert path.read_text() == "later"

    def test_no_temp_debris(self, tmp_path):
        path = tmp_path / "out.json"
        atomic_write_text(path, "x" * 4096)
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_publish_preserves_old_content(self, tmp_path, monkeypatch):
        path = tmp_path / "report.json"
        atomic_write_text(path, "old")

        # A crash at the publish step (here: os.replace failing) must
        # leave the committed file untouched and clean up its temp.
        def boom(src, dst):
            raise OSError("simulated publish failure")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            atomic_write_text(path, "new")
        monkeypatch.undo()
        assert path.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["report.json"]

    def test_durable_append_lines(self, tmp_path):
        log = tmp_path / "log.jsonl"
        durable_append(log, "one")
        durable_append(log, "two\n")
        assert log.read_text() == "one\ntwo\n"


class TestKeyDigest:
    def test_stable_across_set_order(self):
        a = key_digest(("k", frozenset([(1, "x"), (2, "y"), (3, "z")])))
        b = key_digest(("k", frozenset([(3, "z"), (1, "x"), (2, "y")])))
        assert a == b

    def test_distinguishes_content(self):
        assert key_digest(("a", 1)) != key_digest(("a", 2))
        assert key_digest(("a", 1.0)) != key_digest(("a", 1.0000000001))

    def test_dataclass_fields_participate(self):
        assert key_digest(NoiseModel.uniform(1e-3)) != key_digest(
            NoiseModel.uniform(2e-3)
        )
        assert key_digest(NoiseModel.uniform(1e-3)) == key_digest(
            NoiseModel.uniform(1e-3)
        )

    def test_collection_types_not_conflated(self):
        assert key_digest((1, 2)) != key_digest(frozenset([1, 2]))


class TestArtifactStore:
    def test_miss_then_hit(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.get("dem", ("k",)) is None
        store.put("dem", ("k",), {"v": 1})
        assert store.get("dem", ("k",)) == {"v": 1}
        assert store.stats()["hits"] == 1
        assert store.stats()["misses"] == 1

    def test_numpy_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        dist = np.arange(9, dtype=np.float64).reshape(3, 3)
        parity = np.eye(3, dtype=np.uint8)
        store.put("path_matrices", "m", (dist, parity))
        got_dist, got_parity = store.get("path_matrices", "m")
        np.testing.assert_array_equal(got_dist, dist)
        np.testing.assert_array_equal(got_parity, parity)
        assert got_dist.dtype == np.float64 and got_parity.dtype == np.uint8

    def test_get_or_build_builds_once(self, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []
        build = lambda: calls.append(1) or 41 + len(calls)  # noqa: E731
        assert store.get_or_build("x", "k", build) == 42
        assert store.get_or_build("x", "k", build) == 42
        assert len(calls) == 1

    def _entry_file(self, store):
        files = list((store.root / "objects").rglob("*.art"))
        assert len(files) == 1
        return files[0]

    def test_bitflip_quarantined_and_rebuilt(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("dem", "k", list(range(100)))
        entry = self._entry_file(store)
        raw = bytearray(entry.read_bytes())
        raw[-10] ^= 0x40  # flip one payload bit
        entry.write_bytes(bytes(raw))

        assert store.get("dem", "k") is None  # detected, not crashed
        assert not entry.exists()  # moved aside
        quarantined = list((tmp_path / "quarantine").glob("*.art"))
        assert len(quarantined) == 1
        reason = quarantined[0].with_suffix(".reason").read_text()
        assert "checksum" in reason
        # The caller's rebuild path repopulates the same key.
        assert store.get_or_build("dem", "k", lambda: "rebuilt") == "rebuilt"
        assert store.get("dem", "k") == "rebuilt"
        assert store.corrupt == 1

    def test_truncation_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("dem", "k", b"x" * 1000)
        entry = self._entry_file(store)
        entry.write_bytes(entry.read_bytes()[:-100])
        assert store.get("dem", "k") is None
        assert "truncated" in next(
            (tmp_path / "quarantine").glob("*.reason")
        ).read_text()

    def test_empty_and_garbage_files_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for content in (b"", b"not a header at all\x00\xff"):
            store.put("dem", "k", 1)
            entry = self._entry_file(store)
            entry.write_bytes(content)
            assert store.get("dem", "k") is None
        assert store.corrupt == 2

    def test_header_key_mismatch_rejected(self, tmp_path):
        # An entry copied to the wrong path must not be trusted.
        store = ArtifactStore(tmp_path)
        store.put("dem", "a", "value-for-a")
        entry = self._entry_file(store)
        wrong = store._entry_path("dem", key_digest("b"))
        wrong.parent.mkdir(parents=True, exist_ok=True)
        entry.rename(wrong)
        assert store.get("dem", "b") is None
        assert store.corrupt == 1

    def test_unwritable_store_degrades_to_miss(self, tmp_path):
        # A plain file squatting on objects/ makes every entry path
        # uncreatable — the environment failure mode (root-proof, unlike
        # chmod).  The cache must degrade to a pass-through, not crash.
        root = tmp_path / "store"
        root.mkdir()
        (root / "objects").write_text("not a directory")
        store = ArtifactStore(root)
        assert store.put("dem", "k", 1) is False
        assert store.get("dem", "k") is None
        assert store.get_or_build("dem", "k", lambda: 7) == 7
        assert store.write_errors > 0

    def test_strict_store_raises_on_write_error(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "objects").write_text("not a directory")
        with pytest.raises(OSError):
            ArtifactStore(root, strict=True).put("dem", "k", 1)

    def test_header_json_is_first_line(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("dem", "k", {"payload": True})
        entry = self._entry_file(store)
        header = json.loads(entry.read_bytes().split(b"\n", 1)[0])
        assert header["kind"] == "dem"
        assert header["payload_len"] > 0


class TestGlobalStore:
    @pytest.fixture(autouse=True)
    def _pristine_store_config(self, monkeypatch):
        import repro.store as store_mod

        monkeypatch.setattr(store_mod, "_ACTIVE_STORE", store_mod._UNSET)
        monkeypatch.setattr(store_mod, "_ENV_STORE", None)
        monkeypatch.delenv("REPRO_STORE", raising=False)

    def test_set_and_clear(self, tmp_path):
        set_store(tmp_path)
        store = get_store()
        assert isinstance(store, ArtifactStore)
        set_store(None)
        assert get_store() is None

    def test_using_store_scopes_and_restores(self, tmp_path):
        assert get_store() is None
        with using_store(tmp_path) as store:
            assert get_store() is store
        assert get_store() is None

    def test_env_store_memoised(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path))
        assert get_store() is get_store()

    def test_concurrent_writers_last_wins_complete_file(self, tmp_path):
        store = ArtifactStore(tmp_path)
        errors = []

        def write(i):
            try:
                store.put("dem", "shared", list(range(i, i + 50)))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=write, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        value = store.get("dem", "shared")
        assert value is not None and len(value) == 50
