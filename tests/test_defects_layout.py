"""Tests for defect models, detection, layout generation and routing."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.defects import CosmicRayModel, DefectDetector, sample_defect_region
from repro.layout import LayoutGenerator, LogicalLayout, Router
from repro.layout.generator import block_probability
from repro.surface import rotated_surface_code


class TestDefectModel:
    def test_region_radius(self):
        patch = rotated_surface_code(9)
        qubits = patch.all_qubit_coords()
        region = sample_defect_region((9, 9), qubits, radius=2)
        assert (9, 9) in region
        assert all(max(abs(x - 9), abs(y - 9)) <= 4 for x, y in region)
        # Interior strike affects a large neighbourhood (≈ 24 qubits + centre).
        assert len(region) >= 20

    def test_duration_cycles_matches_paper(self):
        model = CosmicRayModel()
        assert model.duration_cycles == 25_000  # 25 ms at 1 µs cycles

    def test_expected_events(self):
        model = CosmicRayModel()
        # 26 qubits for 10 s should average one event (the paper's rate).
        expected = model.expected_events(26, int(10 / 1e-6))
        assert expected == pytest.approx(1.0)

    def test_sample_events_reproducible(self):
        qubits = set(rotated_surface_code(5).all_qubit_coords())
        a = CosmicRayModel(seed=3).sample_events(qubits, 10_000_000)
        b = CosmicRayModel(seed=3).sample_events(qubits, 10_000_000)
        assert [e.center for e in a] == [e.center for e in b]

    def test_event_active_window(self):
        from repro.defects.models import DefectEvent

        e = DefectEvent((1, 1), 100, 50, frozenset({(1, 1)}))
        assert e.active_at(100) and e.active_at(149)
        assert not e.active_at(99) and not e.active_at(150)

    def test_sample_defective_qubits_count(self):
        qubits = set(rotated_surface_code(9).all_qubit_coords())
        got = CosmicRayModel(seed=1).sample_defective_qubits(qubits, 10)
        assert len(got) == 10
        assert got <= qubits


class TestDefectDetector:
    def test_perfect_detector(self):
        det = DefectDetector(seed=0)
        reported, missed = det.report({(1, 1)}, {(3, 3)})
        assert reported == {(1, 1)} and missed == set()

    def test_false_negative(self):
        det = DefectDetector(false_negative=1.0, seed=0)
        reported, missed = det.report({(1, 1)}, set())
        assert reported == set() and missed == {(1, 1)}

    def test_false_positive(self):
        det = DefectDetector(false_positive=1.0, seed=0)
        reported, _ = det.report(set(), {(3, 3)})
        assert (3, 3) in reported

    def test_rates_statistical(self):
        det = DefectDetector(false_negative=0.3, seed=7)
        true = {(x, 1) for x in range(1, 2001, 2)}
        _, missed = det.report(true, set())
        assert abs(len(missed) / len(true) - 0.3) < 0.05


class TestLayoutGenerator:
    def test_paper_worked_example(self):
        """Section VI: d=27, ρ=0.1/26 Hz, T=25 ms, D=4 → Δd=4, p≈0.0089."""
        p = block_probability(
            27, 4, event_rate_hz_per_qubit=0.1 / 26, duration_s=25e-3, defect_size=4
        )
        assert p == pytest.approx(0.0089, abs=5e-4)
        gen = LayoutGenerator()
        delta, p_chosen = gen.choose_delta_d(27)
        assert delta == 4
        assert p_chosen < 0.01

    def test_delta_d_zero_blocks_too_often(self):
        p = block_probability(
            27, 0, event_rate_hz_per_qubit=0.1 / 26, duration_s=25e-3, defect_size=4
        )
        assert p > 0.01

    def test_block_probability_monotone_in_delta(self):
        ps = [
            block_probability(
                21, delta, event_rate_hz_per_qubit=0.1 / 26, duration_s=25e-3,
                defect_size=4,
            )
            for delta in (0, 4, 8, 12)
        ]
        assert ps == sorted(ps, reverse=True)

    def test_choose_distance_monotone_in_risk(self):
        gen = LayoutGenerator()
        d_loose = gen.choose_distance(100, 1e6, 0.1)
        d_tight = gen.choose_distance(100, 1e6, 1e-4)
        assert d_tight >= d_loose

    def test_spec_counts(self):
        gen = LayoutGenerator()
        spec = gen.generate(10, 1e6, d=9)
        assert spec.rows * spec.cols >= 10
        assert spec.inter_space == 9 + spec.delta_d
        assert spec.physical_qubits() > 0

    def test_forced_inter_space(self):
        gen = LayoutGenerator()
        spec = gen.generate(10, 1e6, d=9, inter_space=18)
        assert spec.inter_space == 18

    @given(st.integers(3, 41))
    @settings(max_examples=20)
    def test_block_probability_in_unit_interval(self, d):
        p = block_probability(
            d, 4, event_rate_hz_per_qubit=0.1 / 26, duration_s=25e-3, defect_size=4
        )
        assert 0.0 <= p <= 1.0


class TestRouting:
    def _spec(self, n=16, d=5):
        return LayoutGenerator().generate(n, 1e5, d=d)

    def test_single_gate_routes(self):
        layout = LogicalLayout(spec=self._spec())
        result = Router(layout).schedule([(0, 15)])
        assert result.completed == 1 and result.stalled == 0

    def test_parallel_gates_share_timestep(self):
        layout = LogicalLayout(spec=self._spec())
        result = Router(layout).schedule([(0, 1), (14, 15)])
        assert result.timesteps == 1

    def test_conflicting_gates_serialise(self):
        layout = LogicalLayout(spec=self._spec())
        result = Router(layout).schedule([(0, 1), (1, 2)])
        assert result.completed == 2
        assert result.timesteps == 2  # qubit 1 is busy in step 1

    def test_blocked_cells_removed_from_graph(self):
        spec = self._spec()
        layout = LogicalLayout(spec=spec, blocked_cells={(0, 0)})
        graph = layout.channel_graph()
        assert not graph.has_edge((0, 0), (0, 1))
        assert not graph.has_edge((0, 0), (1, 0))

    def test_fully_blocked_stalls(self):
        spec = self._spec(n=9, d=5)
        blocked = {(r, c) for r in range(spec.rows) for c in range(spec.cols)}
        layout = LogicalLayout(spec=spec, blocked_cells=blocked)
        result = Router(layout).schedule([(0, 8)])
        assert result.stalled == 1

    def test_cell_of_bounds(self):
        layout = LogicalLayout(spec=self._spec(n=4))
        with pytest.raises(ValueError):
            layout.cell_of(99)
