"""Tests for Algorithm 1 (Defect Removal) and Algorithm 2 (Adaptive Enlargement)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import check_code, code_distance
from repro.deform import (
    CodeDeformationUnit,
    adaptive_enlargement,
    balancing,
    defect_removal,
)
from repro.surface import rotated_surface_code


class TestDefectRemoval:
    def test_mixed_defects(self):
        patch = rotated_surface_code(5)
        report = defect_removal(patch, [(5, 5), (4, 6), (1, 5)])
        check_code(patch.code)
        assert len(report.handled) == 3
        actions = dict(report.handled)
        assert actions[(5, 5)] == "DataQ_RM"
        assert actions[(4, 6)] == "SyndromeQ_RM"
        assert actions[(1, 5)].startswith("PatchQ_RM")

    def test_distance_loss_reported(self):
        patch = rotated_surface_code(5)
        report = defect_removal(patch, [(5, 5)])
        assert report.distance_before == (5, 5)
        assert report.distance_after == (4, 4)
        assert report.distance_loss == (1, 1)

    def test_idempotent(self):
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        report = defect_removal(patch, [(5, 5)])
        assert report.skipped == [(5, 5)]
        check_code(patch.code)

    def test_corner_uses_balancing(self):
        patch = rotated_surface_code(5)
        report = defect_removal(patch, [(1, 1)])
        (coord, action), = report.handled
        assert action.startswith("PatchQ_RM[fix=")
        check_code(patch.code)

    def test_balancing_beats_or_ties_either_option(self):
        patch = rotated_surface_code(5)
        basis = balancing(patch, (9, 9))
        assert basis in ("X", "Z")

    def test_rejects_non_lattice_coord(self):
        patch = rotated_surface_code(5)
        with pytest.raises(ValueError):
            defect_removal(patch, [(1, 2)])

    def test_cluster_of_defects(self):
        """A 2x2 defect cluster (multi-bit burst, section II-B)."""
        patch = rotated_surface_code(7)
        cluster = [(5, 5), (5, 7), (7, 5), (7, 7)]
        defect_removal(patch, cluster)
        check_code(patch.code)
        dx, dz = code_distance(patch.code)
        assert min(dx, dz) >= 4

    def test_unused_ancilla_defect_recorded(self):
        patch = rotated_surface_code(5)
        report = defect_removal(patch, [(0, 0)])
        assert report.skipped == [(0, 0)]
        assert (0, 0) in patch.defective_ancillas

    @given(
        st.sets(
            st.sampled_from(
                [(x, y) for x in range(1, 14, 2) for y in range(1, 14, 2)]
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_random_data_defects_keep_validity(self, defects):
        patch = rotated_surface_code(7)
        try:
            defect_removal(patch, defects)
        except ValueError:
            return  # pathological pattern disconnecting the patch
        check_code(patch.code)
        dx, dz = code_distance(patch.code)
        assert dx >= 1 and dz >= 1


class TestAdaptiveEnlargement:
    def test_restores_after_interior_removal(self):
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        report = adaptive_enlargement(patch)
        assert report.restored
        assert report.final_distance >= (5, 5)
        check_code(patch.code)

    def test_no_growth_when_distance_intact(self):
        patch = rotated_surface_code(5)
        report = adaptive_enlargement(patch)
        assert report.restored
        assert report.layers_added == []
        assert report.qubits_added == 0

    def test_grows_away_from_defective_layer(self):
        """fig. 9(c): prospective-layer defects steer the growth side."""
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        report = adaptive_enlargement(patch, extra_defects={(11, 5), (11, 7)})
        assert report.restored
        assert "w" in report.layers_added or "e" not in report.layers_added

    def test_grows_through_defective_layer_when_forced(self):
        """fig. 9(d): sparse defects in both prospective layers force
        growth *through* a defective layer, removing the defect inside."""
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        extra = {(11, 5), (-1, 5)}
        report = adaptive_enlargement(patch, extra_defects=extra, max_layers_per_side=3)
        check_code(patch.code)
        assert report.final_distance >= (5, 5)
        assert report.restored

    def test_fully_defective_layer_reverts_and_uses_other_side(self):
        """A fully defective column disconnects growth; the subroutine
        must revert that attempt and succeed on the opposite side."""
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        extra = {(11, y) for y in range(1, 11, 2)}
        report = adaptive_enlargement(patch, extra_defects=extra, max_layers_per_side=3)
        check_code(patch.code)
        assert report.restored
        assert "e" not in report.layers_added

    def test_budget_exhaustion(self):
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        report = adaptive_enlargement(patch, max_layers_per_side=0)
        assert not report.restored
        assert report.layers_added == []

    def test_qubits_added_counted(self):
        patch = rotated_surface_code(5)
        defect_removal(patch, [(5, 5)])
        before = patch.physical_qubit_count()
        report = adaptive_enlargement(patch)
        assert report.qubits_added == patch.physical_qubit_count() - before
        assert report.qubits_added > 0


class TestCodeDeformationUnit:
    def test_end_to_end_restoration(self):
        unit = CodeDeformationUnit(max_layers_per_side=3)
        patch = rotated_surface_code(5)
        report = unit.deform(patch, [(5, 5), (4, 6), (1, 5)])
        check_code(patch.code)
        assert report.restored
        assert report.final_distance >= (5, 5)

    def test_instruction_trace(self):
        unit = CodeDeformationUnit(max_layers_per_side=3)
        patch = rotated_surface_code(5)
        report = unit.deform(patch, [(5, 5)])
        assert any("DataQ_RM" in i for i in report.instructions)
        assert any("PatchQ_ADD" in i for i in report.instructions)

    def test_removal_only_mode(self):
        unit = CodeDeformationUnit(enlarge=False)
        patch = rotated_surface_code(5)
        report = unit.deform(patch, [(5, 5)])
        assert report.enlargement is None
        assert report.final_distance == (4, 4)
        assert not report.restored

    def test_repeated_cycles(self):
        """Defects arriving over several cycles (dynamic operation)."""
        unit = CodeDeformationUnit(max_layers_per_side=4)
        patch = rotated_surface_code(5)
        unit.deform(patch, [(5, 5)])
        report = unit.deform(patch, [(7, 7)])
        check_code(patch.code)
        assert report.final_distance >= (5, 5)

    def test_adaptive_uses_fewer_qubits_than_doubling(self):
        """Q3DE-style doubling vs adaptive growth (fig. 7b / issue B.2)."""
        unit = CodeDeformationUnit(max_layers_per_side=5)
        patch = rotated_surface_code(5)
        report = unit.deform(patch, [(5, 5)])
        doubled_cost = 2 * (2 * 5 * 5)  # doubling a ~2d^2 patch
        assert report.enlargement.qubits_added < doubled_cost / 2
