"""Weight-equality and agreement suite for the sparse matching engine.

The sparse region-growing matcher (:mod:`repro.decode.sparse_match`)
must optimise the *identical* objective as the dense blossom path on
every input: hypothesis-randomized cost matrices (including degenerate
integer weights and ``inf`` non-edges) are cross-checked against the
dense engine, random DEMs against the networkx oracle, and dense
memory circuits — p = 3e-3 and untreated-defect runs, where >14-defect
components are the common case — against both.  On tie-free
(continuous-weight) instances the optimum is unique, so predictions
are pinned bit-identical to the dense matcher as well; on degenerate
instances the pinned quantities are the matching weight and the
matched cardinality.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decode import MatchingDecoder
from repro.decode.batch import _DP_STACK_MAX
from repro.decode.sparse_match import (
    SPARSE_MIN_DEFECTS,
    knn_candidates,
    region_candidates,
    sparse_match,
    sparse_match_parity,
)
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code
from test_decode_agreement import (
    networkx_reduced_weight,
    random_dem,
    random_syndromes,
)


def dense_oracle(W, b_dist):
    """The dense reduced-component solve the sparse engine must equal."""
    from repro.decode.blossom import min_weight_perfect_matching

    k = W.shape[0]
    n, cost = MatchingDecoder._reduced_cost(k, W, b_dist)
    mate, total = min_weight_perfect_matching(cost)
    return mate, total


@st.composite
def component_case(draw):
    """A random reduced component: symmetric costs, optional non-edges.

    Integer weights provoke heavy ties (the max-cardinality and
    weight-equality guarantees must survive degeneracy); continuous
    weights make the optimum unique.
    """
    k = draw(st.integers(2, 16))
    seed = draw(st.integers(0, 2**32 - 1))
    integral = draw(st.booleans())
    p_inf = draw(st.sampled_from([0.0, 0.15, 0.45]))
    rng = np.random.default_rng(seed)
    if integral:
        W = rng.integers(1, 8, size=(k, k)).astype(np.float64)
        b_dist = rng.integers(1, 8, size=k).astype(np.float64)
    else:
        W = rng.uniform(0.1, 10.0, size=(k, k))
        b_dist = rng.uniform(0.1, 10.0, size=k)
    W = np.minimum(W, W.T)
    blocked = rng.random((k, k)) < p_inf
    blocked |= blocked.T
    W[blocked] = np.inf
    np.fill_diagonal(W, np.inf)
    b_dist[rng.random(k) < 0.25] = np.inf
    return W, b_dist, integral


class TestEngineEquality:
    @given(component_case())
    @settings(max_examples=60, deadline=None)
    def test_weight_and_cardinality_match_dense(self, case):
        """Same optimum as the dense engine on arbitrary components.

        The pinned invariants are the matching *edge count* (every
        maximum-cardinality matching of the same reduced graph has the
        same number of edges) and the total weight (minimal among
        those, exactly).  The number of *defects* covered is
        deliberately not pinned: on exact weight ties a pair edge
        (two defects) and a boundary edge (one defect) can both be
        optimal, and the engines may legitimately resolve such ties
        differently.
        """
        W, b_dist, _ = case
        k = W.shape[0]
        mate_d, total_d = dense_oracle(W, b_dist)
        mate_s, total_s = sparse_match(W, b_dist)

        def edge_count(mate):
            pairs = sum(1 for i in range(k) if i < mate[i] < k)
            boundary = sum(1 for i in range(k) if mate[i] == k)
            return pairs + boundary

        assert edge_count(mate_s) == edge_count(mate_d)
        assert total_s == pytest.approx(total_d)

    @given(component_case())
    @settings(max_examples=40, deadline=None)
    def test_tie_free_matchings_identical(self, case):
        """Continuous weights: the unique optimum, so identical mates."""
        W, b_dist, integral = case
        if integral:
            return  # degenerate ties may legitimately differ
        mate_d, _ = dense_oracle(W, b_dist)
        mate_s, _ = sparse_match(W, b_dist)
        assert mate_s == mate_d[: W.shape[0]]

    @given(component_case())
    @settings(max_examples=20, deadline=None)
    def test_deterministic(self, case):
        W, b_dist, _ = case
        assert sparse_match(W, b_dist) == sparse_match(W, b_dist)

    def test_knn_candidates_contain_row_minima(self):
        rng = np.random.default_rng(3)
        W = rng.uniform(0.1, 5.0, size=(9, 9))
        W = np.minimum(W, W.T)
        np.fill_diagonal(W, np.inf)
        ei, ej = knn_candidates(W)
        pairs = set(zip(ei.tolist(), ej.tolist(), strict=True))
        assert all(i < j for i, j in pairs)
        masked = np.where(np.eye(9, dtype=bool), np.inf, W)
        for i in range(9):
            j = int(np.argmin(masked[i]))
            assert (min(i, j), max(i, j)) in pairs

    def test_starved_seed_graph_is_repaired(self):
        """An adversarial seed (one edge) still reaches the optimum:
        the dual certificate pulls in every withheld edge it needs."""
        rng = np.random.default_rng(11)
        W = rng.uniform(0.5, 4.0, size=(8, 8))
        W = np.minimum(W, W.T)
        np.fill_diagonal(W, np.inf)
        b_dist = np.full(8, np.inf)
        seeds = (np.array([0]), np.array([1]))
        mate_d, total_d = dense_oracle(W, b_dist)
        mate_s, total_s = sparse_match(W, b_dist, seeds=seeds)
        assert total_s == pytest.approx(total_d)
        assert mate_s == mate_d


class TestRandomDems:
    def test_sparse_decoder_matches_dense_on_tie_free_graphs(self):
        """Oversize components on continuous-weight DEMs: identical
        predictions and weights across sparse/dense/legacy/networkx."""
        rng = np.random.default_rng(207)
        hit = 0
        for _ in range(3):
            dem = random_dem(
                rng, max_detectors=22, min_detectors=18, max_mechanisms=110
            )
            sparse = MatchingDecoder(dem)
            dense = MatchingDecoder(dem, matcher="dense")
            legacy = MatchingDecoder(dem, use_matrices=False, cache_size=0)
            for s in random_syndromes(rng, dem.num_detectors, 20, 20):
                if s.sum() < SPARSE_MIN_DEFECTS:
                    continue
                hit += 1
                assert sparse.decode(s) == legacy.decode(s)
                assert sparse.decode(s) == dense.decode(s)
                w = sparse.matching_weight(s, matcher="sparse")
                assert w == pytest.approx(sparse.matching_weight(s))
                assert w == pytest.approx(networkx_reduced_weight(sparse, s))
        assert hit > 0

    def test_region_candidates_structure(self):
        dem = build_dem(
            memory_circuit(
                rotated_surface_code(5).code,
                "Z",
                10,
                NoiseModel.uniform(2e-3),
            )
        )
        dec = MatchingDecoder(dem)
        rng = np.random.default_rng(5)
        det_ids = np.sort(
            rng.choice(dem.num_detectors, size=16, replace=False)
        )
        ei, ej = region_candidates(dec.graph, det_ids)
        assert len(ei) > 0
        assert (ei < ej).all()
        assert ej.max() < len(det_ids)
        # Deterministic: the growth has no random state.
        ei2, ej2 = region_candidates(dec.graph, det_ids)
        assert (ei == ei2).all() and (ej == ej2).all()

    def test_region_seeded_weight_equals_dense(self):
        """Voronoi-grown candidates reach the exact optimum too."""
        circuit = memory_circuit(
            rotated_surface_code(5).code,
            "Z",
            15,
            NoiseModel.uniform(3e-3),
        )
        dem = build_dem(circuit)
        dec = MatchingDecoder(dem)
        detectors, _ = sample_detectors(circuit, 40, seed=13)
        rows = np.nonzero(detectors.sum(axis=1) >= SPARSE_MIN_DEFECTS)[0]
        assert rows.size > 0
        for row in rows[:10]:
            w_sparse = dec.matching_weight(detectors[row], matcher="sparse")
            assert w_sparse == pytest.approx(
                dec.matching_weight(detectors[row])
            )


class TestDecoderDispatch:
    def test_oversize_components_route_to_sparse(self, monkeypatch):
        import repro.decode.mwpm as mwpm

        calls = {"sparse": 0, "dense": 0}
        real_sparse = mwpm.sparse_match_parity
        real_dense = MatchingDecoder.__dict__["_blossom_match"].__get__(
            None, MatchingDecoder
        )

        def spy_sparse(k, W, use_pair, P, b_dist, b_par, **kw):
            calls["sparse"] += 1
            return real_sparse(k, W, use_pair, P, b_dist, b_par, **kw)

        def spy_dense(k, W, use_pair, P, b_dist, b_par):
            calls["dense"] += 1
            return real_dense(k, W, use_pair, P, b_dist, b_par)

        monkeypatch.setattr(mwpm, "sparse_match_parity", spy_sparse)
        monkeypatch.setattr(
            mwpm.MatchingDecoder, "_blossom_match", staticmethod(spy_dense)
        )
        rng = np.random.default_rng(41)
        dem = random_dem(
            rng, max_detectors=20, min_detectors=16, max_mechanisms=100
        )
        sample = np.ones(dem.num_detectors, dtype=np.uint8)
        MatchingDecoder(dem).decode(sample)
        assert calls["sparse"] >= 0  # dispatch reached (components vary)
        sparse_calls = calls["sparse"]
        MatchingDecoder(dem, matcher="dense").decode(sample)
        assert calls["sparse"] == sparse_calls  # dense decoder never routes here

    def test_cutoff_respects_stacked_dp_ceiling(self):
        rng = np.random.default_rng(43)
        dem = random_dem(rng)
        assert MatchingDecoder(dem)._dp_cutoff == _DP_STACK_MAX
        assert SPARSE_MIN_DEFECTS == _DP_STACK_MAX + 1

    def test_invalid_matcher_rejected(self):
        rng = np.random.default_rng(44)
        dem = random_dem(rng)
        with pytest.raises(ValueError):
            MatchingDecoder(dem, matcher="nope")
        with pytest.raises(ValueError):
            MatchingDecoder(dem).matching_weight(
                np.ones(dem.num_detectors, dtype=np.uint8), matcher="bogus"
            )


class TestDenseCircuits:
    @pytest.mark.parametrize(
        "p,rounds,defective",
        [
            (3e-3, 20, None),
            (1e-3, 10, {(3, 3), (5, 5)}),  # untreated-defect circuit
        ],
    )
    def test_serial_batch_identity_and_weights(self, p, rounds, defective):
        """Sparse default on dense circuits: the serial and vectorised
        paths agree bit-for-bit, and the weight objective matches the
        dense engine and the networkx oracle on >cutoff rows."""
        patch = rotated_surface_code(5)
        circuit = memory_circuit(
            patch.code,
            "Z",
            rounds,
            NoiseModel.uniform(p),
            defective_data=defective,
        )
        dem = build_dem(circuit)
        detectors, _ = sample_detectors(circuit, 50, seed=23)
        dec = MatchingDecoder(dem)
        batch = dec.decode_batch(detectors)
        serial = MatchingDecoder(dem)
        singles = np.array(
            [serial.decode(row) for row in detectors], dtype=np.uint8
        )
        assert (batch == singles).all()
        rows = np.nonzero(detectors.sum(axis=1) >= SPARSE_MIN_DEFECTS)[0]
        assert rows.size > 0
        for row in rows[:6]:
            w = dec.matching_weight(detectors[row], matcher="sparse")
            assert w == pytest.approx(dec.matching_weight(detectors[row]))
            assert w == pytest.approx(
                networkx_reduced_weight(dec, detectors[row])
            )

    def test_logical_error_rate_not_degraded(self):
        """Sparse and dense matchers are both exact MWPM: on a dense
        circuit their logical error rates can differ only through
        equal-weight tie resolution, which is noise, not bias."""
        patch = rotated_surface_code(3)
        circuit = memory_circuit(
            patch.code, "Z", 10, NoiseModel.uniform(4e-3)
        )
        dem = build_dem(circuit)
        detectors, observables = sample_detectors(circuit, 1500, seed=29)
        ler_sparse = MatchingDecoder(dem).logical_error_rate(
            detectors, observables
        )
        ler_dense = MatchingDecoder(dem, matcher="dense").logical_error_rate(
            detectors, observables
        )
        assert abs(ler_sparse - ler_dense) < 0.02


class TestParityConventions:
    def test_parity_matches_dense_on_tie_free_components(self):
        rng = np.random.default_rng(59)
        for _ in range(25):
            k = int(rng.integers(2, 14))
            W = rng.uniform(0.1, 6.0, size=(k, k))
            W = np.minimum(W, W.T)
            np.fill_diagonal(W, np.inf)
            b_dist = rng.uniform(0.1, 6.0, size=k)
            use_pair = rng.random((k, k)) < 0.7
            use_pair &= use_pair.T
            P = rng.integers(0, 2, size=(k, k)).astype(np.uint8)
            P = np.bitwise_xor(np.triu(P, 1), np.triu(P, 1).T)
            b_par = rng.integers(0, 2, size=k).astype(np.uint8)
            assert sparse_match_parity(
                k, W, use_pair, P, b_dist, b_par
            ) == MatchingDecoder._blossom_match(
                k, W, use_pair, P, b_dist, b_par
            )
