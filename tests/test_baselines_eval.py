"""Tests for baselines (ASC-S, Q3DE) and the evaluation harnesses."""

import pytest

from repro.baselines import METHODS, asc_defect_removal, q3de_enlarge
from repro.codes import check_code, code_distance
from repro.compiler import paper_benchmark
from repro.deform import defect_removal
from repro.eval import evaluate_program, retry_risk, yield_rate
from repro.eval.lambda_model import LambdaModel
from repro.eval.retry import compose_risk
from repro.surface import rotated_surface_code


class TestASC:
    def test_syndrome_defect_removes_neighbours(self):
        patch = rotated_surface_code(5)
        asc_defect_removal(patch, [(4, 6)])
        check_code(patch.code)
        # All four data neighbours removed (fig. 7a).
        assert patch.code.n == 21
        assert code_distance(patch.code) == (3, 3)

    def test_surf_deformer_beats_asc_on_syndrome_defect(self):
        from repro.deform import syndrome_q_rm

        asc = rotated_surface_code(5)
        asc_defect_removal(asc, [(4, 6)])
        ours = rotated_surface_code(5)
        syndrome_q_rm(ours, (4, 6))
        assert min(code_distance(ours.code)) >= min(code_distance(asc.code))
        assert sum(code_distance(ours.code)) > sum(code_distance(asc.code))

    def test_data_defect_same_as_ours(self):
        """Single interior data removal coincides with DataQ_RM."""
        asc = rotated_surface_code(5)
        asc_defect_removal(asc, [(5, 5)])
        ours = rotated_surface_code(5)
        defect_removal(ours, [(5, 5)])
        assert code_distance(asc.code) == code_distance(ours.code)

    def test_asc_handles_boundary(self):
        patch = rotated_surface_code(5)
        asc_defect_removal(patch, [(1, 5)])
        check_code(patch.code)


class TestQ3DE:
    def test_doubles_patch(self):
        patch = rotated_surface_code(3)
        q3de_enlarge(patch, direction="e")
        check_code(patch.code)
        assert code_distance(patch.code) == (3, 6)

    def test_keeps_defects_inside(self):
        patch = rotated_surface_code(3)
        defect_removal(patch, [(3, 3)])
        q3de_enlarge(patch, direction="e")
        # The rebuild resurrects the defective qubit: Q3DE semantics.
        assert (3, 3) in patch.code.data_qubits
        assert (3, 3) in patch.defective_data

    def test_rejects_bad_direction(self):
        with pytest.raises(ValueError):
            q3de_enlarge(rotated_surface_code(3), direction="x")


class TestMethodModels:
    def test_all_methods_present(self):
        assert set(METHODS) == {
            "lattice_surgery",
            "asc_s",
            "q3de",
            "q3de_star",
            "surf_deformer",
        }

    def test_spacings(self):
        assert METHODS["lattice_surgery"].spacing(21, 4) == 21
        assert METHODS["q3de_star"].spacing(21, 4) == 42
        assert METHODS["surf_deformer"].spacing(21, 4) == 25

    def test_effective_distance_ordering(self):
        d = 21
        untreated = METHODS["lattice_surgery"].effective_distance(d)
        removal = METHODS["asc_s"].effective_distance(d)
        q3de = METHODS["q3de"].effective_distance(d)
        restored = METHODS["surf_deformer"].effective_distance(d)
        assert untreated < removal < restored
        assert untreated < q3de <= restored


class TestRetryRisk:
    def test_compose_empty(self):
        assert compose_risk([]) == 0.0

    def test_compose_certain_failure(self):
        assert compose_risk([1.0, 0.0]) == 1.0

    def test_compose_independent(self):
        assert compose_risk([0.5, 0.5]) == pytest.approx(0.75)

    def test_retry_risk_grows_with_cycles(self):
        a = retry_risk([1e-6] * 10, 1e3)
        b = retry_risk([1e-6] * 10, 1e5)
        assert b > a


class TestLambdaModel:
    def test_exponential_suppression(self):
        model = LambdaModel(A=0.03, lam=8.0)
        assert model.per_round(9) == pytest.approx(model.per_round(7) / 8.0)

    def test_distance_for_inverts(self):
        model = LambdaModel()
        d = model.distance_for(1e-10)
        assert model.per_round(d) <= 1e-10
        assert model.per_round(d - 2) > 1e-10

    def test_per_cycles_accumulates(self):
        model = LambdaModel()
        assert model.per_cycles(9, 1000) > model.per_round(9)

    def test_degenerate_distance(self):
        assert LambdaModel().per_round(0) == 0.5


class TestEndToEnd:
    def test_q3de_over_runtime_on_all_benchmarks(self):
        """Paper observation 1: every Q3DE task is OverRuntime."""
        for name in ("Simon-900-1500", "QFT-100-20", "Grover-16-2"):
            prog = paper_benchmark(name)
            for d in prog.distances:
                result = evaluate_program(prog, "q3de", d)
                assert result.over_runtime, (name, d)

    def test_asc_much_worse_than_surf_deformer(self):
        """Paper observation 2: ASC-S retry risk ≫ Surf-Deformer's."""
        for name in ("RCA-225-500", "QFT-100-20"):
            prog = paper_benchmark(name)
            for d in prog.distances:
                asc = evaluate_program(prog, "asc_s", d)
                ours = evaluate_program(prog, "surf_deformer", d)
                assert not ours.over_runtime
                assert asc.retry_risk > 10 * ours.retry_risk, (name, d)

    def test_surf_deformer_qubit_overhead_modest(self):
        """Paper observation 3: ≈ 20 % more qubits than ASC-S's layout."""
        prog = paper_benchmark("QFT-100-20")
        asc = evaluate_program(prog, "asc_s", 25)
        ours = evaluate_program(prog, "surf_deformer", 25)
        overhead = ours.physical_qubits / asc.physical_qubits
        assert 1.0 < overhead < 1.35

    def test_q3de_star_uses_most_qubits(self):
        prog = paper_benchmark("Grover-16-2")
        star = evaluate_program(prog, "q3de_star", 25)
        ours = evaluate_program(prog, "surf_deformer", 25)
        assert star.physical_qubits > 1.5 * ours.physical_qubits

    def test_risk_decreases_with_distance(self):
        prog = paper_benchmark("Simon-400-1000")
        r19 = evaluate_program(prog, "surf_deformer", 19).retry_risk
        r21 = evaluate_program(prog, "surf_deformer", 21).retry_risk
        assert r21 < r19


class TestYieldRate:
    def test_zero_faults_always_yield(self):
        rate = yield_rate("surf_deformer", 7, 0, 7, samples=3, seed=0)
        assert rate == 1.0

    def test_ours_at_least_asc(self):
        ours = yield_rate("surf_deformer", 9, 4, 7, samples=15, seed=1)
        asc = yield_rate("asc_s", 9, 4, 7, samples=15, seed=1)
        assert ours >= asc

    def test_yield_decreases_with_faults(self):
        few = yield_rate("surf_deformer", 9, 2, 8, samples=15, seed=2)
        many = yield_rate("surf_deformer", 9, 10, 8, samples=15, seed=2)
        assert many <= few

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            yield_rate("q3de", 9, 4, 7, samples=1)


class TestMakeTaskSet:
    def test_defaults_to_all_qubits(self):
        from repro.eval.throughput import make_task_set

        gates = make_task_set(10, 2, 3, seed=0)
        assert len(gates) == 6
        assert all(0 <= a < 10 and 0 <= b < 10 and a != b for a, b in gates)

    def test_explicit_pool_respected(self):
        from repro.eval.throughput import make_task_set

        gates = make_task_set(50, 5, 25, qubits_used=4, seed=1)
        used = {q for gate in gates for q in gate}
        assert len(used) <= 4

    def test_zero_qubits_used_rejected(self):
        """Regression: ``qubits_used=0`` used to silently mean "all"."""
        from repro.eval.throughput import make_task_set

        with pytest.raises(ValueError):
            make_task_set(10, 2, 3, qubits_used=0)
        with pytest.raises(ValueError):
            make_task_set(10, 2, 3, qubits_used=-5)

    def test_oversized_pool_rejected(self):
        from repro.eval.throughput import make_task_set

        with pytest.raises(ValueError):
            make_task_set(10, 2, 3, qubits_used=11)
