"""Chunked-streaming evaluation harnesses on the unified batch API."""

import pytest

from repro.compiler.programs import Program
from repro.eval import (
    calibrate_lambda_model,
    decoding_throughput,
    evaluate_program,
    memory_experiment,
)
from repro.eval.montecarlo import _chunk_plan
from repro.sim import NoiseModel
from repro.surface import rotated_surface_code


class TestChunkPlan:
    def test_single_chunk_passes_seed_through(self):
        assert _chunk_plan(100, None, 5) == [(5, 100)]
        assert _chunk_plan(100, 200, 5) == [(5, 100)]
        assert _chunk_plan(100, 0, 5) == [(5, 100)]

    def test_chunks_cover_all_shots(self):
        plan = _chunk_plan(100, 30, None)
        assert [n for _, n in plan] == [30, 30, 30, 10]
        assert all(seed is None for seed, _ in plan)

    def test_seeded_chunks_draw_distinct_streams(self):
        plan = _chunk_plan(100, 30, 7)
        seeds = [seed for seed, _ in plan]
        assert len(set(seeds)) == len(seeds)
        assert 7 not in seeds
        assert _chunk_plan(100, 30, 7) == plan  # deterministic


class TestChunkedMemoryExperiment:
    def test_reproducible_and_counts_all_shots(self):
        patch = rotated_surface_code(3)
        noise = NoiseModel.uniform(2e-3)
        kwargs = dict(rounds=3, shots=500, seed=11, chunk_shots=128)
        a = memory_experiment(patch.code, "Z", noise, **kwargs)
        b = memory_experiment(patch.code, "Z", noise, **kwargs)
        assert a.shots == 500
        assert a.errors == b.errors

    def test_chunked_rate_statistically_consistent(self):
        patch = rotated_surface_code(3)
        noise = NoiseModel.uniform(5e-3)
        whole = memory_experiment(
            patch.code, "Z", noise, rounds=3, shots=3000, seed=3
        )
        chunked = memory_experiment(
            patch.code, "Z", noise, rounds=3, shots=3000, seed=3,
            chunk_shots=512,
        )
        # Different streams, same distribution: rates agree loosely.
        assert abs(whole.per_shot - chunked.per_shot) < 0.05


class TestDecodingThroughput:
    def test_reports_rates_and_errors(self):
        patch = rotated_surface_code(3)
        result = decoding_throughput(
            patch.code,
            NoiseModel.uniform(2e-3),
            rounds=3,
            shots=600,
            chunk_shots=200,
            seed=5,
        )
        assert result.shots == 600
        assert result.decode_shots_per_sec > 0
        assert result.sample_shots_per_sec > 0
        assert 0.0 <= result.logical_error_rate < 0.2


class TestCalibratedEndToEnd:
    def test_calibrated_lambda_model_accepted(self):
        program = Program(name="toy", num_qubits=4, cx_count=20, t_count=4)
        result = evaluate_program(
            program,
            "surf_deformer",
            5,
            lambda_model="calibrated",
            calibration={"shots": 300, "distances": (3, 5), "chunk_shots": 128},
        )
        assert result.physical_qubits > 0
        assert 0.0 <= result.retry_risk <= 1.0

    def test_unknown_lambda_string_rejected(self):
        program = Program(name="toy", num_qubits=4, cx_count=20, t_count=4)
        with pytest.raises(ValueError):
            evaluate_program(program, "surf_deformer", 5, lambda_model="magic")

    def test_calibration_without_calibrated_rejected(self):
        program = Program(name="toy", num_qubits=4, cx_count=20, t_count=4)
        with pytest.raises(ValueError):
            evaluate_program(
                program, "surf_deformer", 5, calibration={"shots": 10}
            )

    def test_calibrate_with_chunking_fits_sane_lambda(self):
        model = calibrate_lambda_model(
            noise=NoiseModel.uniform(1e-3),
            distances=(3, 5),
            shots=2000,
            seed=7,
            chunk_shots=512,
        )
        assert model.lam > 1.0  # below threshold: rates fall with d
        assert 0.0 < model.A < 1.0
