"""Tests for the four deformation instructions (section IV, fig. 6-8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import check_code, code_distance
from repro.deform import (
    data_q_rm,
    patch_q_add_layer,
    patch_q_rm,
    syndrome_q_rm,
)
from repro.surface import rotated_surface_code


def interior_data_qubits(d):
    return [(x, y) for x in range(3, 2 * d - 2, 2) for y in range(3, 2 * d - 2, 2)]


class TestDataQRM:
    def test_removes_qubit(self):
        patch = rotated_surface_code(5)
        data_q_rm(patch, (5, 5))
        assert (5, 5) not in patch.code.data_qubits
        assert (5, 5) in patch.defective_data

    def test_preserves_validity(self):
        patch = rotated_surface_code(5)
        data_q_rm(patch, (5, 5))
        check_code(patch.code)

    def test_forms_two_super_stabilizers(self):
        patch = rotated_surface_code(5)
        before = len(patch.code.stabilizers)
        data_q_rm(patch, (5, 5))
        # Two pairs merged: net loss of two generators.
        assert len(patch.code.stabilizers) == before - 2

    def test_distance_drops_by_one_per_basis(self):
        patch = rotated_surface_code(5)
        data_q_rm(patch, (5, 5))
        assert code_distance(patch.code) == (4, 4)

    def test_matches_brute_force(self):
        patch = rotated_surface_code(4)
        data_q_rm(patch, (3, 3))
        assert code_distance(patch.code) == code_distance(patch.code, exact=True)

    def test_logical_rerouted_off_removed_qubit(self):
        patch = rotated_surface_code(5)
        # Put the defect on the tracked logical Z row (y = 1 is boundary,
        # so remove an interior qubit after rerouting check on X col).
        data_q_rm(patch, (3, 3))
        assert (3, 3) not in patch.code.logical_x.support
        assert (3, 3) not in patch.code.logical_z.support

    def test_rejects_boundary_qubit(self):
        patch = rotated_surface_code(5)
        with pytest.raises(ValueError):
            data_q_rm(patch, (1, 5))

    def test_rejects_inactive_qubit(self):
        patch = rotated_surface_code(5)
        data_q_rm(patch, (5, 5))
        with pytest.raises(ValueError):
            data_q_rm(patch, (5, 5))

    def test_gauge_checks_remain_measured(self):
        patch = rotated_surface_code(5)
        n_checks = len(patch.code.checks)
        data_q_rm(patch, (5, 5))
        # All four truncated plaquette checks still measured.
        assert len(patch.code.checks) == n_checks

    @given(st.sampled_from(interior_data_qubits(5)))
    @settings(max_examples=9, deadline=None)
    def test_any_interior_removal_valid(self, q):
        patch = rotated_surface_code(5)
        data_q_rm(patch, q)
        check_code(patch.code)
        dx, dz = code_distance(patch.code)
        assert dx >= 4 and dz >= 4


class TestSyndromeQRM:
    def test_fig7a_preserves_one_basis(self):
        """Paper fig. 7(a): X-syndrome removal keeps Z-distance at 5."""
        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 6))  # X-type interior check
        check_code(patch.code)
        assert code_distance(patch.code) == (3, 5)

    def test_fig7a_brute_force(self):
        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 6))
        assert code_distance(patch.code, exact=True) == (3, 5)

    def test_z_syndrome_preserves_x_distance(self):
        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 4))  # Z-type interior check
        check_code(patch.code)
        assert code_distance(patch.code) == (5, 3)

    def test_asc_equivalent_is_worse(self):
        """ASC-S removes the four data neighbours instead (fig. 7a)."""
        ours = rotated_surface_code(5)
        syndrome_q_rm(ours, (4, 6))
        asc = rotated_surface_code(5)
        for q in sorted(rotated_surface_code(5).check_at((4, 6)).pauli.support):
            data_q_rm(asc, q)
        check_code(asc.code)
        assert code_distance(asc.code) == (3, 3)
        ours_dx, ours_dz = code_distance(ours.code)
        assert min(ours_dx, ours_dz) >= 3 and max(ours_dx, ours_dz) == 5

    def test_check_inferred_from_gauges(self):
        patch = rotated_surface_code(5)
        name = "X:4,6"
        syndrome_q_rm(patch, (4, 6))
        gen = patch.code.stabilizers[name]
        assert len(gen.measured_via) == 4
        for via in gen.measured_via:
            assert patch.code.checks[via].pauli.weight == 1
            assert patch.code.checks[via].ancilla is None

    def test_octagon_super_stabilizer(self):
        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 6))
        weights = sorted(
            g.pauli.weight for g in patch.code.stabilizers.values() if g.basis == "Z"
        )
        assert weights[-1] == 8  # the octagon of fig. 6(b)

    def test_ancilla_marked_defective(self):
        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 6))
        assert (4, 6) in patch.defective_ancillas

    def test_rejects_unknown_ancilla(self):
        patch = rotated_surface_code(5)
        with pytest.raises(ValueError):
            syndrome_q_rm(patch, (0, 0))

    def test_commutes_with_data_q_rm(self):
        """Instruction commutativity claim (section IV): order-independent."""
        a = rotated_surface_code(7)
        data_q_rm(a, (9, 9))
        syndrome_q_rm(a, (4, 6))
        b = rotated_surface_code(7)
        syndrome_q_rm(b, (4, 6))
        data_q_rm(b, (9, 9))
        assert code_distance(a.code) == code_distance(b.code)
        assert a.code.data_qubits == b.code.data_qubits


class TestPatchQRM:
    def test_west_edge_fix_z(self):
        patch = rotated_surface_code(5)
        patch_q_rm(patch, (1, 5), fix_basis="Z")
        check_code(patch.code)
        assert code_distance(patch.code) == (5, 4)

    def test_default_fix_basis_matches_edge(self):
        patch = rotated_surface_code(5)
        patch_q_rm(patch, (1, 5))
        check_code(patch.code)
        assert code_distance(patch.code) == (5, 4)

    def test_north_edge_fix_x(self):
        patch = rotated_surface_code(5)
        patch_q_rm(patch, (5, 9), fix_basis="X")
        check_code(patch.code)
        assert code_distance(patch.code) == (4, 5)

    def test_corner_both_options_valid(self):
        for basis in ("X", "Z"):
            patch = rotated_surface_code(5)
            patch_q_rm(patch, (1, 1), fix_basis=basis)
            check_code(patch.code)
            dx, dz = code_distance(patch.code)
            assert min(dx, dz) >= 4

    def test_matches_brute_force(self):
        patch = rotated_surface_code(4)
        patch_q_rm(patch, (1, 3))
        assert code_distance(patch.code) == code_distance(patch.code, exact=True)

    def test_boundary_syndrome_disable(self):
        patch = rotated_surface_code(5)
        patch_q_rm(patch, (2, 0))  # X half-check ancilla on the south rim
        check_code(patch.code)
        assert patch.check_at((2, 0)) is None
        dx, dz = code_distance(patch.code)
        assert min(dx, dz) >= 4

    def test_boundary_syndrome_disable_without_orphans(self):
        patch = rotated_surface_code(5)
        patch_q_rm(patch, (0, 4))  # Z half-check on the west rim, no orphans
        check_code(patch.code)
        assert patch.check_at((0, 4)) is None
        # No data qubit needed removal.
        assert patch.code.n == 25

    def test_rejects_bad_basis(self):
        patch = rotated_surface_code(5)
        with pytest.raises(ValueError):
            patch_q_rm(patch, (1, 5), fix_basis="Y")

    def test_rejects_interior_without_basis(self):
        patch = rotated_surface_code(5)
        with pytest.raises(ValueError):
            patch_q_rm(patch, (5, 5))

    def test_repeated_edge_removal(self):
        """Deepening dent on the same edge stays valid (fig. 9a)."""
        patch = rotated_surface_code(5)
        patch_q_rm(patch, (1, 5))
        check_code(patch.code)
        patch_q_rm(patch, (1, 3))
        check_code(patch.code)
        dx, dz = code_distance(patch.code)
        assert dz >= 3 and dx >= 3


class TestPatchQADD:
    @pytest.mark.parametrize("side,expect", [("e", (5, 6)), ("w", (5, 6)),
                                             ("n", (6, 5)), ("s", (6, 5))])
    def test_growth_extends_distance(self, side, expect):
        patch = rotated_surface_code(5)
        pending = patch_q_add_layer(patch, side)
        assert pending == []
        check_code(patch.code)
        assert code_distance(patch.code) == expect

    def test_growth_reports_defects_in_footprint(self):
        patch = rotated_surface_code(5)
        data_q_rm(patch, (5, 5))
        pending = patch_q_add_layer(patch, "e")
        assert (5, 5) in pending

    def test_rejects_bad_side(self):
        patch = rotated_surface_code(5)
        with pytest.raises(ValueError):
            patch_q_add_layer(patch, "q")

    def test_double_growth(self):
        patch = rotated_surface_code(3)
        patch_q_add_layer(patch, "e")
        patch_q_add_layer(patch, "n")
        check_code(patch.code)
        assert code_distance(patch.code) == (4, 4)
