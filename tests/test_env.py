"""The shared REPRO_* toggle grammar (repro.utils.env)."""

import pytest

from repro.utils.env import env_flag, env_float, env_str


class TestEnvFlag:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on ", "True"])
    def test_truthy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG") is True

    @pytest.mark.parametrize("value", ["0", "false", "No", " OFF ", ""])
    def test_falsy(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert env_flag("REPRO_TEST_FLAG", default=True) is False

    def test_unset_uses_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert env_flag("REPRO_TEST_FLAG") is False
        assert env_flag("REPRO_TEST_FLAG", default=True) is True

    def test_unrecognised_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "maybe")
        with pytest.raises(ValueError, match="REPRO_TEST_FLAG"):
            env_flag("REPRO_TEST_FLAG")


class TestEnvStr:
    def test_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_STR", "/tmp/store")
        assert env_str("REPRO_TEST_STR") == "/tmp/store"

    @pytest.mark.parametrize("value", ["", "   "])
    def test_blank_means_default(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TEST_STR", value)
        assert env_str("REPRO_TEST_STR") is None
        assert env_str("REPRO_TEST_STR", "fallback") == "fallback"

    def test_unset_means_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_STR", raising=False)
        assert env_str("REPRO_TEST_STR") is None


class TestEnvFloat:
    def test_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "2.5")
        assert env_float("REPRO_TEST_SCALE", 1.0) == 2.5

    def test_unset_and_blank_mean_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_SCALE", raising=False)
        assert env_float("REPRO_TEST_SCALE", 1.0) == 1.0
        monkeypatch.setenv("REPRO_TEST_SCALE", "")
        assert env_float("REPRO_TEST_SCALE", 1.0) == 1.0

    def test_bad_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_SCALE", "fast")
        with pytest.raises(ValueError, match="REPRO_TEST_SCALE"):
            env_float("REPRO_TEST_SCALE", 1.0)


class TestWiredToggles:
    """The real toggles parse through the shared grammar."""

    def test_store_toggle_blank_disables(self, monkeypatch):
        from repro import store

        monkeypatch.setenv("REPRO_STORE", "")
        monkeypatch.setattr(store, "_ACTIVE_STORE", store._UNSET)
        assert store.get_store() is None

    def test_pure_blossom_zero_means_compiled(self, monkeypatch):
        # REPRO_PURE_BLOSSOM=0 must parse as *false* (the historical
        # ad-hoc check treated any non-empty string as true).
        monkeypatch.setenv("REPRO_PURE_BLOSSOM", "0")
        assert env_flag("REPRO_PURE_BLOSSOM") is False
