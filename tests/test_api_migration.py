"""The PR 10 API redesign's compatibility shims, pinned.

One canonical worker-count spelling (``workers=``) and one canonical
sample-container contract (``output="packed"|"rows"``) across the
stack; the pre-redesign spellings (``decoder_workers=``, boolean
``packed_output=``) keep working through warn-once deprecation shims,
and passing old and new together is a ``TypeError``.  The warn-once
globals are reset per test via monkeypatch so each assertion sees a
fresh process-equivalent state.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.eval.montecarlo as montecarlo
import repro.sim.frame as frame
from repro.eval.montecarlo import memory_experiment, resolve_workers
from repro.eval.throughput import decoding_throughput
from repro.sim import NoiseModel, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code
from repro.sweep.runner import SweepCell, SweepSpec
from repro.utils.gf2 import PackedBits


@pytest.fixture
def fresh_shims(monkeypatch):
    """Reset the warn-once latches, as a new process would see them."""
    monkeypatch.setattr(montecarlo, "_DECODER_WORKERS_WARNED", False)
    monkeypatch.setattr(frame, "_PACKED_OUTPUT_WARNED", False)


@pytest.fixture(scope="module")
def circuit():
    code = rotated_surface_code(3).code
    return memory_circuit(code, "Z", 5, NoiseModel.uniform(1e-3))


class TestResolveWorkers:
    def test_canonical_passes_through(self):
        assert resolve_workers(4, None) == 4
        assert resolve_workers(None, None) is None

    def test_deprecated_spelling_warns_once(self, fresh_shims):
        with pytest.warns(DeprecationWarning, match="decoder_workers"):
            assert resolve_workers(None, 3) == 3
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(None, 2) == 2  # latched: no rewarn

    def test_both_spellings_is_an_error(self, fresh_shims):
        with pytest.raises(TypeError, match="not both"):
            resolve_workers(2, 3)


class TestWorkersUnification:
    """Every pool-fronting entry point takes the same keyword."""

    def test_memory_experiment_old_and_new_agree(self, fresh_shims):
        code = rotated_surface_code(3).code
        noise = NoiseModel.uniform(2e-3)
        new = memory_experiment(
            code, "Z", noise, rounds=3, shots=200, seed=9, workers=1
        )
        with pytest.warns(DeprecationWarning):
            old = memory_experiment(
                code, "Z", noise, rounds=3, shots=200, seed=9,
                decoder_workers=1,
            )
        assert new.errors == old.errors
        assert new.shots == old.shots

    def test_memory_experiment_rejects_both(self, fresh_shims):
        code = rotated_surface_code(3).code
        with pytest.raises(TypeError, match="not both"):
            memory_experiment(
                code, "Z", NoiseModel.uniform(1e-3),
                rounds=3, shots=50, workers=1, decoder_workers=1,
            )

    def test_decoding_throughput_takes_workers(self, fresh_shims):
        code = rotated_surface_code(3).code
        result = decoding_throughput(
            code, NoiseModel.uniform(1e-3),
            rounds=3, shots=200, seed=2, workers=1,
        )
        assert result.shots == 200
        with pytest.raises(TypeError, match="not both"):
            decoding_throughput(
                code, NoiseModel.uniform(1e-3),
                rounds=3, shots=50, workers=1, decoder_workers=2,
            )

    def test_sweep_spec_initvar_shim(self, fresh_shims):
        cells = (SweepCell(distance=3, p=1e-3),)
        assert SweepSpec(cells=cells, workers=2).workers == 2
        with pytest.warns(DeprecationWarning, match="decoder_workers"):
            migrated = SweepSpec(cells=cells, decoder_workers=3)
        assert migrated.workers == 3
        with pytest.raises(TypeError, match="not both"):
            SweepSpec(cells=cells, workers=2, decoder_workers=3)

    def test_sweep_spec_fingerprint_sees_canonical_field(self, fresh_shims):
        """Old and new spellings of the same sweep fingerprint alike."""
        cells = (SweepCell(distance=3, p=1e-3),)
        new = SweepSpec(cells=cells, workers=3)
        with pytest.warns(DeprecationWarning):
            old = SweepSpec(cells=cells, decoder_workers=3)
        assert new.fingerprint() == old.fingerprint()


class TestSampleOutputContract:
    def test_output_rows_is_default(self, circuit):
        det, obs = sample_detectors(circuit, 8, seed=1)
        assert isinstance(det, np.ndarray)
        assert isinstance(obs, np.ndarray)

    def test_output_packed(self, circuit):
        det, obs = sample_detectors(circuit, 8, seed=1, output="packed")
        assert isinstance(det, PackedBits)
        assert isinstance(obs, PackedBits)

    def test_deprecated_boolean_maps_and_warns_once(
        self, circuit, fresh_shims
    ):
        with pytest.warns(DeprecationWarning, match="packed_output"):
            det_old, _ = sample_detectors(
                circuit, 8, seed=1, packed_output=True
            )
        det_new, _ = sample_detectors(circuit, 8, seed=1, output="packed")
        np.testing.assert_array_equal(det_old.words, det_new.words)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rows_old, _ = sample_detectors(
                circuit, 8, seed=1, packed_output=False
            )
        rows_new, _ = sample_detectors(circuit, 8, seed=1, output="rows")
        np.testing.assert_array_equal(rows_old, rows_new)

    def test_both_contracts_is_an_error(self, circuit, fresh_shims):
        with pytest.raises(TypeError, match="not both"):
            sample_detectors(
                circuit, 8, seed=1, output="rows", packed_output=True
            )

    def test_unknown_output_is_an_error(self, circuit):
        with pytest.raises(ValueError, match="packed"):
            sample_detectors(circuit, 8, seed=1, output="bitplane")
