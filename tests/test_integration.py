"""Cross-module integration and property tests.

These exercise whole-pipeline invariants: random defect storms processed
by the full deformation unit keep every formal invariant, the deformed
codes remain simulatable and decodable, and the framework's numbers stay
self-consistent.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CodeDeformationUnit, check_code, code_distance, rotated_surface_code
from repro.defects import CosmicRayModel
from repro.eval import memory_experiment
from repro.sim import FrameSampler, NoiseModel, memory_circuit


class TestDefectStorms:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_storm_keeps_invariants(self, seed):
        """Any sampled cosmic-ray pattern leaves a valid code behind."""
        patch = rotated_surface_code(7)
        model = CosmicRayModel(seed=seed)
        defects = model.sample_defective_qubits(patch.all_qubit_coords(), 4)
        unit = CodeDeformationUnit(max_layers_per_side=2)
        try:
            report = unit.deform(patch, defects)
        except ValueError:
            return  # pattern destroyed the logical qubit: allowed outcome
        check_code(patch.code)
        dx, dz = report.final_distance
        assert dx >= 1 and dz >= 1

    @given(st.integers(0, 10_000))
    @settings(max_examples=8, deadline=None)
    def test_deformed_code_still_simulatable(self, seed):
        """Deformed codes produce deterministic noiseless circuits."""
        patch = rotated_surface_code(5)
        model = CosmicRayModel(seed=seed)
        defects = model.sample_defective_qubits(patch.all_qubit_coords(), 3)
        unit = CodeDeformationUnit(max_layers_per_side=1)
        try:
            unit.deform(patch, defects)
        except ValueError:
            return
        for basis in ("Z", "X"):
            circuit = memory_circuit(patch.code, basis, 2, NoiseModel.uniform(0.0))
            det, obs = FrameSampler(circuit, seed=0).sample(4)
            assert not det.any() and not obs.any()

    def test_sequential_storms(self):
        """Multiple defect waves over a patch's lifetime."""
        patch = rotated_surface_code(7)
        unit = CodeDeformationUnit(max_layers_per_side=3)
        model = CosmicRayModel(seed=99)
        for _wave in range(3):
            defects = model.sample_defective_qubits(
                patch.all_qubit_coords(), 2
            )
            unit.deform(patch, defects)
            check_code(patch.code)
        dx, dz = code_distance(patch.code)
        assert min(dx, dz) >= 5


class TestDeformedCodeDecoding:
    def test_deformed_code_logical_error_rate_reasonable(self):
        """A deformed d=5 code decodes like a clean d>=4 code."""
        patch = rotated_surface_code(5)
        unit = CodeDeformationUnit(enlarge=False)
        unit.deform(patch, [(5, 5)])
        result = memory_experiment(
            patch.code,
            "Z",
            NoiseModel.uniform(3e-3),
            rounds=4,
            shots=1500,
            seed=17,
        )
        assert result.per_shot < 0.05

    def test_enlarged_code_decodes(self):
        patch = rotated_surface_code(3)
        unit = CodeDeformationUnit(max_layers_per_side=2)
        unit.deform(patch, [(3, 3)])
        assert code_distance(patch.code) >= (3, 3)
        result = memory_experiment(
            patch.code,
            "Z",
            NoiseModel.uniform(3e-3),
            rounds=3,
            shots=1000,
            seed=18,
        )
        assert result.per_shot < 0.05


class TestDistanceAlgorithmsAgree:
    @given(st.integers(0, 5000))
    @settings(max_examples=10, deadline=None)
    def test_graph_vs_brute_force_on_deformed_codes(self, seed):
        """The two independent distance algorithms agree after random
        small-code deformations, up to the graph method's documented
        pessimism: boundary deformations can leave a residual (fixed)
        degree of freedom whose cycles the graph method counts as
        logical and under-reporting the true distance.  Under-reporting
        is the safe direction — the library never over-states a deformed
        code's protection — and both methods under comparison are always
        measured with the same algorithm.
        """
        from repro.deform import defect_removal

        patch = rotated_surface_code(4)
        model = CosmicRayModel(seed=seed)
        defects = model.sample_defective_qubits(patch.all_qubit_coords(), 2)
        try:
            defect_removal(patch, defects, compute_distances=False)
        except ValueError:
            return
        graph = code_distance(patch.code)
        exact = code_distance(patch.code, exact=True)
        for g, e in zip(graph, exact, strict=True):
            assert 1 <= g <= e
