"""Packed-engine equivalence tests: compiled circuits, bitplane frames,
linearity-composed DEMs, and the eval-layer decoder cache.

The packed engine must be *exactly* interchangeable with the unpacked
reference: identical DEMs mechanism-for-mechanism, bit-identical samples
under a shared pre-drawn noise mask, and correct round-trips for ragged
shot counts (shots % 64 != 0).
"""

import pytest

from repro.deform import data_q_rm, syndrome_q_rm
from repro.eval import montecarlo as mc
from repro.sim import Circuit, FrameSampler, NoiseModel, build_dem, memory_circuit
from repro.surface import rotated_surface_code


def toy_circuit(p=3e-3):
    """Every instruction kind, including multi-target noise channels."""
    c = Circuit()
    c.reset(0, 1, 2, 3)
    c.x_error(p, 0, 1, 2, 3)
    c.h(0)
    c.depolarize1(2 * p, 0, 1, 2)
    c.cx(0, 1, 2, 3)
    c.depolarize2(p, 0, 1, 2, 3)
    c.h(0)
    c.z_error(p, 0, 2)
    c.reset_x(3)
    c.z_error(p, 3)
    recs = c.measure(0, 1, 2)
    recs += c.measure_x(3)
    c.detector([recs[0]])
    c.detector([recs[1], recs[2]])
    c.detector([recs[3]])
    c.detector([])  # empty detector exercises the dummy-record wiring
    c.observable([recs[1]])
    return c


def deformed_patch():
    """d=5 patch with a removed syndrome qubit (direct gauge
    measurements via weight-1 gauge operators) and a removed data qubit."""
    patch = rotated_surface_code(5)
    syndrome_q_rm(patch, (4, 6))
    data_q_rm(patch, (7, 7))
    return patch


def assert_same_dem(circuit):
    legacy = build_dem(circuit, method="legacy")
    packed = build_dem(circuit)
    assert packed.num_detectors == legacy.num_detectors
    assert packed.num_observables == legacy.num_observables
    assert packed.dropped_hyperedges == legacy.dropped_hyperedges
    assert len(packed.mechanisms) == len(legacy.mechanisms)
    for got, want in zip(packed.mechanisms, legacy.mechanisms, strict=True):
        assert got.detectors == want.detectors
        assert got.observable_flip == want.observable_flip
        assert got.probability == pytest.approx(want.probability, abs=1e-12)


class TestDEMAgreement:
    """Packed basis-injection DEMs == legacy propagate-every-mechanism."""

    def test_toy_circuit(self):
        assert_same_dem(toy_circuit())

    @pytest.mark.parametrize("basis", ["Z", "X"])
    @pytest.mark.parametrize("distance", [3, 5])
    def test_memory_circuits(self, distance, basis):
        patch = rotated_surface_code(distance)
        circuit = memory_circuit(patch.code, basis, 3, NoiseModel.uniform(1e-3))
        assert_same_dem(circuit)

    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_deformed_code_with_direct_gauge_measurements(self, basis):
        patch = deformed_patch()
        assert any(ch.ancilla is None for ch in patch.code.checks.values()), (
            "deformation should leave directly-measured weight-1 gauges"
        )
        circuit = memory_circuit(patch.code, basis, 3, NoiseModel.uniform(1e-3))
        assert_same_dem(circuit)

    def test_defective_qubits(self):
        patch = rotated_surface_code(3)
        ancilla = next(
            ch.ancilla for ch in patch.code.checks.values() if ch.ancilla
        )
        circuit = memory_circuit(
            patch.code,
            "Z",
            3,
            NoiseModel.uniform(1e-3),
            defective_data={(2, 2)},
            defective_ancillas={ancilla},
        )
        assert_same_dem(circuit)

    def test_merge_false_sums_probabilities(self):
        c = toy_circuit()
        legacy = build_dem(c, merge=False, method="legacy")
        packed = build_dem(c, merge=False)
        for got, want in zip(packed.mechanisms, legacy.mechanisms, strict=True):
            assert got.detectors == want.detectors
            assert got.probability == pytest.approx(want.probability, abs=1e-12)

    def test_noiseless_circuit(self):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, "Z", 2, NoiseModel.uniform(0.0))
        assert build_dem(c).mechanisms == []

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            build_dem(toy_circuit(), method="quantum")


class TestSamplerAgreement:
    """Packed and unpacked engines agree exactly under a shared mask."""

    @pytest.mark.parametrize("shots", [1, 63, 64, 65, 128, 1000])
    def test_toy_circuit_shared_mask(self, shots):
        c = toy_circuit(p=0.05)
        packed = FrameSampler(c, seed=5)
        unpacked = FrameSampler(c, packed=False)
        masks = packed.draw_masks(shots)
        det_p, obs_p = packed.sample_masked(masks, shots)
        det_u, obs_u = unpacked.sample_masked(masks, shots)
        assert det_p.shape == det_u.shape == (shots, c.num_detectors)
        assert obs_p.shape == obs_u.shape == (shots, c.num_observables)
        assert (det_p == det_u).all()
        assert (obs_p == obs_u).all()

    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_memory_circuit_shared_mask(self, basis):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, basis, 3, NoiseModel.uniform(3e-3))
        packed = FrameSampler(c, seed=7)
        masks = packed.draw_masks(130)
        det_p, obs_p = packed.sample_masked(masks, 130)
        det_u, obs_u = FrameSampler(c, packed=False).sample_masked(masks, 130)
        assert (det_p == det_u).all()
        assert (obs_p == obs_u).all()

    def test_deformed_defective_shared_mask(self):
        """Defect noise (p≈0.5) exercises the dense packed-noise path."""
        patch = deformed_patch()
        ancilla = next(
            ch.ancilla for ch in patch.code.checks.values() if ch.ancilla
        )
        c = memory_circuit(
            patch.code,
            "Z",
            3,
            NoiseModel.uniform(1e-3),
            defective_data={(3, 3)},
            defective_ancillas={ancilla},
        )
        packed = FrameSampler(c, seed=11)
        masks = packed.draw_masks(90)
        det_p, obs_p = packed.sample_masked(masks, 90)
        det_u, obs_u = FrameSampler(c, packed=False).sample_masked(masks, 90)
        assert (det_p == det_u).all()
        assert (obs_p == obs_u).all()

    def test_deterministic_circuit_packed(self):
        """p=1.0 channels (dense path) propagate exactly."""
        c = Circuit()
        c.reset(0, 1)
        c.append("X_ERROR", (0,), 1.0)
        c.cx(0, 1)
        recs = c.measure(0, 1)
        c.detector([recs[0]])
        c.detector([recs[1]])
        det, _ = FrameSampler(c, seed=0).sample(100)
        assert det.all()

    def test_ragged_shots_statistics(self):
        """shots % 64 != 0 must not leak tail bits or drop shots."""
        c = Circuit()
        c.reset(0)
        c.x_error(0.5, 0)
        (rec,) = c.measure(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=3).sample(9999)
        assert det.shape == (9999, 1)
        assert abs(det.mean() - 0.5) < 0.03

    def test_sparse_noise_statistics(self):
        """The Binomial+scatter path reproduces Bernoulli(p) exactly."""
        c = Circuit()
        c.reset(0)
        c.x_error(0.01, 0)
        (rec,) = c.measure(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=13).sample(200_000)
        se = (0.01 * 0.99 / 200_000) ** 0.5
        assert abs(det.mean() - 0.01) < 5 * se

    def test_unpacked_reference_still_default_free(self):
        """packed=False selects the (shots, qubits) reference loop."""
        c = toy_circuit()
        det, obs = FrameSampler(c, seed=1, packed=False).sample(10)
        assert det.shape == (10, c.num_detectors)
        assert obs.shape == (10, c.num_observables)


class TestCompiledCircuit:
    def test_compile_is_cached(self):
        c = toy_circuit()
        assert c.compiled() is c.compiled()

    def test_compile_cache_invalidated_by_append(self):
        c = toy_circuit()
        first = c.compiled()
        c.h(0)
        second = c.compiled()
        assert first is not second
        assert len(second.ops) == len(first.ops) + 1

    def test_fusion_preserves_measurement_wiring(self):
        """Fused consecutive measurements keep contiguous record slices."""
        c = Circuit()
        c.reset(0, 1, 2)
        c.measure(0)
        c.measure(1)
        c.measure(2)
        program = c.compiled()
        meas = [op for op in program.ops if op.kind in ("M", "M1")]
        assert len(meas) == 1
        assert meas[0].m_start == 0
        assert meas[0].targets.tolist() == [0, 1, 2]


class TestDecoderCacheKeying:
    def test_content_identical_codes_hit_cache(self):
        """Fresh but content-identical SubsystemCodes must share a decoder."""
        mc.clear_decoder_cache()
        noise = NoiseModel.uniform(1e-3)
        code_a = rotated_surface_code(3).code
        code_b = rotated_surface_code(3).code
        assert code_a is not code_b
        dec_a = mc._cached_decoder(code_a, "Z", 3, noise, None, None, "blossom")
        dec_b = mc._cached_decoder(code_b, "Z", 3, noise, None, None, "blossom")
        assert dec_a is dec_b
        assert len(mc._DECODER_CACHE) == 1
        mc.clear_decoder_cache()

    def test_different_content_misses_cache(self):
        mc.clear_decoder_cache()
        noise = NoiseModel.uniform(1e-3)
        dec3 = mc._cached_decoder(
            rotated_surface_code(3).code, "Z", 3, noise, None, None, "blossom"
        )
        dec5 = mc._cached_decoder(
            rotated_surface_code(5).code, "Z", 3, noise, None, None, "blossom"
        )
        assert dec3 is not dec5
        assert len(mc._DECODER_CACHE) == 2
        mc.clear_decoder_cache()
