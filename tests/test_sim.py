"""Tests for the circuit IR, Pauli-frame sampler and DEM extraction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Circuit, FrameSampler, NoiseModel, build_dem, memory_circuit
from repro.sim.dem import _expand_channels
from repro.surface import rotated_surface_code


class TestCircuit:
    def test_measure_returns_record_indices(self):
        c = Circuit()
        assert c.measure(0, 1) == [0, 1]
        assert c.measure(2) == [2]
        assert c.num_measurements == 3

    def test_detector_validates_records(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.detector([0])

    def test_unknown_gate_rejected(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.append("CZ", (0, 1))

    def test_cx_needs_pairs(self):
        c = Circuit()
        with pytest.raises(ValueError):
            c.append("CX", (0, 1, 2))

    def test_qubit_count_tracks_max(self):
        c = Circuit()
        c.h(7)
        assert c.num_qubits == 8

    def test_zero_probability_noise_skipped(self):
        c = Circuit()
        c.x_error(0.0, 0)
        assert len(c) == 0


class TestFrameSampler:
    def test_deterministic_bell_detector(self):
        """CX-propagated X error flips both qubits' Z measurements."""
        c = Circuit()
        c.reset(0, 1)
        c.append("X_ERROR", (0,), 1.0)  # always flip
        c.cx(0, 1)
        recs = c.measure(0, 1)
        c.detector([recs[0]])
        c.detector([recs[1]])
        det, _ = FrameSampler(c, seed=0).sample(8)
        assert det.all()

    def test_z_error_invisible_to_z_measurement(self):
        c = Circuit()
        c.reset(0)
        c.append("Z_ERROR", (0,), 1.0)
        (rec,) = c.measure(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=0).sample(8)
        assert not det.any()

    def test_hadamard_converts_z_to_x(self):
        c = Circuit()
        c.reset(0)
        c.append("Z_ERROR", (0,), 1.0)
        c.h(0)
        (rec,) = c.measure(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=0).sample(8)
        assert det.all()

    def test_mx_sees_z_frame(self):
        c = Circuit()
        c.reset_x(0)
        c.append("Z_ERROR", (0,), 1.0)
        (rec,) = c.measure_x(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=0).sample(8)
        assert det.all()

    def test_reset_clears_frame(self):
        c = Circuit()
        c.reset(0)
        c.append("X_ERROR", (0,), 1.0)
        c.reset(0)
        (rec,) = c.measure(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=0).sample(8)
        assert not det.any()

    @given(st.floats(min_value=0.05, max_value=0.5))
    @settings(max_examples=10, deadline=None)
    def test_x_error_rate_statistics(self, p):
        c = Circuit()
        c.reset(0)
        c.x_error(p, 0)
        (rec,) = c.measure(0)
        c.detector([rec])
        det, _ = FrameSampler(c, seed=42).sample(4000)
        assert abs(det.mean() - p) < 0.05

    def test_depolarize2_marginal(self):
        """Each qubit of a DEPOLARIZE2 sees an X-component 8/15 p of the time."""
        c = Circuit()
        c.reset(0, 1)
        c.depolarize2(0.3, 0, 1)
        recs = c.measure(0, 1)
        c.detector([recs[0]])
        det, _ = FrameSampler(c, seed=11).sample(20000)
        assert abs(det.mean() - 0.3 * 8 / 15) < 0.02


class TestDEM:
    def test_channel_expansion_counts(self):
        c = Circuit()
        c.reset(0, 1)
        c.x_error(0.1, 0)
        c.depolarize1(0.1, 0)
        c.depolarize2(0.1, 0, 1)
        c.measure(0, 1)
        assert len(_expand_channels(c)) == 1 + 3 + 15

    def test_mechanism_probabilities_merge(self):
        c = Circuit()
        c.reset(0)
        c.x_error(0.1, 0)
        c.x_error(0.1, 0)
        (rec,) = c.measure(0)
        c.detector([rec])
        dem = build_dem(c)
        assert len(dem.mechanisms) == 1
        assert dem.mechanisms[0].probability == pytest.approx(0.1 * 0.9 + 0.9 * 0.1)

    def test_noiseless_circuit_empty_dem(self):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, "Z", 2, NoiseModel.uniform(0.0))
        assert build_dem(c).mechanisms == []

    def test_surface_code_dem_is_graphlike(self):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, "Z", 3, NoiseModel.uniform(1e-3))
        dem = build_dem(c)
        assert dem.dropped_hyperedges == 0
        assert all(len(m.detectors) <= 2 for m in dem.mechanisms)

    def test_mechanisms_match_sampling(self):
        """Single fault injection matches the DEM's predicted signature."""
        c = Circuit()
        c.reset(0, 1)
        c.x_error(0.2, 0)
        c.cx(0, 1)
        recs = c.measure(0, 1)
        c.detector([recs[0]])
        c.detector([recs[1]])
        c.observable([recs[1]])
        dem = build_dem(c)
        (m,) = dem.mechanisms
        assert m.detectors == (0, 1)
        assert m.observable_flip


class TestMemoryCircuit:
    @pytest.mark.parametrize("basis", ["Z", "X"])
    def test_noiseless_deterministic(self, basis):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, basis, 3, NoiseModel.uniform(0.0))
        det, obs = FrameSampler(c, seed=0).sample(4)
        assert not det.any() and not obs.any()

    def test_deformed_code_noiseless_deterministic(self):
        """Super-stabilizer detectors stay deterministic (gauge products)."""
        from repro.deform import data_q_rm, syndrome_q_rm

        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 6))
        data_q_rm(patch, (7, 7))
        for basis in ("Z", "X"):
            c = memory_circuit(patch.code, basis, 3, NoiseModel.uniform(0.0))
            det, obs = FrameSampler(c, seed=0).sample(4)
            assert not det.any() and not obs.any()

    def test_detector_count(self):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, "Z", 4, NoiseModel.uniform(1e-3))
        z_gens = sum(1 for g in patch.code.stabilizers.values() if g.basis == "Z")
        assert c.num_detectors == z_gens * (4 + 1)

    def test_rejects_bad_basis(self):
        patch = rotated_surface_code(3)
        with pytest.raises(ValueError):
            memory_circuit(patch.code, "Y", 2, NoiseModel.uniform(0))
