"""Tests for program generators, lattice surgery ops and scheduling."""

import pytest

from repro.codes import check_code, code_distance
from repro.compiler import (
    PAPER_BENCHMARKS,
    grover,
    paper_benchmark,
    qft,
    ripple_carry_adder,
    simon,
)
from repro.surface import rotated_rect_patch
from repro.surgery import (
    TFactory,
    cnot_via_ancilla,
    estimate_schedule,
    merge_patches,
    split_patch,
)


class TestPrograms:
    def test_simon_matches_table2(self):
        p = simon(400, 1000)
        assert p.t_count == 0
        assert abs(p.cx_count - 3.02e5) / 3.02e5 < 0.02

    def test_simon_900(self):
        p = simon(900, 1500)
        assert abs(p.cx_count - 1.01e6) / 1.01e6 < 0.02

    def test_rca_matches_table2(self):
        p = ripple_carry_adder(729, 100)
        assert abs(p.cx_count - 5.82e5) / 5.82e5 < 0.01
        assert abs(p.t_count - 5.10e5) / 5.10e5 < 0.01

    def test_qft_matches_table2(self):
        p = qft(25, 160)
        assert abs(p.cx_count - 1.02e5) / 1.02e5 < 0.05
        assert abs(p.t_count - 1.87e8) / 1.87e8 < 0.05

    def test_qft_100(self):
        p = qft(100, 20)
        assert abs(p.t_count - 1.58e9) / 1.58e9 < 0.05

    def test_grover_scales_exponentially(self):
        assert grover(16, 1).t_count > 50 * grover(9, 1).t_count

    def test_paper_benchmarks_complete(self):
        assert len(PAPER_BENCHMARKS) == 8
        for prog in PAPER_BENCHMARKS.values():
            assert len(prog.distances) == 2
            assert prog.cx_count > 0

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            paper_benchmark("Shor-2048")


class TestSurgeryOps:
    def test_merge_produces_wider_code(self):
        a = rotated_rect_patch(3, 3, (0, 0))
        b = rotated_rect_patch(3, 3, (10, 0))
        merged = merge_patches(a, b)
        check_code(merged.code)
        dx, dz = code_distance(merged.code)
        assert dz == 8 and dx == 3

    def test_merge_requires_aligned_heights(self):
        a = rotated_rect_patch(3, 3, (0, 0))
        b = rotated_rect_patch(3, 4, (10, 0))
        with pytest.raises(ValueError):
            merge_patches(a, b)

    def test_merge_rejects_overlap(self):
        a = rotated_rect_patch(3, 3, (0, 0))
        b = rotated_rect_patch(3, 3, (2, 0))
        with pytest.raises(ValueError):
            merge_patches(a, b)

    def test_split_round_trip(self):
        a = rotated_rect_patch(3, 3, (0, 0))
        b = rotated_rect_patch(3, 3, (8, 0))
        merged = merge_patches(a, b)
        left, right = split_patch(merged, 3)
        check_code(left.code)
        check_code(right.code)
        assert code_distance(left.code) == (3, 3)
        assert code_distance(right.code) == (3, 3)

    def test_split_validates_width(self):
        merged = merge_patches(
            rotated_rect_patch(3, 3, (0, 0)), rotated_rect_patch(3, 3, (8, 0))
        )
        with pytest.raises(ValueError):
            split_patch(merged, 6)

    def test_cnot_window_count(self):
        ops = cnot_via_ancilla(9, path_length=3)
        assert len(ops) == 4
        assert all(op.rounds == 9 for op in ops)


class TestSchedule:
    def test_t_limited_program(self):
        est = estimate_schedule(
            cx_count=1e5, t_count=1e9, num_logical=100, d=25
        )
        assert est.t_windows > est.cnot_windows

    def test_clifford_only_program(self):
        est = estimate_schedule(cx_count=3e5, t_count=0, num_logical=400, d=19)
        assert est.t_windows == 0
        assert est.total_cycles == pytest.approx(est.cnot_windows * 19)

    def test_factory_rate(self):
        factory = TFactory(d=15)
        assert factory.rounds_per_state == pytest.approx(90.0)
        assert factory.rounds_for(100, num_factories=10) == pytest.approx(900.0)

    def test_capacity_floor(self):
        est = estimate_schedule(cx_count=10, t_count=0, num_logical=2, d=5)
        assert est.parallel_capacity >= 1.0
