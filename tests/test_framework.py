"""Tests for the SurfDeformer facade and Monte-Carlo harness integration."""


from repro import SurfDeformer, rotated_surface_code
from repro.codes import check_code
from repro.compiler import paper_benchmark, simon
from repro.defects import DefectDetector
from repro.eval import memory_experiment, logical_error_rate
from repro.sim import NoiseModel


class TestPlan:
    def test_plan_produces_layout(self):
        framework = SurfDeformer()
        plan = framework.plan(simon(16, 10), target_risk=0.01)
        assert plan.spec.num_logical == 16
        assert plan.spec.d >= 3
        assert plan.spec.inter_space == plan.spec.d + plan.spec.delta_d
        assert plan.total_cycles > 0

    def test_tighter_risk_needs_larger_distance(self):
        framework = SurfDeformer()
        loose = framework.plan(paper_benchmark("RCA-225-500"), target_risk=0.1)
        tight = framework.plan(paper_benchmark("RCA-225-500"), target_risk=1e-4)
        assert tight.spec.d >= loose.spec.d


class TestRuntime:
    def test_on_defects_restores_distance(self):
        framework = SurfDeformer()
        patch = rotated_surface_code(5)
        report = framework.on_defects(patch, {(5, 5)})
        check_code(patch.code)
        assert report.restored

    def test_imperfect_detector_misses(self):
        framework = SurfDeformer(detector=DefectDetector(false_negative=1.0, seed=0))
        patch = rotated_surface_code(5)
        report = framework.on_defects(patch, {(5, 5)})
        # Everything missed: nothing handled, nothing enlarged.
        assert report.removal.handled == []
        assert (5, 5) in patch.code.data_qubits

    def test_deformation_unit_budget_follows_delta_d(self):
        framework = SurfDeformer()
        plan = framework.plan(simon(16, 10), target_risk=0.01)
        unit = framework.deformation_unit(plan.spec)
        assert unit.max_layers_per_side == max(1, plan.spec.delta_d // 2)


class TestMemoryHarness:
    def test_memory_result_per_round_conversion(self):
        result = memory_experiment(
            rotated_surface_code(3).code,
            "Z",
            NoiseModel.uniform(5e-3),
            rounds=3,
            shots=500,
            seed=9,
        )
        assert 0 <= result.per_round <= result.per_shot <= 1

    def test_defective_qubits_raise_error_rate(self):
        code = rotated_surface_code(3).code
        noise = NoiseModel.uniform(1e-3)
        clean = memory_experiment(code, "Z", noise, rounds=3, shots=800, seed=10)
        dirty = memory_experiment(
            code,
            "Z",
            noise,
            rounds=3,
            shots=800,
            seed=10,
            defective_data={(3, 3), (3, 5)},
        )
        assert dirty.errors > clean.errors

    def test_removal_recovers_error_rate(self):
        """The fig. 11(a) effect in miniature: removing defects restores
        near-clean logical error rates at reduced distance."""
        from repro.deform import defect_removal

        noise = NoiseModel.uniform(1e-3)
        defects = {(5, 5), (5, 7), (7, 5), (7, 7)}  # a burst region
        untreated = memory_experiment(
            rotated_surface_code(5).code,
            "Z",
            noise,
            rounds=5,
            shots=600,
            seed=11,
            defective_data=defects,
        )
        treated_patch = rotated_surface_code(5)
        defect_removal(treated_patch, defects)
        treated = memory_experiment(
            treated_patch.code, "Z", noise, rounds=5, shots=600, seed=11
        )
        assert treated.errors < untreated.errors

    def test_combined_rate_sums_bases(self):
        rate = logical_error_rate(
            rotated_surface_code(3).code,
            NoiseModel.uniform(5e-3),
            rounds=3,
            shots=300,
            seed=12,
        )
        assert rate >= 0
