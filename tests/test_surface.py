"""Tests for rotated surface code construction and geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import code_distance, check_code
from repro.pauli import commutes
from repro.surface import (
    face_neighbors,
    face_type,
    is_data_coord,
    is_face_coord,
    rotated_rect_patch,
    rotated_surface_code,
)


class TestLattice:
    def test_data_coord_parity(self):
        assert is_data_coord((1, 1))
        assert not is_data_coord((0, 0))
        assert not is_data_coord((1, 2))

    def test_face_coord_parity(self):
        assert is_face_coord((2, 4))
        assert not is_face_coord((1, 1))

    def test_face_type_checkerboard(self):
        assert face_type((2, 0)) == "X"
        assert face_type((2, 2)) == "Z"
        assert face_type((4, 2)) == "X"

    def test_face_type_rejects_data(self):
        with pytest.raises(ValueError):
            face_type((1, 1))

    def test_face_neighbors_are_diagonal(self):
        assert set(face_neighbors((2, 2))) == {(1, 1), (1, 3), (3, 1), (3, 3)}


class TestSquarePatch:
    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_counts(self, d):
        patch = rotated_surface_code(d)
        assert patch.code.n == d * d
        assert len(patch.code.checks) == d * d - 1

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_balanced_check_types(self, d):
        patch = rotated_surface_code(d)
        x = sum(1 for c in patch.code.checks.values() if c.basis == "X")
        z = sum(1 for c in patch.code.checks.values() if c.basis == "Z")
        assert abs(x - z) <= 1
        assert x + z == d * d - 1

    @pytest.mark.parametrize("d", [2, 3, 4, 5])
    def test_distance(self, d):
        patch = rotated_surface_code(d)
        assert code_distance(patch.code) == (d, d)

    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_distance_matches_brute_force(self, d):
        patch = rotated_surface_code(d)
        assert code_distance(patch.code, exact=True) == (d, d)

    @pytest.mark.parametrize("d", [3, 5])
    def test_validity(self, d):
        check_code(rotated_surface_code(d).code)

    def test_logicals_anticommute(self):
        patch = rotated_surface_code(5)
        assert not commutes(patch.code.logical_x, patch.code.logical_z)

    def test_origin_offset(self):
        patch = rotated_surface_code(3, origin=(4, 8))
        check_code(patch.code)
        assert code_distance(patch.code) == (3, 3)
        assert all(q[0] >= 5 and q[1] >= 9 for q in patch.code.data_qubits)

    def test_rejects_odd_origin(self):
        with pytest.raises(ValueError):
            rotated_rect_patch(3, 3, origin=(1, 0))

    def test_rejects_tiny_distance(self):
        with pytest.raises(ValueError):
            rotated_surface_code(1)


class TestRectPatch:
    @pytest.mark.parametrize("w,h", [(3, 5), (5, 3), (2, 4), (4, 2), (3, 4)])
    def test_rect_distances(self, w, h):
        patch = rotated_rect_patch(w, h)
        check_code(patch.code)
        dx, dz = code_distance(patch.code)
        assert dz == w
        assert dx == h

    @pytest.mark.parametrize("origin", [(0, 0), (2, 0), (0, 2), (2, 2), (-2, -4)])
    def test_rect_distance_origin_invariant(self, origin):
        patch = rotated_rect_patch(3, 4, origin=origin)
        check_code(patch.code)
        assert code_distance(patch.code) == (4, 3)

    @given(
        w=st.integers(2, 5),
        h=st.integers(2, 5),
        ox=st.integers(-3, 3),
        oy=st.integers(-3, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_rect_property(self, w, h, ox, oy):
        patch = rotated_rect_patch(w, h, origin=(2 * ox, 2 * oy))
        check_code(patch.code)
        assert code_distance(patch.code) == (h, w)


class TestClassification:
    def test_interior_data(self):
        patch = rotated_surface_code(5)
        assert patch.classify((5, 5)) == ("data", "interior")

    def test_west_edge_is_edge_z(self):
        patch = rotated_surface_code(5)
        assert patch.classify((1, 5)) == ("data", "edge_z")

    def test_north_edge_is_edge_x(self):
        patch = rotated_surface_code(5)
        assert patch.classify((5, 9)) == ("data", "edge_x")

    def test_corner(self):
        patch = rotated_surface_code(5)
        assert patch.classify((1, 1)) == ("data", "corner")

    def test_interior_syndrome(self):
        patch = rotated_surface_code(5)
        kind, region = patch.classify((4, 6))
        assert kind == "syndrome" and region == "interior"

    def test_boundary_syndrome(self):
        patch = rotated_surface_code(5)
        kind, region = patch.classify((2, 0))
        assert kind == "syndrome" and region != "interior"

    def test_classify_rejects_inactive(self):
        patch = rotated_surface_code(3)
        with pytest.raises(ValueError):
            patch.classify((99, 99))

    def test_physical_qubit_count(self):
        patch = rotated_surface_code(3)
        assert patch.physical_qubit_count() == 9 + 8

    def test_copy_is_independent(self):
        patch = rotated_surface_code(3)
        clone = patch.copy()
        clone.code.data_qubits.discard((1, 1))
        clone.defective_data.add((1, 1))
        assert (1, 1) in patch.code.data_qubits
        assert not patch.defective_data
