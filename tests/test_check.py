"""The checker checks itself: fixture files must fail/pass per rule,
suppressions must scope exactly, and the real tree must be clean.

Each fixture under ``tests/fixtures/check/`` declares the repo path it
pretends to live at in a ``# virtual-path:`` header, so a fixture can
exercise a path-scoped rule without living inside ``src/``.  The
fixture directory is skipped by the engine's file walk (and excluded
from ruff) because its contents violate rules on purpose.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import typing
from collections import Counter
from pathlib import Path

import pytest

from tools.check import ALL_RULES, check_source, run_paths

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "check"

RULE_CODES = tuple(rule.code for rule in ALL_RULES)


def fixture_findings(name: str):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    header = source.splitlines()[0]
    assert header.startswith("# virtual-path: "), name
    virtual_path = header.removeprefix("# virtual-path: ").strip()
    return check_source(source, virtual_path, ALL_RULES)


class TestRuleCatalogue:
    def test_codes_unique_and_complete(self):
        assert sorted(RULE_CODES) == [
            "REP001",
            "REP002",
            "REP003",
            "REP004",
            "REP005",
            "REP006",
            "REP007",
            "REP008",
        ]

    def test_every_rule_has_summary(self):
        for rule in ALL_RULES:
            assert rule.summary


class TestSeededFixtures:
    """One failing and one passing fixture per rule."""

    # rule -> (fail fixture, expected finding count)
    EXPECTED: typing.ClassVar[dict[str, tuple[str, int]]] = {
        "REP001": ("rep001_fail.py", 2),
        "REP002": ("rep002_fail.py", 4),
        "REP003": ("rep003_fail.py", 5),
        "REP004": ("rep004_fail.py", 4),
        "REP005": ("rep005_fail.py", 3),
        "REP006": ("rep006_fail.py", 3),
        "REP007": ("rep007_fail.py", 2),
        "REP008": ("rep008_fail.py", 4),
    }

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_fail_fixture_fires_exactly_its_rule(self, code):
        name, count = self.EXPECTED[code]
        findings = fixture_findings(name)
        by_rule = Counter(f.rule for f in findings)
        assert by_rule[code] == count, findings
        # Seeded fixtures are single-rule: nothing else may fire, so a
        # rule regression can't hide behind another rule's findings.
        assert set(by_rule) == {code}, findings

    @pytest.mark.parametrize("code", RULE_CODES)
    def test_pass_fixture_is_clean(self, code):
        name = f"{code.lower()}_pass.py"
        assert fixture_findings(name) == []

    def test_findings_carry_location_and_message(self):
        findings = fixture_findings("rep003_fail.py")
        for f in findings:
            assert f.line > 1
            assert f.col >= 1
            assert "Generator" in f.message or "numpy" in f.message
            assert f.render().startswith("src/repro/sim/bad_rng.py:")


class TestSuppressions:
    def test_line_suppression_is_per_rule(self):
        findings = fixture_findings("suppress_line.py")
        # The correctly-bracketed suppression removes one REP004; the
        # wrong-code suppression leaves the other REP004 standing.
        assert [f.rule for f in findings] == ["REP004"]
        # ...and it is the un-suppressed second call site that fires.
        assert findings[0].line > 10

    def test_file_suppression_is_per_rule(self):
        findings = fixture_findings("suppress_file.py")
        assert [f.rule for f in findings] == ["REP004"]

    def test_bare_line_ignore_suppresses_everything(self):
        source = textwrap.dedent(
            """\
            import numpy as np

            def f(w, k):
                return np.argpartition(w, k)  # repcheck: ignore
            """
        )
        assert check_source(source, "src/repro/decode/x.py", ALL_RULES) == []

    def test_rules_scope_by_path(self):
        source = "import networkx as nx\n"
        assert check_source(source, "src/repro/decode/x.py", ALL_RULES) != []
        assert check_source(source, "src/repro/layout/x.py", ALL_RULES) == []
        assert check_source(source, "tests/test_x.py", ALL_RULES) == []


class TestCleanTree:
    def test_repo_is_clean(self):
        findings = run_paths(
            [REPO / "src", REPO / "benchmarks", REPO / "tests"],
            ALL_RULES,
            root=REPO,
        )
        assert findings == [], "\n".join(f.render() for f in findings)


class TestCli:
    """End-to-end through ``python -m tools.check`` on a temp tree."""

    def run_cli(self, cwd, *args):
        return subprocess.run(
            [sys.executable, "-m", "tools.check", *args],
            cwd=cwd,
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": str(REPO)},
        )

    def test_exit_codes_and_json(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "decode" / "bad.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import networkx\n", encoding="utf-8")
        ok = tmp_path / "src" / "repro" / "layout" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("import networkx\n", encoding="utf-8")

        result = self.run_cli(tmp_path, "src", "--json", "findings.json")
        assert result.returncode == 1
        assert "REP001" in result.stdout
        assert "src/repro/decode/bad.py:1:" in result.stdout
        assert "REP001" in (tmp_path / "findings.json").read_text()

        bad.write_text("import numpy as np\n", encoding="utf-8")
        result = self.run_cli(tmp_path, "src")
        assert result.returncode == 0
        assert result.stdout == ""

    def test_missing_path_is_usage_error(self, tmp_path):
        result = self.run_cli(tmp_path, "no-such-dir")
        assert result.returncode == 2

    def test_syntax_error_is_usage_error(self, tmp_path):
        broken = tmp_path / "src" / "repro" / "decode" / "broken.py"
        broken.parent.mkdir(parents=True)
        broken.write_text("def f(:\n", encoding="utf-8")
        result = self.run_cli(tmp_path, "src")
        assert result.returncode == 2
        assert "cannot parse" in result.stderr

    def test_list_rules(self, tmp_path):
        result = self.run_cli(tmp_path, "--list-rules")
        assert result.returncode == 0
        for code in RULE_CODES:
            assert code in result.stdout
