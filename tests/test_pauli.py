"""Unit and property tests for the Pauli algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pauli import PauliOp, commutes, symplectic_product

QUBITS = [(x, y) for x in range(1, 8, 2) for y in range(1, 8, 2)]


def pauli_ops():
    return st.builds(
        PauliOp,
        x_support=st.sets(st.sampled_from(QUBITS), max_size=6),
        z_support=st.sets(st.sampled_from(QUBITS), max_size=6),
    )


class TestConstruction:
    def test_from_label(self):
        op = PauliOp.from_label({(1, 1): "X", (3, 3): "Z", (5, 5): "Y", (7, 7): "I"})
        assert op.letter((1, 1)) == "X"
        assert op.letter((3, 3)) == "Z"
        assert op.letter((5, 5)) == "Y"
        assert op.letter((7, 7)) == "I"
        assert op.weight == 3

    def test_from_label_rejects_bad_letter(self):
        with pytest.raises(ValueError):
            PauliOp.from_label({(1, 1): "Q"})

    def test_x_on_single_qubit_needs_wrapping(self):
        op = PauliOp.x_on([(1, 1)])
        assert op.support == {(1, 1)}

    def test_identity(self):
        assert PauliOp.identity().is_identity()
        assert PauliOp.identity().weight == 0

    def test_css_type_predicates(self):
        assert PauliOp.x_on([(1, 1)]).is_x_type()
        assert PauliOp.z_on([(1, 1)]).is_z_type()
        assert not PauliOp.from_label({(1, 1): "Y"}).is_x_type()


class TestAlgebra:
    def test_product_cancels_shared_support(self):
        a = PauliOp.x_on([(1, 1), (3, 3)])
        b = PauliOp.x_on([(3, 3), (5, 5)])
        assert (a * b).x_support == frozenset({(1, 1), (5, 5)})

    def test_xz_same_qubit_anticommute(self):
        assert not commutes(PauliOp.x_on([(1, 1)]), PauliOp.z_on([(1, 1)]))

    def test_xz_different_qubits_commute(self):
        assert commutes(PauliOp.x_on([(1, 1)]), PauliOp.z_on([(3, 3)]))

    def test_overlap_two_commutes(self):
        a = PauliOp.x_on([(1, 1), (3, 3)])
        b = PauliOp.z_on([(1, 1), (3, 3)])
        assert commutes(a, b)

    def test_y_anticommutes_with_x_and_z(self):
        y = PauliOp.from_label({(1, 1): "Y"})
        assert not commutes(y, PauliOp.x_on([(1, 1)]))
        assert not commutes(y, PauliOp.z_on([(1, 1)]))

    @given(pauli_ops(), pauli_ops())
    @settings(max_examples=100)
    def test_symplectic_symmetry(self, a, b):
        assert symplectic_product(a, b) == symplectic_product(b, a)

    @given(pauli_ops())
    @settings(max_examples=50)
    def test_self_commutes(self, a):
        assert commutes(a, a)

    @given(pauli_ops())
    @settings(max_examples=50)
    def test_self_inverse(self, a):
        assert (a * a).is_identity()

    @given(pauli_ops(), pauli_ops(), pauli_ops())
    @settings(max_examples=50)
    def test_product_associative(self, a, b, c):
        assert (a * b) * c == a * (b * c)

    @given(pauli_ops(), pauli_ops(), pauli_ops())
    @settings(max_examples=50)
    def test_commutation_bilinear(self, a, b, c):
        lhs = symplectic_product(a * b, c)
        rhs = (symplectic_product(a, c) + symplectic_product(b, c)) % 2
        assert lhs == rhs


class TestSymplectic:
    def test_round_trip(self):
        order = QUBITS[:6]
        op = PauliOp.from_label({order[0]: "X", order[2]: "Y", order[5]: "Z"})
        row = op.to_symplectic(order)
        assert PauliOp.from_symplectic(row, order) == op

    def test_row_layout(self):
        order = [(1, 1), (3, 3)]
        op = PauliOp.from_label({(1, 1): "X", (3, 3): "Z"})
        row = op.to_symplectic(order)
        assert row.tolist() == [1, 0, 0, 1]

    def test_bad_length_raises(self):
        with pytest.raises(ValueError):
            PauliOp.from_symplectic(np.zeros(3, dtype=np.uint8), [(1, 1)])

    @given(pauli_ops())
    @settings(max_examples=50)
    def test_round_trip_property(self, op):
        order = sorted(QUBITS)
        assert PauliOp.from_symplectic(op.to_symplectic(order), order) == op


class TestMisc:
    def test_restricted_to(self):
        op = PauliOp.from_label({(1, 1): "X", (3, 3): "Z"})
        assert op.restricted_to([(1, 1)]) == PauliOp.x_on([(1, 1)])

    def test_hashable_and_eq(self):
        a = PauliOp.x_on([(1, 1)])
        b = PauliOp.x_on([(1, 1)])
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_contains_letters(self):
        op = PauliOp.from_label({(1, 1): "Y"})
        assert "Y" in repr(op)
