# virtual-path: src/repro/decode/good_dedup.py
# Dedup on packed uint64 words; value-dedup and other axes stay legal.
import numpy as np

from repro.utils.gf2 import gf2_pack_rows, gf2_unpack


def dedup(rows):
    packed = gf2_pack_rows(rows)
    unique_words, inverse = np.unique(packed, axis=0, return_inverse=True)
    return gf2_unpack(unique_words, rows.shape[1]), inverse


def unique_sizes(counts):
    return np.unique(counts)


def unique_columns(arr):
    return np.unique(arr, axis=1)
