# virtual-path: src/repro/eval/bad_write.py
# Seeded violation: durable writes around the store (REP002 x4).
import pickle
from pathlib import Path


def save_results(path, results):
    with open(path, "w") as f:
        f.write(repr(results))


def save_pickle(path, obj):
    with open(path, "wb") as f:
        pickle.dump(obj, f)


def save_text(path, text):
    Path(path).write_text(text)
