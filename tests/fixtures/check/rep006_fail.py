# virtual-path: src/repro/eval/bad_seed.py
# Seeded violation: wall-clock seed + fork-unsafe pools (REP006 x3).
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np


def fresh_seed():
    return int(time.time() * 1e6)


def decode_parallel(shards, fn):
    with multiprocessing.Pool(4) as pool:
        return pool.map(fn, shards)


def decode_futures(shards, fn):
    with ProcessPoolExecutor() as pool:
        return list(pool.map(fn, shards))
