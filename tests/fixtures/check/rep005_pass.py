# virtual-path: src/repro/eval/good_load.py
# The store verifies length + SHA-256 before unpickling; plain np.load
# without allow_pickle never executes bytecode.
import numpy as np

from repro.store import get_store


def load_cache(kind, key, builder):
    store = get_store()
    if store is None:
        return builder()
    return store.get_or_build(kind, key, builder)


def load_matrix(path):
    return np.load(path, allow_pickle=False)
