# virtual-path: src/repro/eval/bad_load.py
# Seeded violation: unverified unpickle outside the store (REP005 x3).
import pickle

import numpy as np


def load_cache(path):
    with open(path, "rb") as f:
        return pickle.load(f)


def load_blob(blob):
    return pickle.loads(blob)


def load_matrix(path):
    return np.load(path, allow_pickle=True)
