# virtual-path: src/repro/eval/good_write.py
# Reads, pickle.dumps (bytes in memory) and the store helpers are fine.
import pickle

from repro.store import atomic_write_bytes, atomic_write_text, durable_append


def load_config(path):
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def save_results(path, results):
    atomic_write_text(path, repr(results))


def save_pickle(path, obj):
    atomic_write_bytes(path, pickle.dumps(obj))


def log_line(path, line):
    durable_append(path, line)
