# virtual-path: src/repro/eval/bad_workers.py
# Non-canonical worker-count spellings in function definitions.


def run_pool(shots, *, num_workers=None):
    return shots, num_workers


def shard(batch, n_jobs=1):
    return batch, n_jobs


async def serve(stream, *, max_workers=2):
    return stream, max_workers


def legacy_only(shots, *, decoder_workers=None):
    # decoder_workers without the canonical workers beside it is not
    # the shim shape — it IS the old API.
    return shots, decoder_workers
