# virtual-path: src/repro/decode/suppressed_line.py
# Per-line, per-rule suppression: the bracketed code is suppressed,
# everything else still fires.
import numpy as np


def tail_partition(weights, k):
    # Order never feeds decode output here: only the *membership* of
    # the tail set is used, which argpartition does guarantee.
    return np.argpartition(weights, k)[:k]  # repcheck: ignore[REP004]


def wrong_code_does_not_suppress(weights, k):
    return np.argpartition(weights, k)[:k]  # repcheck: ignore[REP001]
