# virtual-path: src/repro/layout/ok_import.py
# networkx is allowed outside src/repro/decode/ (layout, codes).
import networkx as nx


def build(edges):
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return graph
