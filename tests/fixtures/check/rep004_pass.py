# virtual-path: src/repro/decode/good_order.py
# Stable (weight, index) argsort and sorted set materialisation.
import numpy as np


def knn_seeds(weights, k):
    order = np.lexsort((np.arange(weights.size), weights))
    return order[:k]


def component_nodes(defects):
    ordered = sorted(set(defects))
    for d in ordered:
        yield d
