# virtual-path: src/repro/sim/bad_rng.py
# Seeded violation: global-state RNG (REP003 x5).
import random

import numpy as np
from numpy.random import shuffle


def sample(n):
    np.random.seed(1234)
    values = np.random.randint(0, 2, size=n)
    shuffle(values)
    return values


def jitter():
    return random.random() + random.gauss(0.0, 1.0)
