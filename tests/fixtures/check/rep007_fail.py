# virtual-path: src/repro/decode/bad_dedup.py
# Seeded violation: axis-0 np.unique on byte-wide rows (REP007 x2).
import numpy as np


def dedup(rows):
    unique, inverse = np.unique(rows, axis=0, return_inverse=True)
    return unique, inverse


def dedup_nonzero(rows):
    mask = rows.any(axis=1)
    return np.unique(rows[mask], axis=0)
