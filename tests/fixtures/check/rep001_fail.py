# virtual-path: src/repro/decode/bad_import.py
# Seeded violation: networkx back in the decode hot path (REP001 x2).
import networkx as nx
from networkx.algorithms import matching


def shortest(graph, a, b):
    return nx.shortest_path(graph, a, b, weight="weight")


def match(graph):
    return matching.min_weight_matching(graph)
