# virtual-path: src/repro/sim/suppressed_file.py
# repcheck: file-ignore[REP003]
# File-wide suppression of one rule; other rules still fire.
import numpy as np


def sample(n):
    return np.random.randint(0, 2, size=n)


def seeds(weights, k):
    return np.argpartition(weights, k)[:k]
