# virtual-path: src/repro/eval/good_workers.py
# Canonical workers= spelling, the sanctioned shim shape, and
# call-site keywords into foreign APIs (which keep their own names).
from concurrent.futures import ThreadPoolExecutor


def run_pool(shots, *, workers=None):
    return shots, workers


def shim(shots, *, workers=None, decoder_workers=None):
    # Deprecation-shim shape: canonical spelling bound alongside.
    return shots, workers, decoder_workers


class Spec:
    def __post_init__(self, decoder_workers):
        # Dataclass InitVar plumbing: the canonical field lives on
        # the class, only the deprecated alias reaches __post_init__.
        return decoder_workers


def make_pool(workers):
    return ThreadPoolExecutor(max_workers=workers)
