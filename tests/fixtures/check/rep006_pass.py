# virtual-path: src/repro/eval/good_seed.py
# perf_counter for measurement, SeedSequence for entropy.
import time

from numpy.random import SeedSequence


def timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def derive_seeds(root_seed, k):
    return SeedSequence(root_seed).spawn(k)
