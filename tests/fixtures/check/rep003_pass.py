# virtual-path: src/repro/sim/good_rng.py
# Explicit Generator/SeedSequence plumbing is the sanctioned pattern.
import numpy as np
from numpy.random import SeedSequence, default_rng


def sample(n, seed):
    rng = default_rng(SeedSequence(seed))
    return rng.integers(0, 2, size=n)


def child_streams(seed, k):
    return [np.random.default_rng(s) for s in SeedSequence(seed).spawn(k)]
