# virtual-path: src/repro/decode/bad_order.py
# Seeded violation: unordered selection/iteration in decode (REP004 x4).
import numpy as np


def knn_seeds(weights, k):
    return np.argpartition(weights, k)[:k]


def component_nodes(defects):
    ordered = list(set(defects))
    for d in set(defects):
        ordered.append(d)
    return [d * 2 for d in {1, 2, 3}] + ordered
