"""Sliding-window decoding: whole-history agreement, bounded memory.

The agreement suite pins the module docstring's guarantee — committed
predictions match whole-history dense matching bit for bit whenever the
optimum is unique — over a grid of window geometries with overlap
``window - commit >= 2``, both bases, defective circuits, and the
acceptance configuration (a 100-round d=5 stream through a 10/5
window).  The bounded-memory suite pins the *mechanism*: every matching
graph stays within ``(window + pad) x G`` detectors and the stream
buffer within ``window + 1`` layers no matter how many rounds flow
through.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.decode import (
    MatchingDecoder,
    SlidingWindowDecoder,
    WindowConfig,
    WindowStream,
)
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code

NOISE_P = 1e-3


def _case(d, basis, rounds, *, p=NOISE_P, defective_data=None,
          defective_ancillas=None):
    """(code, noise, circuit) of one memory-experiment configuration."""
    code = rotated_surface_code(d).code
    noise = NoiseModel.uniform(p)
    circuit = memory_circuit(
        code, basis, rounds, noise,
        defective_data=defective_data,
        defective_ancillas=defective_ancillas,
    )
    return code, noise, circuit


def _whole_history_reference(circuit, rows):
    return MatchingDecoder(
        build_dem(circuit), matcher="dense"
    ).decode_batch(rows)


def _rows(circuit, shots, seed):
    det, _ = sample_detectors(circuit, shots, seed=seed, output="packed")
    return det.transposed().unpack()


class TestAgreement:
    @pytest.mark.parametrize(
        "window,commit", [(10, 5), (6, 2), (8, 6), (5, 3)]
    )
    def test_d3_z_geometry_grid(self, window, commit):
        code, noise, circuit = _case(3, "Z", 21)
        win = SlidingWindowDecoder(
            code, "Z", noise, config=WindowConfig(window=window, commit=commit)
        )
        for seed in range(20, 29):
            rows = _rows(circuit, 64, seed)
            np.testing.assert_array_equal(
                win.decode_batch(rows),
                _whole_history_reference(circuit, rows),
                err_msg=f"seed={seed} window={window} commit={commit}",
            )

    def test_d3_x_basis(self):
        code, noise, circuit = _case(3, "X", 17)
        win = SlidingWindowDecoder(
            code, "X", noise, config=WindowConfig(window=7, commit=3)
        )
        for seed in range(20, 26):
            rows = _rows(circuit, 64, seed)
            np.testing.assert_array_equal(
                win.decode_batch(rows),
                _whole_history_reference(circuit, rows),
                err_msg=f"seed={seed}",
            )

    def test_d5_acceptance_100_rounds(self):
        """The acceptance case: 100-round d=5 stream, 10/5 window."""
        code, noise, circuit = _case(5, "Z", 100)
        win = SlidingWindowDecoder(
            code, "Z", noise, config=WindowConfig(window=10, commit=5)
        )
        rows = _rows(circuit, 48, 33)
        np.testing.assert_array_equal(
            win.decode_batch(rows),
            _whole_history_reference(circuit, rows),
        )

    def test_d5_defective_circuit(self):
        """Windowing composes with the paper's defect injection."""
        code, noise, circuit = _case(
            5, "Z", 23, defective_data={7, 18}, defective_ancillas={5}
        )
        win = SlidingWindowDecoder(
            code, "Z", noise,
            config=WindowConfig(window=10, commit=5),
            defective_data={7, 18},
            defective_ancillas={5},
        )
        for seed in (33, 34, 35):
            rows = _rows(circuit, 48, seed)
            np.testing.assert_array_equal(
                win.decode_batch(rows),
                _whole_history_reference(circuit, rows),
                err_msg=f"seed={seed}",
            )

    def test_short_stream_falls_back_to_exact(self):
        """A stream no longer than one window is decoded exactly."""
        code, noise, circuit = _case(3, "Z", 4)
        win = SlidingWindowDecoder(
            code, "Z", noise, config=WindowConfig(window=8, commit=4)
        )
        rows = _rows(circuit, 64, 11)
        stream = win.open_stream(len(rows))
        stream.push(rows)
        predictions = stream.finish()
        assert stream.windows_processed == 0
        np.testing.assert_array_equal(
            predictions, _whole_history_reference(circuit, rows)
        )

    def test_chunked_push_matches_one_shot(self):
        """Layer-at-a-time ingestion equals whole-record ingestion."""
        code, noise, circuit = _case(3, "Z", 30)
        win = SlidingWindowDecoder(
            code, "Z", noise, config=WindowConfig(window=10, commit=5)
        )
        rows = _rows(circuit, 64, 3)
        whole = win.decode_batch(rows)
        G = win.layer_width
        stream = win.open_stream(len(rows))
        for lo in range(0, rows.shape[1], G):
            stream.push(rows[:, lo : lo + G])
        np.testing.assert_array_equal(stream.finish(), whole)

    def test_packed_input_matches_rows(self):
        code, noise, circuit = _case(3, "Z", 21)
        win = SlidingWindowDecoder(
            code, "Z", noise, config=WindowConfig(window=10, commit=5)
        )
        det, _ = sample_detectors(circuit, 64, seed=5, output="packed")
        rows = det.transposed().unpack()
        np.testing.assert_array_equal(
            win.decode_batch(det), win.decode_batch(rows)
        )


class TestBoundedMemory:
    def test_buffer_and_graphs_stay_bounded(self):
        """Memory never grows with stream length (the service's bedrock)."""
        code, noise, circuit = _case(5, "Z", 100)
        config = WindowConfig(window=10, commit=5)
        win = SlidingWindowDecoder(code, "Z", noise, config=config)
        rows = _rows(circuit, 16, 33)
        G = win.layer_width
        stream = win.open_stream(len(rows))
        for lo in range(0, rows.shape[1], G):
            stream.push(rows[:, lo : lo + G])
        stream.finish()
        assert stream.max_buffered_layers <= config.window + 1
        bound = (config.window + win.pad) * G
        sizes = win.built_graph_sizes()
        assert sizes
        assert all(size <= bound for size in sizes.values())

    def test_oversized_window_is_rejected_up_front(self):
        code, noise, _ = _case(3, "Z", 3)
        with pytest.raises(ValueError, match="matrix limit"):
            SlidingWindowDecoder(
                code, "Z", noise,
                config=WindowConfig(window=1500, commit=5),
            )


class TestValidation:
    def test_window_config_bounds(self):
        with pytest.raises(ValueError, match="at least 2"):
            WindowConfig(window=1, commit=1)
        with pytest.raises(ValueError, match="commit"):
            WindowConfig(window=5, commit=0)
        with pytest.raises(ValueError, match="commit"):
            WindowConfig(window=5, commit=5)

    def test_stream_input_validation(self):
        code, noise, circuit = _case(3, "Z", 5)
        win = SlidingWindowDecoder(code, "Z", noise)
        with pytest.raises(ValueError, match="positive"):
            win.open_stream(0)
        rows = _rows(circuit, 8, 1)
        stream = win.open_stream(8)
        with pytest.raises(ValueError, match="shots"):
            stream.push(rows[:4])
        with pytest.raises(ValueError, match="whole number"):
            stream.push(rows[:, : win.layer_width + 1])

    def test_finish_is_terminal(self):
        code, noise, circuit = _case(3, "Z", 5)
        win = SlidingWindowDecoder(code, "Z", noise)
        rows = _rows(circuit, 8, 1)
        stream = win.open_stream(8)
        stream.push(rows)
        stream.finish()
        with pytest.raises(RuntimeError, match="finished"):
            stream.finish()
        with pytest.raises(RuntimeError, match="finished"):
            stream.push(rows)

    def test_too_short_stream_is_rejected(self):
        code, noise, circuit = _case(3, "Z", 5)
        win = SlidingWindowDecoder(code, "Z", noise)
        stream = win.open_stream(4)
        stream.push(_rows(circuit, 4, 1)[:, : win.layer_width])
        with pytest.raises(ValueError, match="at least 2 detector layers"):
            stream.finish()

    def test_no_same_basis_stabilizers_is_rejected(self):
        code = rotated_surface_code(3).code
        noise = NoiseModel.uniform(NOISE_P)
        broken = type(code).__new__(type(code))
        broken.__dict__.update(code.__dict__)
        broken.stabilizers = {
            k: g for k, g in code.stabilizers.items() if g.basis == "Z"
        }
        with pytest.raises(ValueError, match="no X-basis"):
            SlidingWindowDecoder(broken, "X", noise)

    def test_stream_types_exported(self):
        stream = SlidingWindowDecoder(
            rotated_surface_code(3).code, "Z", NoiseModel.uniform(NOISE_P)
        ).open_stream(1)
        assert isinstance(stream, WindowStream)
