"""Checkpointed sweep runner: resume, bit-identity, retries, journal."""

import json
import time

import pytest

import repro.sweep.runner as runner_mod
from repro.eval.montecarlo import chunk_plan, memory_experiment
from repro.sim import NoiseModel
from repro.surface import rotated_surface_code
from repro.sweep import (
    ChunkTimeout,
    SweepCell,
    SweepError,
    SweepSpec,
    SweepSpecMismatch,
    cell_seed,
    read_journal,
    run_sweep,
)

pytestmark = pytest.mark.fault_injection

ROUNDS = 3


def small_spec(seed=11, shots=240, chunk_shots=80):
    """Two d=3 cells, three chunks each — fast but error-bearing."""
    return SweepSpec(
        cells=(
            SweepCell(distance=3, p=0.02, rounds=ROUNDS, shots=shots),
            SweepCell(distance=3, p=0.04, rounds=ROUNDS, shots=shots),
        ),
        seed=seed,
        chunk_shots=chunk_shots,
    )


def reference_errors(spec, index):
    """What an uninterrupted chunked run of cell ``index`` produces."""
    cell = spec.cells[index]
    return memory_experiment(
        rotated_surface_code(cell.distance).code,
        cell.basis,
        NoiseModel.uniform(cell.p),
        rounds=cell.rounds,
        shots=cell.shots,
        seed=cell_seed(spec, index),
        chunk_shots=spec.chunk_shots,
    ).errors


class TestChunkPlan:
    def test_single_chunk_passes_seed_through(self):
        assert chunk_plan(100, None, 7) == [(7, 100)]
        assert chunk_plan(100, 100, 7) == [(7, 100)]

    def test_sizes_cover_shots_with_remainder(self):
        plan = chunk_plan(250, 100, 3)
        assert [n for _, n in plan] == [100, 100, 50]
        assert len({seed for seed, _ in plan}) == 3  # decorrelated

    def test_deterministic(self):
        assert chunk_plan(250, 100, 3) == chunk_plan(250, 100, 3)

    def test_cell_seeds_decorrelated_and_stable(self):
        spec = small_spec()
        assert cell_seed(spec, 0) != cell_seed(spec, 1)
        assert cell_seed(spec, 0) == cell_seed(small_spec(), 0)


class TestRunSweep:
    def test_matches_uninterrupted_memory_experiment(self, tmp_path):
        spec = small_spec()
        result = run_sweep(spec, tmp_path / "sweep")
        assert result.executed_chunks == 6
        assert result.resumed_chunks == 0
        for i in range(len(spec.cells)):
            assert result.cells[i].errors == reference_errors(spec, i)
            assert result.cells[i].shots == spec.cells[i].shots
        # The interesting case is a nonzero count on at least one cell.
        assert any(r.errors > 0 for r in result.cells)

    def test_rerun_resumes_every_chunk(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, tmp_path / "sweep")
        second = run_sweep(spec, tmp_path / "sweep")
        assert second.executed_chunks == 0
        assert second.resumed_chunks == 6
        assert [r.errors for r in second.cells] == [
            r.errors for r in first.cells
        ]

    def test_partial_journal_resumes_only_missing_chunks(self, tmp_path):
        spec = small_spec()
        full = run_sweep(spec, tmp_path / "full")

        # Rebuild a journal holding the header and only the first two
        # chunk records — a sweep killed mid-cell-0.
        records, _ = read_journal(full.journal_path)
        kept = [
            records[0],
            *[r for r in records if r.get("type") == "chunk"][:2],
        ]
        partial_dir = tmp_path / "partial"
        partial_dir.mkdir()
        (partial_dir / "journal.jsonl").write_text(
            "".join(json.dumps(r) + "\n" for r in kept)
        )

        resumed = run_sweep(spec, partial_dir)
        assert resumed.resumed_chunks == 2
        assert resumed.executed_chunks == 4
        assert [r.errors for r in resumed.cells] == [
            r.errors for r in full.cells
        ]

    def test_resume_false_refuses_existing_journal(self, tmp_path):
        spec = small_spec()
        run_sweep(spec, tmp_path / "sweep")
        with pytest.raises(SweepError, match="already holds"):
            run_sweep(spec, tmp_path / "sweep", resume=False)

    def test_different_spec_refused(self, tmp_path):
        run_sweep(small_spec(seed=11), tmp_path / "sweep")
        with pytest.raises(SweepSpecMismatch):
            run_sweep(small_spec(seed=12), tmp_path / "sweep")

    def test_tampered_chunk_record_refused(self, tmp_path):
        spec = small_spec()
        result = run_sweep(spec, tmp_path / "sweep")
        records, _ = read_journal(result.journal_path)
        for r in records:
            if r.get("type") == "chunk":
                r["seed"] = r["seed"] ^ 1
                break
        result.journal_path.write_text(
            "".join(json.dumps(r) + "\n" for r in records)
        )
        with pytest.raises(SweepSpecMismatch, match="chunk plan"):
            run_sweep(spec, tmp_path / "sweep")

    def test_torn_tail_tolerated(self, tmp_path):
        spec = small_spec()
        first = run_sweep(spec, tmp_path / "sweep")
        # A crash mid-append leaves a truncated final line.
        with open(first.journal_path, "a") as f:
            f.write('{"type":"chunk","cell":1,"chu')
        records, corrupt = read_journal(first.journal_path)
        assert corrupt == 1
        assert len(records) == 7  # header + 6 chunks survive
        second = run_sweep(spec, tmp_path / "sweep")
        assert second.executed_chunks == 0
        assert [r.errors for r in second.cells] == [
            r.errors for r in first.cells
        ]

    def test_results_json_published(self, tmp_path):
        spec = small_spec()
        result = run_sweep(spec, tmp_path / "sweep")
        payload = json.loads(result.results_path.read_text())
        assert payload["fingerprint"] == spec.fingerprint()
        assert [c["label"] for c in payload["cells"]] == [
            "d3_p0.02_Z",
            "d3_p0.04_Z",
        ]
        assert [c["errors"] for c in payload["cells"]] == [
            r.errors for r in result.cells
        ]
        assert all(not c["failed"] for c in payload["cells"])

    def test_chunk_hook_runs_after_commit(self, tmp_path):
        spec = small_spec()
        seen = []
        run_sweep(spec, tmp_path / "sweep", chunk_hook=seen.append)
        assert len(seen) == 6
        assert all(r["type"] == "chunk" for r in seen)
        # Every hooked record was already durable when the hook ran.
        records, _ = read_journal(tmp_path / "sweep" / "journal.jsonl")
        journaled = [r for r in records if r.get("type") == "chunk"]
        assert seen == journaled

    def test_hook_crash_loses_no_journaled_work(self, tmp_path):
        spec = small_spec()

        def hook(record):
            if record["cell"] == 1:
                raise RuntimeError("observer crashed")

        with pytest.raises(RuntimeError, match="observer crashed"):
            run_sweep(spec, tmp_path / "sweep", chunk_hook=hook)
        resumed = run_sweep(spec, tmp_path / "sweep")
        # Chunks 0-2 of cell 0 and chunk 0 of cell 1 were committed
        # before the hook raised.
        assert resumed.resumed_chunks == 4
        assert resumed.executed_chunks == 2
        assert [r.errors for r in resumed.cells] == [
            reference_errors(spec, i) for i in range(2)
        ]


class TestRetryAndTimeout:
    def test_with_retry_backs_off_exponentially(self):
        sleeps = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ValueError("transient")
            return "ok"

        value, used = runner_mod._with_retry(
            flaky, max_attempts=5, backoff_base=0.25, sleep=sleeps.append
        )
        assert (value, used) == ("ok", 3)
        assert sleeps == [0.25, 0.5]

    def test_with_retry_raises_after_budget(self):
        sleeps = []

        def always():
            raise ValueError("permanent")

        with pytest.raises(ValueError, match="permanent"):
            runner_mod._with_retry(
                always, max_attempts=3, backoff_base=1.0, sleep=sleeps.append
            )
        assert sleeps == [1.0, 2.0]

    def test_transient_chunk_failure_retried(self, tmp_path, monkeypatch):
        spec = small_spec()
        real = memory_experiment
        state = {"failures_left": 2, "calls": 0}

        def flaky(*args, **kwargs):
            state["calls"] += 1
            if state["failures_left"] > 0:
                state["failures_left"] -= 1
                raise OSError("transient worker loss")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_mod, "memory_experiment", flaky)
        sleeps = []
        result = run_sweep(
            spec,
            tmp_path / "sweep",
            max_attempts=3,
            backoff_base=0.125,
            sleep=sleeps.append,
        )
        assert sleeps == [0.125, 0.25]
        assert [r.errors for r in result.cells] == [
            reference_errors(spec, i) for i in range(2)
        ]
        records, _ = read_journal(result.journal_path)
        first_chunk = next(r for r in records if r.get("type") == "chunk")
        assert first_chunk["attempts"] == 3

    def test_permanent_failure_isolated_to_cell(self, tmp_path, monkeypatch):
        spec = small_spec()
        real = memory_experiment

        def broken_cell0(code, basis, noise, **kwargs):
            if kwargs["seed"] in dict(
                chunk_plan(
                    spec.cells[0].shots,
                    spec.chunk_shots,
                    cell_seed(spec, 0),
                )
            ):
                raise RuntimeError("decoder exploded")
            return real(code, basis, noise, **kwargs)

        monkeypatch.setattr(runner_mod, "memory_experiment", broken_cell0)
        result = run_sweep(
            spec,
            tmp_path / "sweep",
            max_attempts=2,
            sleep=lambda s: None,
            strict=False,
        )
        assert result.cells[0].failed
        assert "decoder exploded" in result.cells[0].error
        assert result.cells[0].chunks == 0
        # The healthy cell still ran to completion.
        assert not result.cells[1].failed
        assert result.cells[1].errors == reference_errors(spec, 1)
        records, _ = read_journal(result.journal_path)
        assert any(r.get("type") == "cell_failed" for r in records)
        # results.json records the partial outcome.
        payload = json.loads(result.results_path.read_text())
        assert payload["cells"][0]["failed"]

        # strict=True raises instead, naming the failed cell...
        with pytest.raises(SweepError, match="d3_p0.02_Z"):
            run_sweep(
                spec,
                tmp_path / "strict",
                max_attempts=2,
                sleep=lambda s: None,
            )
        # ...and once the cause is fixed, resuming the journal completes
        # the failed cell bit-identically.
        monkeypatch.setattr(runner_mod, "memory_experiment", real)
        healed = run_sweep(spec, tmp_path / "sweep")
        assert healed.resumed_chunks == 3
        assert healed.executed_chunks == 3
        assert [r.errors for r in healed.cells] == [
            reference_errors(spec, i) for i in range(2)
        ]

    def test_chunk_timeout_counts_as_failure(self, tmp_path, monkeypatch):
        spec = small_spec()

        def stuck(*args, **kwargs):
            time.sleep(5.0)
            raise AssertionError("unreachable")  # pragma: no cover

        monkeypatch.setattr(runner_mod, "memory_experiment", stuck)
        t0 = time.monotonic()
        with pytest.raises(SweepError, match="failed permanently"):
            run_sweep(
                spec,
                tmp_path / "sweep",
                max_attempts=1,
                chunk_timeout=0.1,
                sleep=lambda s: None,
            )
        assert time.monotonic() - t0 < 4.0  # the budget interrupted sleep
        records, _ = read_journal(tmp_path / "sweep" / "journal.jsonl")
        failed = [r for r in records if r.get("type") == "cell_failed"]
        assert failed and "ChunkTimeout" in failed[0]["error"]

    def test_chunk_guard_noop_off_main_thread(self):
        import threading

        outcome = {}

        def worker():
            with runner_mod._chunk_guard(0.001) as guard:
                outcome["active"] = guard.active
                time.sleep(0.05)
            outcome["survived"] = True

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert outcome == {"active": False, "survived": True}

    def test_chunk_timeout_exception_type(self):
        with pytest.raises(ChunkTimeout):
            with runner_mod._chunk_guard(0.05):
                time.sleep(2.0)


class TestSpecPlumbing:
    def test_label(self):
        assert SweepCell(3, 1e-3).label() == "d3_p0.001_Z"
        assert (
            SweepCell(5, 0.02, basis="X", scenario="untreated").label()
            == "d5_p0.02_X_untreated"
        )

    def test_fingerprint_sensitive_to_every_field(self):
        base = small_spec()
        assert base.fingerprint() == small_spec().fingerprint()
        assert base.fingerprint() != small_spec(seed=99).fingerprint()
        assert base.fingerprint() != small_spec(shots=241).fingerprint()
        assert (
            base.fingerprint() != small_spec(chunk_shots=81).fingerprint()
        )

    def test_defect_sets_order_independent(self):
        a = SweepSpec(
            cells=(SweepCell(3, 1e-3, defective_data=frozenset({1, 5, 9})),)
        )
        b = SweepSpec(
            cells=(SweepCell(3, 1e-3, defective_data=frozenset({9, 1, 5})),)
        )
        assert a.fingerprint() == b.fingerprint()

    def test_artifact_store_auto_populates_sweep_dir(self, tmp_path):
        import repro.eval.montecarlo as mc

        # A warm in-process decoder memo skips the build (and thus the
        # store); clear it to exercise the cold path a fresh resume
        # process would take.
        mc._DECODER_CACHE.clear()
        run_sweep(small_spec(), tmp_path / "sweep")
        objects = tmp_path / "sweep" / "artifacts" / "objects"
        kinds = sorted(p.name for p in objects.iterdir())
        assert kinds == ["compiled_circuit", "dem", "path_matrices"]

    def test_artifact_store_none_disables_cache(self, tmp_path):
        run_sweep(small_spec(), tmp_path / "sweep", artifact_store=None)
        assert not (tmp_path / "sweep" / "artifacts").exists()
