"""Native blossom engine vs brute force and networkx.

The engine must produce maximum-cardinality matchings of exactly
minimal total weight on arbitrary dense cost matrices — including
tie-heavy integer weights (blossom-shrinking stress) and ``inf``
non-edges — and must resolve degenerate optima deterministically.
"""

import numpy as np
import networkx as nx
import pytest

from repro.decode.blossom import (
    max_weight_matching,
    min_weight_perfect_matching,
)


def brute_force(cost):
    """(cardinality, min total weight) by exhaustive pairing."""
    n = len(cost)
    best = [None]

    def rec(remaining, card, weight):
        if not remaining:
            key = (-card, weight)
            if best[0] is None or key < best[0]:
                best[0] = key
            return
        i = remaining[0]
        rest = remaining[1:]
        rec(rest, card, weight)  # leave i unmatched
        for idx, j in enumerate(rest):
            if np.isfinite(cost[i][j]):
                rec(
                    rest[:idx] + rest[idx + 1 :],
                    card + 1,
                    weight + cost[i][j],
                )

    rec(tuple(range(n)), 0, 0.0)
    return -best[0][0], best[0][1]


def networkx_reference(cost):
    """(cardinality, min total weight) via networkx max_weight_matching."""
    n = len(cost)
    finite = np.isfinite(cost).copy()
    np.fill_diagonal(finite, False)
    iu, ju = np.nonzero(np.triu(finite, 1))
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    if iu.size:
        big = 1.0 + 2.0 * float(cost[iu, ju].max())
        for i, j in zip(iu, ju, strict=True):
            graph.add_edge(int(i), int(j), weight=big - cost[i, j])
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    return len(matching), sum(cost[u, v] for u, v in matching)


def engine_summary(cost):
    mate, total = min_weight_perfect_matching(cost)
    card = sum(1 for v in mate if v >= 0) // 2
    for v, partner in enumerate(mate):
        if partner >= 0:
            assert mate[partner] == v and partner != v
            assert np.isfinite(cost[v, partner])
    return card, total


def random_cost(rng, n, *, integer=False, sparse=0.0):
    if integer:
        cost = rng.integers(1, 9, size=(n, n)).astype(float)
    else:
        cost = rng.uniform(0.3, 12.0, size=(n, n))
    cost = np.minimum(cost, cost.T)
    if sparse:
        drop = rng.random((n, n)) < sparse
        cost[drop | drop.T] = np.inf
    np.fill_diagonal(cost, np.inf)
    return cost


class TestAgainstBruteForce:
    def test_small_instances_exact(self):
        rng = np.random.default_rng(7)
        for trial in range(250):
            n = int(rng.integers(2, 9))
            cost = random_cost(
                rng,
                n,
                integer=trial % 2 == 0,
                sparse=0.35 if trial % 3 == 0 else 0.0,
            )
            card, total = engine_summary(cost)
            bcard, btotal = brute_force(cost)
            assert card == bcard
            assert total == pytest.approx(btotal)


class TestAgainstNetworkx:
    def test_dense_float_instances(self):
        rng = np.random.default_rng(13)
        for _ in range(40):
            n = int(rng.integers(10, 29))
            cost = random_cost(rng, n)
            card, total = engine_summary(cost)
            ncard, ntotal = networkx_reference(cost)
            assert card == ncard
            assert total == pytest.approx(ntotal)

    def test_tie_heavy_integer_instances(self):
        """Small integer weights force many blossoms and equal optima."""
        rng = np.random.default_rng(29)
        for trial in range(40):
            n = int(rng.integers(12, 25))
            cost = random_cost(
                rng, n, integer=True, sparse=0.4 if trial % 2 else 0.0
            )
            card, total = engine_summary(cost)
            ncard, ntotal = networkx_reference(cost)
            assert card == ncard
            assert total == pytest.approx(ntotal)

    def test_odd_vertex_counts(self):
        rng = np.random.default_rng(31)
        for _ in range(20):
            n = int(rng.integers(3, 22)) | 1  # odd
            cost = random_cost(rng, n, sparse=0.3)
            card, total = engine_summary(cost)
            ncard, ntotal = networkx_reference(cost)
            assert card == ncard
            assert total == pytest.approx(ntotal)


class TestDeterminism:
    def test_repeated_runs_identical(self):
        rng = np.random.default_rng(3)
        cost = np.round(random_cost(rng, 18, integer=True))
        first = min_weight_perfect_matching(cost)
        for _ in range(3):
            assert min_weight_perfect_matching(cost.copy()) == first

    def test_uniform_tie_rule_pinned(self):
        """Degenerate all-equal weights resolve to one fixed matching.

        The engine's lowest-index-first forest growth reaches the
        outside-in pairing on a uniform clique; this freezes the
        documented deterministic tie rule (any change is a visible,
        reviewed behaviour change rather than backend noise).
        """
        cost = np.full((6, 6), 1.0)
        np.fill_diagonal(cost, np.inf)
        mate, total = min_weight_perfect_matching(cost)
        assert total == pytest.approx(3.0)
        assert mate == [5, 4, 3, 2, 1, 0]

    def test_unique_optimum_recovered(self):
        cost = np.array(
            [
                [np.inf, 1.0, 2.0, np.inf],
                [1.0, np.inf, np.inf, 2.0],
                [2.0, np.inf, np.inf, 1.0],
                [np.inf, 2.0, 1.0, np.inf],
            ]
        )
        mate, total = min_weight_perfect_matching(cost)
        assert mate == [1, 0, 3, 2]
        assert total == pytest.approx(2.0)


class TestEdgeCases:
    def test_empty_and_single(self):
        assert min_weight_perfect_matching(np.zeros((0, 0))) == ([], 0.0)
        assert min_weight_perfect_matching(
            np.full((1, 1), np.inf)
        ) == ([-1], 0.0)

    def test_no_finite_edges(self):
        cost = np.full((4, 4), np.inf)
        assert min_weight_perfect_matching(cost) == ([-1] * 4, 0.0)

    def test_single_edge(self):
        cost = np.full((4, 4), np.inf)
        cost[1, 2] = cost[2, 1] = 3.5
        mate, total = min_weight_perfect_matching(cost)
        assert mate == [-1, 2, 1, -1]
        assert total == pytest.approx(3.5)

    def test_isolated_vertex_stays_unmatched(self):
        cost = np.full((5, 5), np.inf)
        cost[0, 1] = cost[1, 0] = 1.0
        cost[2, 3] = cost[3, 2] = 1.0
        card, total = engine_summary(cost)
        assert card == 2
        assert total == pytest.approx(2.0)

    def test_max_weight_matching_empty_edges(self):
        assert max_weight_matching(3, []) == [-1, -1, -1]
