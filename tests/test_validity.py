"""Tests for the code validity audits (Theorem 1 / Definition 4)."""

import pytest

from repro.codes import (
    Check,
    StabilizerGenerator,
    SubsystemCode,
    ValidityError,
    check_generator_representation,
    check_measurement_set,
)
from repro.codes.validity import check_no_bare_logicals
from repro.pauli import PauliOp
from repro.surface import rotated_surface_code

Q = [(1, 1), (1, 3), (3, 1), (3, 3)]


def four_qubit_code():
    """The [[4,1,2]] subsystem-flavoured toy code."""
    sx = StabilizerGenerator(PauliOp.x_on(Q), "X", "sx", ("sx",))
    sz = StabilizerGenerator(PauliOp.z_on(Q), "Z", "sz", ("sz",))
    checks = [
        Check(PauliOp.x_on(Q), "X", "sx", ancilla=(0, 0)),
        Check(PauliOp.z_on(Q), "Z", "sz", ancilla=(2, 2)),
    ]
    return SubsystemCode(
        data_qubits=Q,
        stabilizers=[sx, sz],
        checks=checks,
        logical_x=PauliOp.x_on([Q[0], Q[1]]),
        logical_z=PauliOp.z_on([Q[0], Q[2]]),
    )


class TestGeneratorRepresentation:
    def test_valid_code_passes(self):
        check_generator_representation(four_qubit_code())

    def test_anticommuting_stabilizers_rejected(self):
        code = four_qubit_code()
        bad = StabilizerGenerator(PauliOp.z_on([Q[0]]), "Z", "bad", ("bad",))
        code.stabilizers["bad"] = bad
        with pytest.raises(ValidityError, match="anticommute"):
            check_generator_representation(code)

    def test_commuting_logicals_rejected(self):
        code = four_qubit_code()
        code.logical_x = PauliOp.x_on([Q[0], Q[1]])
        code.logical_z = PauliOp.z_on([Q[2], Q[3]])
        with pytest.raises(ValidityError, match="logical"):
            check_generator_representation(code)

    def test_logical_in_stabilizer_group_rejected(self):
        code = four_qubit_code()
        code.logical_x = PauliOp.x_on(Q)  # equals sx
        with pytest.raises(ValidityError):
            check_generator_representation(code)

    def test_logical_on_foreign_qubit_rejected(self):
        code = four_qubit_code()
        code.logical_z = PauliOp.z_on([Q[0], Q[2], (99, 99)])
        with pytest.raises(ValidityError, match="non-code"):
            check_generator_representation(code)


class TestMeasurementSet:
    def test_valid_code_passes(self):
        check_measurement_set(four_qubit_code())

    def test_broken_decomposition_rejected(self):
        code = four_qubit_code()
        code.stabilizers["sx"].measured_via = ("sz",)
        with pytest.raises(ValidityError, match="reproduce"):
            check_measurement_set(code)

    def test_missing_check_rejected(self):
        code = four_qubit_code()
        code.stabilizers["sx"].measured_via = ("nope",)
        with pytest.raises(ValidityError, match="missing"):
            check_measurement_set(code)

    def test_check_anticommuting_with_logical_rejected(self):
        code = four_qubit_code()
        code.checks["rogue"] = Check(
            PauliOp.z_on([Q[1]]), "Z", "rogue", ancilla=None
        )
        with pytest.raises(ValidityError, match="disturb"):
            check_measurement_set(code)


class TestBareLogicalAudit:
    def test_surface_code_passes(self):
        check_no_bare_logicals(rotated_surface_code(3).code)

    def test_orphaned_qubit_detected(self):
        code = rotated_surface_code(3).code
        # Delete every X generator covering the corner (1, 1).
        for name in [
            g.name
            for g in code.stabilizers.values()
            if g.basis == "X" and (1, 1) in g.pauli.support
        ]:
            del code.stabilizers[name]
            del code.checks[name]
        with pytest.raises(ValidityError, match="weight-1"):
            check_no_bare_logicals(code)

    def test_gauge_covered_qubit_allowed(self):
        """SyndromeQ_RM's gauge qubits are exempt: their bare errors are
        gauge operators."""
        from repro.deform import syndrome_q_rm

        patch = rotated_surface_code(5)
        syndrome_q_rm(patch, (4, 6))
        check_no_bare_logicals(patch.code)


class TestCheckDataclass:
    def test_basis_mismatch_rejected(self):
        with pytest.raises(ValueError, match="basis"):
            Check(PauliOp.z_on([(1, 1)]), "X", "oops")

    def test_bad_basis_letter_rejected(self):
        with pytest.raises(ValueError):
            Check(PauliOp.x_on([(1, 1)]), "W", "oops")


class TestSubsystemCodeViews:
    def test_gauge_ops_after_deformation(self):
        from repro.deform import data_q_rm

        patch = rotated_surface_code(5)
        assert patch.code.gauge_ops() == []
        data_q_rm(patch, (5, 5))
        # Four truncated plaquettes became gauge operators.
        assert len(patch.code.gauge_ops()) == 4
        assert len(patch.code.gauge_ops("X")) == 2

    def test_num_gauge_qubits(self):
        from repro.deform import data_q_rm

        patch = rotated_surface_code(5)
        assert patch.code.num_gauge_qubits() == 0
        data_q_rm(patch, (5, 5))
        assert patch.code.num_gauge_qubits() == 1

    def test_is_stabilizer(self):
        code = rotated_surface_code(3).code
        some = next(iter(code.stabilizers.values())).pauli
        assert code.is_stabilizer(some)
        assert not code.is_stabilizer(code.logical_z)

    def test_fresh_name_unique(self):
        code = rotated_surface_code(3).code
        names = {code.fresh_name("t") for _ in range(10)}
        assert len(names) == 10
