"""The asyncio decode service: agreement, backpressure, stats, errors.

Tests drive real event loops through ``asyncio.run`` (no async test
plugin needed).  Agreement is pinned against whole-history dense
matching — the service adds scheduling, never different predictions —
and backpressure is pinned structurally: with ``max_pending=1`` and a
gated decoder, the one-too-many ``submit`` must block until the worker
drains.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro import DecodeService, ServiceStats, StreamSession, WindowConfig
from repro.decode import MatchingDecoder, SlidingWindowDecoder, WindowStream
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code

D, ROUNDS, SHOTS, NOISE_P = 3, 30, 64, 1e-3


@pytest.fixture(scope="module")
def setup():
    code = rotated_surface_code(D).code
    noise = NoiseModel.uniform(NOISE_P)
    circuit = memory_circuit(code, "Z", ROUNDS, noise)
    det, _ = sample_detectors(circuit, SHOTS, seed=7, output="packed")
    rows = det.transposed().unpack()
    reference = MatchingDecoder(
        build_dem(circuit), matcher="dense"
    ).decode_batch(rows)
    window = SlidingWindowDecoder(
        code, "Z", noise, config=WindowConfig(window=10, commit=5)
    )
    return window, det, rows, reference


def _layer_chunks(rows, width, layers_per_chunk=5):
    for lo in range(0, rows.shape[1], layers_per_chunk * width):
        yield rows[:, lo : lo + layers_per_chunk * width]


class TestEndToEnd:
    def test_chunked_stream_matches_whole_history(self, setup):
        window, _, rows, reference = setup

        async def main():
            service = DecodeService(window, workers=2, max_pending=3)
            async with service:
                session = service.open_stream(SHOTS)
                for chunk in _layer_chunks(rows, window.layer_width):
                    await session.submit(chunk)
                predictions = await session.finish()
            return predictions, service.stats()

        predictions, stats = asyncio.run(main())
        np.testing.assert_array_equal(predictions, reference)
        assert isinstance(stats, ServiceStats)
        assert stats.streams == 1
        assert stats.shots == SHOTS
        assert stats.chunks == len(
            list(_layer_chunks(rows, window.layer_width))
        )
        assert 0.0 <= stats.p50_ms <= stats.p95_ms <= stats.p99_ms
        assert np.isfinite(stats.p99_ms)
        assert stats.shots_per_sec > 0

    def test_packed_bitplane_chunks(self, setup):
        """The sampler's wire format streams without unpacking."""
        window, det, _, reference = setup

        async def main():
            async with DecodeService(window) as service:
                session = service.open_stream(SHOTS)
                await session.submit(det)
                return await session.finish()

        np.testing.assert_array_equal(asyncio.run(main()), reference)

    def test_concurrent_sessions_share_one_service(self, setup):
        window, _, rows, reference = setup

        async def run_session(service, rows):
            session = service.open_stream(len(rows))
            for chunk in _layer_chunks(rows, window.layer_width):
                await session.submit(chunk)
            return await session.finish()

        async def main():
            service = DecodeService(window, workers=2)
            async with service:
                a, b = await asyncio.gather(
                    run_session(service, rows),
                    run_session(service, rows[:32]),
                )
            return a, b, service.stats()

        a, b, stats = asyncio.run(main())
        np.testing.assert_array_equal(a, reference)
        np.testing.assert_array_equal(b, reference[:32])
        assert stats.streams == 2
        assert stats.shots == SHOTS + 32

    def test_facade_exports(self):
        assert repro.DecodeService is DecodeService
        assert repro.StreamSession is StreamSession
        assert repro.ServiceStats is ServiceStats
        assert repro.WindowConfig is WindowConfig
        assert repro.SlidingWindowDecoder is SlidingWindowDecoder


class TestBackpressure:
    def test_full_queue_blocks_submit(self, setup, monkeypatch):
        window, _, rows, _ = setup
        gate = threading.Event()
        original_push = WindowStream.push

        def gated_push(self, chunk):
            gate.wait(timeout=30)
            original_push(self, chunk)

        monkeypatch.setattr(WindowStream, "push", gated_push)
        width = window.layer_width
        chunk = rows[:, : 5 * width]

        async def main():
            service = DecodeService(window, workers=1, max_pending=1)
            async with service:
                session = service.open_stream(SHOTS)
                # First chunk: picked up by the worker, stuck at the
                # gate.  Second: fills the pending queue.
                await session.submit(chunk)
                await session.submit(chunk)
                # Third: must block — the session already holds its
                # max_pending undecoded chunks.
                with pytest.raises(asyncio.TimeoutError):
                    await asyncio.wait_for(
                        session.submit(chunk), timeout=0.2
                    )
                gate.set()
                await session.submit(rows[:, : 5 * width])
                await session.finish()
            return service.stats()

        stats = asyncio.run(main())
        assert stats.chunks >= 3


class TestErrors:
    def test_decode_error_surfaces_from_finish(self, setup):
        window, _, rows, _ = setup

        async def main():
            async with DecodeService(window) as service:
                session = service.open_stream(SHOTS)
                # Wrong shot count: the worker-side push raises, and
                # the error must surface from finish(), not hang.
                await session.submit(rows[:8])
                with pytest.raises(ValueError, match="shots"):
                    await session.finish()

        asyncio.run(main())

    def test_session_is_terminal_after_finish(self, setup):
        window, _, rows, _ = setup

        async def main():
            async with DecodeService(window) as service:
                session = service.open_stream(SHOTS)
                await session.submit(rows)
                await session.finish()
                with pytest.raises(RuntimeError, match="finished"):
                    await session.submit(rows)
                with pytest.raises(RuntimeError, match="finished"):
                    await session.finish()

        asyncio.run(main())

    def test_open_stream_requires_started_service(self, setup):
        window, _, _, _ = setup
        service = DecodeService(window)
        with pytest.raises(RuntimeError, match="async with"):
            service.open_stream(SHOTS)

    def test_constructor_validation(self, setup):
        window, _, _, _ = setup
        with pytest.raises(ValueError, match="workers"):
            DecodeService(window, workers=0)
        with pytest.raises(ValueError, match="max_pending"):
            DecodeService(window, max_pending=0)

    def test_abandoned_session_does_not_block_exit(self, setup):
        window, _, rows, _ = setup

        async def main():
            service = DecodeService(window)
            async with service:
                session = service.open_stream(SHOTS)
                await session.submit(rows[:, : 5 * window.layer_width])
                # Never finished: __aexit__ must cancel and return.
            return service.stats()

        stats = asyncio.run(main())
        assert stats.streams == 0

    def test_empty_stats_are_nan(self, setup):
        window, _, _, _ = setup
        stats = DecodeService(window).stats()
        assert stats.chunks == 0
        assert np.isnan(stats.p50_ms)
        assert np.isnan(stats.p99_ms)
        assert stats.shots_per_sec == 0.0
