"""Property tests for the packed sampler→decoder flow.

The packed output format (:class:`~repro.utils.gf2.PackedBits` uint64
bitplanes) and the unpacked ``(shots, n)`` uint8 arrays must be two
views of the *same* sample — equal bits for equal sampler state — and
feeding either through ``decode_batch`` must give bit-identical
predictions and logical-error counts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decode import MatchingDecoder
from repro.sim import (
    FrameSampler,
    NoiseModel,
    build_dem,
    memory_circuit,
    sample_detectors,
)
from repro.surface import rotated_surface_code
from repro.utils.gf2 import PackedBits, gf2_pack_rows

_PATCH = rotated_surface_code(3)
_CIRCUIT = memory_circuit(_PATCH.code, "Z", 3, NoiseModel.uniform(4e-3))
_DEM = build_dem(_CIRCUIT)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), shots=st.integers(1, 150))
def test_packed_and_unpacked_sampling_decode_identically(seed, shots):
    det_u, obs_u = sample_detectors(_CIRCUIT, shots, seed=seed)
    det_p, obs_p = sample_detectors(
        _CIRCUIT, shots, seed=seed, output="packed"
    )
    # Same sampler state → the packed output is the same bits.
    assert (det_p.unpack().T == det_u).all()
    assert (obs_p.unpack().T == obs_u).all()

    decoder = MatchingDecoder(_DEM)
    pred_u = decoder.decode_batch(det_u)
    pred_p = MatchingDecoder(_DEM).decode_batch(det_p)
    assert (pred_p == pred_u).all()

    actual_u = (obs_u.sum(axis=1) % 2).astype(np.uint8)
    errors_u = int((pred_u != actual_u).sum())
    errors_p = int((pred_p != obs_p.column_parity()).sum())
    assert errors_p == errors_u
    assert decoder.logical_error_rate(det_u, obs_u) == MatchingDecoder(
        _DEM
    ).logical_error_rate(det_p, obs_p)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), shots=st.integers(1, 100))
def test_unpacked_engine_sample_packed_round_trips(seed, shots):
    """The reference (uint8) engine exposes the same packed interface."""
    packed_engine = FrameSampler(_CIRCUIT, seed=seed, packed=False)
    reference = FrameSampler(_CIRCUIT, seed=seed, packed=False)
    det_p, obs_p = packed_engine.sample_packed(shots)
    det_u, obs_u = reference.sample(shots)
    assert (det_p.unpack().T == det_u).all()
    assert (obs_p.unpack().T == obs_u).all()


def test_packed_bits_transpose_blocks():
    """Block-wise packed transpose equals the dense transpose."""
    rng = np.random.default_rng(9)
    bits = rng.integers(0, 2, size=(37, 517), dtype=np.uint8)
    packed = PackedBits.pack(bits)
    for block in (64, 128, 4096):
        assert (packed.transpose(block=block).unpack() == bits.T).all()
    assert (packed.column_parity() == bits.sum(axis=0) % 2).all()


def test_packed_bits_transposed_is_memoised():
    """``transposed()`` computes once and returns the same object."""
    rng = np.random.default_rng(21)
    bits = rng.integers(0, 2, size=(23, 301), dtype=np.uint8)
    packed = PackedBits.pack(bits)
    first = packed.transposed()
    assert first is packed.transposed()
    assert (first.unpack() == bits.T).all()
    assert (first.unpack() == packed.transpose().unpack()).all()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    shots=st.integers(1, 60),
    density=st.floats(0.0, 0.3),
)
def test_word_dedup_equals_row_dedup_and_packed_input(seed, shots, density):
    """Word-packed dedup ≡ byte-row dedup ≡ packed-input predictions.

    Random uint8 batches — always containing an all-zero row and a
    duplicate — must give the same unique count whether rows are
    deduplicated as bytes or as packed uint64 words, and decode to the
    same predictions through every input flavour: the word-dedup batch
    path, a reference byte-row dedup + per-unique serial decode, and a
    ``PackedBits`` bitplane.
    """
    decoder = MatchingDecoder(_DEM)
    width = decoder.num_detectors
    rng = np.random.default_rng(seed)
    rows = (rng.random((shots, width)) < density).astype(np.uint8)
    # Seeded degenerate rows: one all-zero shot, one duplicate pair.
    rows[rng.integers(shots)] = 0
    rows[rng.integers(shots)] = rows[rng.integers(shots)]

    nonzero = np.nonzero(rows.any(axis=1))[0]
    unique_rows = np.unique(rows[nonzero], axis=0)
    unique_words = np.unique(gf2_pack_rows(rows)[nonzero], axis=0)
    assert len(unique_words) == len(unique_rows)

    pred_batch = decoder.decode_batch(rows)
    # Reference: byte-row dedup + the serial single-shot front door.
    reference = MatchingDecoder(_DEM)
    uniq, inverse = np.unique(rows[nonzero], axis=0, return_inverse=True)
    per_unique = np.array(
        [reference.decode(u) for u in uniq], dtype=np.uint8
    )
    pred_rows = np.zeros(shots, dtype=np.uint8)
    pred_rows[nonzero] = per_unique[inverse.reshape(-1)]
    assert (pred_batch == pred_rows).all()

    bitplane = PackedBits.pack(rows.T)  # rows = detectors, bits = shots
    pred_packed = MatchingDecoder(_DEM).decode_batch(bitplane)
    assert (pred_packed == pred_batch).all()
