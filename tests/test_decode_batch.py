"""The batch-native decode front-end and vectorised component pipeline.

Covers the :class:`repro.decode.base.Decoder` batching contract shared
by every decoder (edge-case inputs, packed bitplane input, sharding
floor), bit-identity of the vectorised blossom pipeline against serial
per-shot decoding, determinism of repeated batches despite
tie-ambiguous matchings, and union-find batch agreement on
untreated-defect circuits.
"""

import numpy as np
import pytest

from repro.decode import DecodingGraph, MatchingDecoder, UnionFindDecoder
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.sim.dem import DetectorErrorModel, ErrorMechanism
from repro.surface import rotated_surface_code
from repro.utils.gf2 import PackedBits, gf2_pack


def random_dem(rng, max_detectors=9, max_mechanisms=20, min_detectors=2):
    """A random graphlike DEM with continuous (tie-free) weights."""
    n = int(rng.integers(min_detectors, max_detectors + 1))
    mechanisms = []
    for _ in range(int(rng.integers(2, max_mechanisms + 1))):
        p = float(rng.uniform(0.001, 0.3))
        obs = bool(rng.random() < 0.5)
        if rng.random() < 0.35:
            mechanisms.append(ErrorMechanism(p, (int(rng.integers(n)),), obs))
        else:
            a, b = rng.choice(n, size=2, replace=False)
            mechanisms.append(ErrorMechanism(p, (int(a), int(b)), obs))
    return DetectorErrorModel(mechanisms, num_detectors=n, num_observables=1)


def defective_d5_samples(shots=120, seed=13):
    """Samples from an untreated-defect d=5 circuit (dense syndromes)."""
    patch = rotated_surface_code(5)
    circuit = memory_circuit(
        patch.code,
        "Z",
        10,
        NoiseModel.uniform(1e-3),
        defective_data={(3, 3), (5, 5)},
    )
    dem = build_dem(circuit)
    detectors, observables = sample_detectors(circuit, shots, seed=seed)
    return dem, detectors, observables


class TestBatchEdgeCases:
    def test_zero_shot_input(self):
        rng = np.random.default_rng(1)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        out = dec.decode_batch(np.zeros((0, dem.num_detectors), dtype=np.uint8))
        assert out.shape == (0,) and out.dtype == np.uint8
        assert dec.logical_error_rate(
            np.zeros((0, dem.num_detectors), dtype=np.uint8),
            np.zeros((0, 1), dtype=np.uint8),
        ) == 0.0

    def test_all_zero_batch(self):
        rng = np.random.default_rng(2)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        out = dec.decode_batch(np.zeros((17, dem.num_detectors), dtype=np.uint8))
        assert out.shape == (17,) and not out.any()
        assert dec.cache_misses == 0  # the fast path never decoded

    def test_one_dimensional_single_shot(self):
        rng = np.random.default_rng(3)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        sample = np.zeros(dem.num_detectors, dtype=np.uint8)
        sample[0] = 1
        out = dec.decode_batch(sample)
        assert out.shape == (1,)
        assert out[0] == dec.decode(sample)

    def test_workers_exceeding_unique_count_stay_serial(self):
        rng = np.random.default_rng(4)
        dem = random_dem(rng)
        serial = MatchingDecoder(dem)
        wide = MatchingDecoder(dem, workers=64)
        samples = rng.integers(0, 2, size=(40, dem.num_detectors), dtype=np.uint8)
        assert not wide._can_shard(40, 64)
        assert (wide.decode_batch(samples) == serial.decode_batch(samples)).all()

    def test_columns_beyond_detector_count_ignored(self):
        """Rows wider than the graph (e.g. appended observables) decode."""
        rng = np.random.default_rng(5)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        samples = rng.integers(0, 2, size=(30, dem.num_detectors), dtype=np.uint8)
        widened = np.concatenate(
            [samples, rng.integers(0, 2, size=(30, 3), dtype=np.uint8)], axis=1
        )
        assert (dec.decode_batch(widened) == dec.decode_batch(samples)).all()


class TestVectorisedAgreement:
    def test_batch_matches_per_shot_on_random_dems(self):
        """The stacked pipeline is bit-identical to serial decoding."""
        rng = np.random.default_rng(21)
        for _ in range(6):
            dem = random_dem(rng, max_detectors=12, max_mechanisms=40)
            batch_dec = MatchingDecoder(dem)
            serial_dec = MatchingDecoder(dem, cache_size=0)
            samples = rng.integers(
                0, 2, size=(200, dem.num_detectors), dtype=np.uint8
            )
            batch = batch_dec.decode_batch(samples)
            singles = np.fromiter(
                (serial_dec.decode(row) for row in samples),
                dtype=np.uint8,
                count=len(samples),
            )
            assert (batch == singles).all()

    def test_batch_matches_per_shot_on_defective_circuit(self):
        dem, detectors, _ = defective_d5_samples()
        batch_dec = MatchingDecoder(dem)
        serial_dec = MatchingDecoder(dem, cache_size=0)
        batch = batch_dec.decode_batch(detectors)
        singles = np.fromiter(
            (serial_dec.decode(row) for row in detectors),
            dtype=np.uint8,
            count=len(detectors),
        )
        assert (batch == singles).all()
        # Dense syndromes force decomposition and oversize components.
        assert detectors.sum(axis=1).max() > 14


class TestDeterminism:
    def test_repeated_batches_identical(self):
        """Fresh decoders re-decoding the same batch agree bit-for-bit
        even where the optimal matching is degenerate."""
        dem, detectors, _ = defective_d5_samples()
        reference = MatchingDecoder(dem).decode_batch(detectors)
        for _ in range(2):
            again = MatchingDecoder(dem).decode_batch(detectors)
            assert (again == reference).all()
        # A cache-disabled decoder re-decodes every shot from scratch.
        uncached = MatchingDecoder(dem, cache_size=0).decode_batch(detectors)
        assert (uncached == reference).all()

    def test_uf_repeated_batches_identical(self):
        dem, detectors, _ = defective_d5_samples()
        reference = MatchingDecoder(dem, method="uf").decode_batch(detectors)
        again = MatchingDecoder(dem, method="uf").decode_batch(detectors)
        assert (again == reference).all()


class TestUnionFindBatch:
    def test_standalone_batch_matches_per_shot_defective(self):
        """UnionFindDecoder inherits the full batching contract."""
        dem, detectors, _ = defective_d5_samples()
        uf = UnionFindDecoder(DecodingGraph(dem))
        batch = uf.decode_batch(detectors)
        singles = np.fromiter(
            (UnionFindDecoder(DecodingGraph(dem), cache_size=0).decode(row)
             for row in detectors),
            dtype=np.uint8,
            count=len(detectors),
        )
        assert (batch == singles).all()

    def test_standalone_matches_mwpm_front_end(self):
        dem, detectors, _ = defective_d5_samples()
        uf = UnionFindDecoder(DecodingGraph(dem))
        via_mwpm = MatchingDecoder(dem, method="uf")
        assert (uf.decode_batch(detectors) == via_mwpm.decode_batch(detectors)).all()

    def test_error_rate_sane_on_defective_circuit(self):
        dem, detectors, observables = defective_d5_samples()
        uf = MatchingDecoder(dem, method="uf")
        blossom = MatchingDecoder(dem)
        # Union-find approximates matching; on untreated-defect noise it
        # must stay in the same regime, not collapse to coin-flipping.
        assert uf.logical_error_rate(detectors, observables) <= (
            blossom.logical_error_rate(detectors, observables) + 0.15
        )


class TestPackedInput:
    @pytest.mark.parametrize("method", ["blossom", "uf", "greedy"])
    def test_packed_rows_equal_uint8_rows(self, method):
        dem, detectors, _ = defective_d5_samples(shots=80)
        packed = PackedBits(gf2_pack(detectors.T), len(detectors))
        a = MatchingDecoder(dem, method=method).decode_batch(packed)
        b = MatchingDecoder(dem, method=method).decode_batch(detectors)
        assert (a == b).all()

    def test_packed_zero_and_empty_batches(self):
        rng = np.random.default_rng(31)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        empty = PackedBits(np.zeros((dem.num_detectors, 0), dtype=np.uint64), 0)
        assert dec.decode_batch(empty).shape == (0,)
        zeros = PackedBits(np.zeros((dem.num_detectors, 2), dtype=np.uint64), 70)
        assert not dec.decode_batch(zeros).any()
