"""Agreement of the fast decode pipeline with the seed implementation.

The matrix-backed blossom path (all-pairs lookups, component
decomposition, subset-DP/native-blossom matching) must reproduce the
seed's per-shot-Dijkstra predictions exactly; greedy likewise.  The
union-find decoder is a different algorithm — it is validated for high
agreement and equal behaviour on unambiguous cases.

Beyond tie-free predictions, every exact backend optimises the same
objective, so :meth:`MatchingDecoder.matching_weight` must return
identical totals for the native blossom, the subset DP and the legacy
formulation — and match a networkx reference fed the same reduced
graph (networkx stays available as a *test oracle*; the decode package
itself no longer imports it).  Dense syndromes (p ≥ 3e-3 and
untreated-defect circuits) force >14-defect components through the
native engine and are checked the same way.
"""

import itertools

import networkx as nx
import numpy as np
import pytest

from repro.decode import MatchingDecoder
from repro.decode import mwpm as mwpm_module
from repro.decode.graph import DecodingGraph
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.sim.dem import DetectorErrorModel, ErrorMechanism
from repro.surface import rotated_surface_code


def random_dem(rng, max_detectors=9, max_mechanisms=20, min_detectors=2):
    """A random graphlike DEM with continuous (tie-free) weights."""
    n = int(rng.integers(min_detectors, max_detectors + 1))
    mechanisms = []
    for _ in range(int(rng.integers(2, max_mechanisms + 1))):
        p = float(rng.uniform(0.001, 0.3))
        obs = bool(rng.random() < 0.5)
        if rng.random() < 0.35:
            mechanisms.append(ErrorMechanism(p, (int(rng.integers(n)),), obs))
        else:
            a, b = rng.choice(n, size=2, replace=False)
            mechanisms.append(ErrorMechanism(p, (int(a), int(b)), obs))
    return DetectorErrorModel(mechanisms, num_detectors=n, num_observables=1)


def all_syndromes(n):
    for bits in itertools.product([0, 1], repeat=n):
        yield np.array(bits, dtype=np.uint8)


class TestBlossomAgreement:
    def test_exhaustive_on_random_dems(self):
        """Matrix blossom == legacy blossom on every syndrome."""
        rng = np.random.default_rng(42)
        for _ in range(12):
            dem = random_dem(rng)
            new = MatchingDecoder(dem)
            legacy = MatchingDecoder(dem, use_matrices=False, cache_size=0)
            for s in all_syndromes(dem.num_detectors):
                assert new.decode(s) == legacy.decode(s)

    def test_exhaustive_exercises_vector_dp(self):
        """DEMs wide enough that components exceed the scalar-DP limit."""
        rng = np.random.default_rng(1)
        for _ in range(2):
            dem = random_dem(
                rng, max_detectors=11, max_mechanisms=40, min_detectors=10
            )
            new = MatchingDecoder(dem)
            legacy = MatchingDecoder(dem, use_matrices=False, cache_size=0)
            checked = 0
            for s in all_syndromes(dem.num_detectors):
                if s.sum() <= mwpm_module.DP_SCALAR_LIMIT:
                    continue  # the scalar DP is covered elsewhere
                assert new.decode(s) == legacy.decode(s)
                checked += 1
            assert checked > 0

    @pytest.mark.parametrize("distance,shots", [(3, 600), (5, 250)])
    def test_sampled_on_memory_circuits(self, distance, shots):
        """Identical predictions on real syndrome-circuit samples."""
        patch = rotated_surface_code(distance)
        circuit = memory_circuit(
            patch.code, "Z", distance, NoiseModel.uniform(3e-3)
        )
        dem = build_dem(circuit)
        new = MatchingDecoder(dem)
        legacy = MatchingDecoder(dem, use_matrices=False, cache_size=0)
        detectors, _ = sample_detectors(circuit, shots, seed=9)
        assert (new.decode_batch(detectors) == legacy.decode_batch(detectors)).all()

    def test_greedy_matrix_matches_legacy(self):
        rng = np.random.default_rng(5)
        for _ in range(10):
            dem = random_dem(rng)
            new = MatchingDecoder(dem, method="greedy")
            legacy = MatchingDecoder(
                dem, method="greedy", use_matrices=False, cache_size=0
            )
            for s in all_syndromes(dem.num_detectors):
                assert new.decode(s) == legacy.decode(s)


class TestUnionFindAgreement:
    def test_single_and_pair_defects_match_blossom(self):
        """≤2 defects leave no approximation room on tie-free graphs."""
        rng = np.random.default_rng(11)
        for _ in range(10):
            dem = random_dem(rng)
            uf = MatchingDecoder(dem, method="uf")
            blossom = MatchingDecoder(dem)
            n = dem.num_detectors
            for s in all_syndromes(n):
                if s.sum() > 2:
                    continue
                assert uf.decode(s) == blossom.decode(s)

    def test_high_agreement_on_random_dems(self):
        rng = np.random.default_rng(23)
        agree = total = 0
        for _ in range(10):
            dem = random_dem(rng)
            uf = MatchingDecoder(dem, method="uf")
            blossom = MatchingDecoder(dem)
            for s in all_syndromes(dem.num_detectors):
                agree += uf.decode(s) == blossom.decode(s)
                total += 1
        assert agree / total > 0.9

    def test_memory_circuit_error_rate_close_to_blossom(self):
        patch = rotated_surface_code(3)
        circuit = memory_circuit(patch.code, "Z", 3, NoiseModel.uniform(2e-3))
        dem = build_dem(circuit)
        detectors, observables = sample_detectors(circuit, 3000, seed=17)
        uf = MatchingDecoder(dem, method="uf")
        blossom = MatchingDecoder(dem)
        ler_uf = uf.logical_error_rate(detectors, observables)
        ler_b = blossom.logical_error_rate(detectors, observables)
        assert ler_uf <= ler_b + 0.01
        agreement = (
            uf.decode_batch(detectors) == blossom.decode_batch(detectors)
        ).mean()
        assert agreement > 0.98


class TestBatchAndCache:
    def test_decode_batch_matches_per_shot(self):
        rng = np.random.default_rng(3)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        samples = rng.integers(0, 2, size=(40, dem.num_detectors), dtype=np.uint8)
        batch = dec.decode_batch(samples)
        singles = np.array([dec.decode(row) for row in samples], dtype=np.uint8)
        assert (batch == singles).all()

    def test_zero_syndrome_fast_path(self):
        rng = np.random.default_rng(3)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        out = dec.decode_batch(np.zeros((64, dem.num_detectors), dtype=np.uint8))
        assert not out.any()
        assert dec.cache_misses == 0  # never reached the matcher

    def test_syndrome_cache_hits_across_batches(self):
        rng = np.random.default_rng(3)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        sample = np.zeros(dem.num_detectors, dtype=np.uint8)
        sample[0] = 1
        dec.decode(sample)
        misses = dec.cache_misses
        dec.decode(sample)
        assert dec.cache_hits >= 1
        assert dec.cache_misses == misses

    def test_cache_bounded(self):
        rng = np.random.default_rng(3)
        dem = random_dem(rng, max_detectors=9)
        dec = MatchingDecoder(dem, cache_size=4)
        for s in all_syndromes(dem.num_detectors):
            dec.decode(s)
        assert len(dec._cache) <= 4

    def test_matrix_matches_lazy_threshold_fallback(self):
        """Above the node limit the decoder transparently uses Dijkstra."""
        rng = np.random.default_rng(8)
        dem = random_dem(rng)
        auto = MatchingDecoder(dem)
        graph = DecodingGraph(dem, matrix_node_limit=1)
        assert not graph.use_matrices
        forced = MatchingDecoder(dem, use_matrices=False)
        for s in all_syndromes(dem.num_detectors):
            assert auto.decode(s) == forced.decode(s)


class TestParallelMergeRule:
    def test_dominant_channel_wins_regardless_of_order(self):
        """Parallel mechanisms: parity comes from the likeliest channel.

        The seed compared each incoming channel against the *combined*
        running probability, so a pile of small same-parity channels
        could outvote one dominant channel depending on insertion
        order.  The rule is now order-independent.
        """
        channels = [
            ErrorMechanism(0.008, (0, 1), False),
            ErrorMechanism(0.008, (0, 1), False),
            ErrorMechanism(0.010, (0, 1), True),
        ]
        for order in itertools.permutations(channels):
            dem = DetectorErrorModel(list(order), num_detectors=2, num_observables=1)
            g = DecodingGraph(dem)
            assert g.graph[0][1]["observable"] is True
            # Channels combine by parity (an odd number must fire).
            expected = 0.5 * (1 - (1 - 2 * 0.008) ** 2 * (1 - 2 * 0.010))
            assert g.graph[0][1]["probability"] == pytest.approx(expected)

    def test_combined_probability_still_independent_or(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.01, (0, 1), False), ErrorMechanism(0.02, (0, 1), True)],
            num_detectors=2,
            num_observables=1,
        )
        g = DecodingGraph(dem)
        assert g.graph[0][1]["probability"] == pytest.approx(0.01 * 0.98 + 0.02 * 0.99)
        assert g.graph[0][1]["observable"] is True


class TestMemoryExperimentMethods:
    def test_uf_selectable_and_sane(self):
        from repro.eval import memory_experiment

        patch = rotated_surface_code(3)
        result = memory_experiment(
            patch.code,
            "Z",
            NoiseModel.uniform(1e-3),
            rounds=3,
            shots=400,
            seed=2,
            decoder_method="uf",
        )
        assert result.shots == 400
        assert result.per_shot < 0.05


def networkx_reduced_weight(decoder, sample):
    """Optimal route weight via networkx on the reduced defect graph.

    Mirrors the decoder's reduced formulation (pair weights
    ``min(d(a,b), b(a)+b(b))``, one virtual boundary node when the
    defect count is odd, leftovers routed alone) but solves it with
    ``networkx.max_weight_matching`` — the backend the native engine
    replaced — so totals can be compared across solvers.
    """
    sample = np.asarray(sample)
    limit = decoder.graph.num_detectors
    defects = tuple(int(d) for d in np.nonzero(sample)[0] if d < limit)
    if not defects:
        return 0.0
    D, _, b_dist, _ = decoder._lookup(defects)
    k = len(defects)
    if k == 1:
        return float(b_dist[0]) if np.isfinite(b_dist[0]) else 0.0
    D = np.minimum(D, D.T)
    W = np.minimum(D, b_dist[:, None] + b_dist[None, :])
    finite = np.isfinite(W).copy()
    np.fill_diagonal(finite, False)
    big = 1.0 + 2.0 * float(W[finite].max()) if finite.any() else 1.0
    graph = nx.Graph()
    graph.add_nodes_from(range(k))
    iu, ju = np.nonzero(np.triu(finite, 1))
    for i, j in zip(iu, ju, strict=True):
        graph.add_edge(int(i), int(j), weight=big - W[i, j])
    if k % 2:
        for i in range(k):
            if np.isfinite(b_dist[i]):
                graph.add_edge(int(i), -1, weight=big - b_dist[i])
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    total = 0.0
    matched = set()
    for u, v in matching:
        if u > v:
            u, v = v, u
        if u == -1:
            total += float(b_dist[v])
            matched.add(v)
        else:
            total += float(W[u, v])
            matched.update((u, v))
    for i in range(k):
        if i not in matched and np.isfinite(b_dist[i]):
            total += float(b_dist[i])
    return total


def random_syndromes(rng, num_detectors, count, max_defects):
    """Random nonzero syndromes with bounded defect counts."""
    for _ in range(count):
        weight = int(rng.integers(1, min(max_defects, num_detectors) + 1))
        sample = np.zeros(num_detectors, dtype=np.uint8)
        sample[rng.choice(num_detectors, size=weight, replace=False)] = 1
        yield sample


class TestMatchingWeights:
    """All exact backends agree on the objective value itself."""

    def test_weights_identical_across_backends(self):
        rng = np.random.default_rng(101)
        for _ in range(8):
            dem = random_dem(rng, max_detectors=9)
            dec = MatchingDecoder(dem)
            for s in all_syndromes(dem.num_detectors):
                if not s.any():
                    continue
                w_blossom = dec.matching_weight(s, matcher="blossom")
                w_dp = dec.matching_weight(s, matcher="dp")
                w_legacy = dec.matching_weight(s, matcher="legacy")
                w_sparse = dec.matching_weight(s, matcher="sparse")
                assert w_blossom == pytest.approx(w_dp)
                assert w_blossom == pytest.approx(w_legacy)
                assert w_blossom == pytest.approx(w_sparse)

    def test_weights_match_networkx_oracle(self):
        rng = np.random.default_rng(103)
        for _ in range(8):
            dem = random_dem(rng, max_detectors=9)
            dec = MatchingDecoder(dem)
            for s in all_syndromes(dem.num_detectors):
                if not s.any():
                    continue
                assert dec.matching_weight(s) == pytest.approx(
                    networkx_reduced_weight(dec, s)
                )

    def test_unknown_matcher_rejected(self):
        rng = np.random.default_rng(104)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        sample = np.ones(dem.num_detectors, dtype=np.uint8)
        with pytest.raises(ValueError):
            dec.matching_weight(sample, matcher="nope")


class TestLargeComponents:
    """Dense syndromes exercise the native engine beyond the DP limit."""

    def _force_native(self, monkeypatch):
        """Count native-engine calls and the component sizes they see."""
        import repro.decode.mwpm as mwpm

        seen = []
        orig = MatchingDecoder.__dict__["_blossom_match"].__get__(
            None, MatchingDecoder
        )

        def counting(k, W, use_pair, P, b_dist, b_par):
            seen.append(k)
            return orig(k, W, use_pair, P, b_dist, b_par)

        monkeypatch.setattr(
            mwpm.MatchingDecoder, "_blossom_match", staticmethod(counting)
        )
        return seen

    def test_dense_random_dems_weight_and_prediction(self, monkeypatch):
        """Randomized >14-defect syndromes: native vs DP-free legacy
        predictions and the networkx weight oracle.

        Weights here are continuous (tie-free), so the sparse
        region-growing matcher must reproduce the dense predictions
        bit-for-bit too — the optimum is unique.
        """
        seen = self._force_native(monkeypatch)
        rng = np.random.default_rng(105)
        for _ in range(3):
            dem = random_dem(
                rng, max_detectors=24, min_detectors=20, max_mechanisms=120
            )
            sparse = MatchingDecoder(dem)
            dense = MatchingDecoder(dem, matcher="dense")
            legacy = MatchingDecoder(dem, use_matrices=False, cache_size=0)
            for s in random_syndromes(rng, dem.num_detectors, 25, 22):
                if s.sum() <= mwpm_module.DP_DEFECT_LIMIT:
                    continue
                assert dense.decode(s) == legacy.decode(s)
                assert sparse.decode(s) == legacy.decode(s)
                assert dense.matching_weight(s) == pytest.approx(
                    networkx_reduced_weight(dense, s)
                )
                assert dense.matching_weight(s) == pytest.approx(
                    dense.matching_weight(s, matcher="legacy")
                )
                assert dense.matching_weight(s, matcher="sparse") == (
                    pytest.approx(dense.matching_weight(s))
                )
        assert max(seen, default=0) > mwpm_module.DP_DEFECT_LIMIT

    @pytest.mark.parametrize(
        "p,rounds,defective",
        [
            (3e-3, 25, None),
            (6e-3, 15, None),
            (1e-3, 10, {(3, 3), (5, 5)}),  # untreated-defect circuit
        ],
    )
    def test_dense_memory_circuits(self, monkeypatch, p, rounds, defective):
        """p ≥ 3e-3 and untreated-defect runs at d=5: the native engine
        handles >14-defect components and agrees with networkx on total
        weight (and with the legacy path on predictions).  Circuit
        weights are highly degenerate, so the sparse matcher is pinned
        on the weight objective (ties may legitimately resolve to a
        different equal-weight matching there)."""
        seen = self._force_native(monkeypatch)
        patch = rotated_surface_code(5)
        circuit = memory_circuit(
            patch.code,
            "Z",
            rounds,
            NoiseModel.uniform(p),
            defective_data=defective,
        )
        dem = build_dem(circuit)
        new = MatchingDecoder(dem, matcher="dense")
        legacy = MatchingDecoder(dem, use_matrices=False, cache_size=0)
        detectors, _ = sample_detectors(circuit, 60, seed=7)
        assert (
            new.decode_batch(detectors) == legacy.decode_batch(detectors)
        ).all()
        dense_rows = np.nonzero(
            detectors.sum(axis=1) > mwpm_module.DP_DEFECT_LIMIT
        )[0]
        assert dense_rows.size > 0
        for row in dense_rows[:10]:
            assert new.matching_weight(detectors[row]) == pytest.approx(
                networkx_reduced_weight(new, detectors[row])
            )
            assert new.matching_weight(
                detectors[row], matcher="sparse"
            ) == pytest.approx(new.matching_weight(detectors[row]))
        assert max(seen, default=0) > mwpm_module.DP_DEFECT_LIMIT


class TestShardedDecode:
    def test_workers_match_serial(self):
        rng = np.random.default_rng(71)
        dem = random_dem(rng, max_detectors=9)
        serial = MatchingDecoder(dem)
        sharded = MatchingDecoder(dem, workers=2)
        samples = rng.integers(
            0, 2, size=(300, dem.num_detectors), dtype=np.uint8
        )
        expected = serial.decode_batch(samples)
        assert (sharded.decode_batch(samples) == expected).all()
        # Per-call override beats the constructor setting.
        assert (
            MatchingDecoder(dem).decode_batch(samples, workers=2) == expected
        ).all()

    def test_sharded_batch_warms_parent_cache(self):
        rng = np.random.default_rng(72)
        dem = random_dem(rng, max_detectors=8)
        dec = MatchingDecoder(dem, workers=2)
        samples = rng.integers(
            0, 2, size=(200, dem.num_detectors), dtype=np.uint8
        )
        dec.decode_batch(samples)
        assert len(dec._cache) > 0
        hits_before = dec.cache_hits
        dec.decode_batch(samples)
        assert dec.cache_hits > hits_before

    def test_small_batches_stay_serial(self):
        rng = np.random.default_rng(73)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem, workers=4)
        # A handful of unique syndromes is below the sharding floor.
        assert not dec._can_shard(4, 4)

    def test_invalid_workers_rejected(self):
        rng = np.random.default_rng(74)
        dem = random_dem(rng)
        with pytest.raises(ValueError):
            MatchingDecoder(dem, workers=0)


class TestEmptyBatch:
    def test_zero_shots_error_rate_is_zero(self):
        """Regression: empty batches returned NaN with a RuntimeWarning."""
        rng = np.random.default_rng(75)
        dem = random_dem(rng)
        dec = MatchingDecoder(dem)
        detectors = np.zeros((0, dem.num_detectors), dtype=np.uint8)
        observables = np.zeros((0, 1), dtype=np.uint8)
        with np.errstate(invalid="raise"):
            rate = dec.logical_error_rate(detectors, observables)
        assert rate == 0.0


class TestSeedDerivation:
    def test_bases_sample_distinct_streams(self, monkeypatch):
        """logical_error_rate must not reuse one seed for both bases."""
        import repro.eval.montecarlo as mc

        seen = []
        real = mc.sample_detectors

        def recording(circuit, shots, *, seed=None, **kwargs):
            seen.append(seed)
            return real(circuit, shots, seed=seed, **kwargs)

        monkeypatch.setattr(mc, "sample_detectors", recording)
        patch = rotated_surface_code(3)
        mc.logical_error_rate(
            patch.code, NoiseModel.uniform(1e-3), rounds=2, shots=20, seed=123
        )
        assert len(seen) == 2
        assert seen[0] != seen[1]
        assert 123 not in seen

    def test_reproducible_for_fixed_seed(self):
        import repro.eval.montecarlo as mc

        patch = rotated_surface_code(3)
        kwargs = dict(rounds=2, shots=100, seed=7)
        a = mc.logical_error_rate(patch.code, NoiseModel.uniform(2e-3), **kwargs)
        b = mc.logical_error_rate(patch.code, NoiseModel.uniform(2e-3), **kwargs)
        assert a == b
