"""Tests for the MWPM decoder and decoding graph."""

import numpy as np
import pytest

from repro.decode import MatchingDecoder
from repro.decode.graph import BOUNDARY, DecodingGraph
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.sim.dem import DetectorErrorModel, ErrorMechanism
from repro.surface import rotated_surface_code


def toy_dem():
    """A 3-detector chain: boundary - d0 - d1 - d2 - boundary."""
    mechanisms = [
        ErrorMechanism(0.01, (0,), True),
        ErrorMechanism(0.01, (0, 1), False),
        ErrorMechanism(0.01, (1, 2), False),
        ErrorMechanism(0.01, (2,), False),
    ]
    return DetectorErrorModel(mechanisms, num_detectors=3, num_observables=1)


class TestDecodingGraph:
    def test_nodes_and_boundary(self):
        g = DecodingGraph(toy_dem())
        assert BOUNDARY in g.graph
        assert g.graph.number_of_edges() == 4

    def test_parallel_edges_merge(self):
        dem = DetectorErrorModel(
            [ErrorMechanism(0.01, (0, 1), False), ErrorMechanism(0.02, (0, 1), True)],
            num_detectors=2,
            num_observables=1,
        )
        g = DecodingGraph(dem)
        assert g.graph.number_of_edges() == 1
        p = g.graph[0][1]["probability"]
        assert p == pytest.approx(0.01 * 0.98 + 0.02 * 0.99)

    def test_observable_parity_along_path(self):
        g = DecodingGraph(toy_dem())
        assert g.path_observable_parity([BOUNDARY, 0]) == 1
        assert g.path_observable_parity([0, 1, 2]) == 0


class TestMatchingDecoder:
    def test_empty_syndrome(self):
        dec = MatchingDecoder(toy_dem())
        assert dec.decode(np.zeros(3, dtype=np.uint8)) == 0

    def test_single_defect_matches_to_boundary(self):
        dec = MatchingDecoder(toy_dem())
        # Defect at detector 0: nearest boundary path crosses the
        # observable edge.
        assert dec.decode(np.array([1, 0, 0])) == 1
        # Defect at detector 2: boundary on the other side, no flip.
        assert dec.decode(np.array([0, 0, 1])) == 0

    def test_pair_matches_internally(self):
        dec = MatchingDecoder(toy_dem())
        assert dec.decode(np.array([1, 1, 0])) == 0

    def test_greedy_agrees_on_simple_cases(self):
        exact = MatchingDecoder(toy_dem())
        greedy = MatchingDecoder(toy_dem(), method="greedy")
        for syndrome in ([1, 0, 0], [0, 1, 1], [1, 1, 1], [0, 0, 0]):
            s = np.array(syndrome)
            assert exact.decode(s) == greedy.decode(s)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            MatchingDecoder(toy_dem(), method="magic")

    def test_decode_batch_shape(self):
        dec = MatchingDecoder(toy_dem())
        out = dec.decode_batch(np.zeros((5, 3), dtype=np.uint8))
        assert out.shape == (5,)


class TestEndToEndDecoding:
    def test_distance_scaling(self):
        """d=5 must beat d=3 at p well below threshold."""
        rates = {}
        for d in (3, 5):
            patch = rotated_surface_code(d)
            c = memory_circuit(patch.code, "Z", d, NoiseModel.uniform(3e-3))
            dem = build_dem(c)
            dec = MatchingDecoder(dem)
            det, obs = sample_detectors(c, 4000, seed=3)
            rates[d] = dec.logical_error_rate(det, obs)
        assert rates[5] < rates[3]

    def test_decoder_beats_majority_noise(self):
        """At low p the decoder corrects nearly everything."""
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, "Z", 3, NoiseModel.uniform(1e-3))
        dem = build_dem(c)
        dec = MatchingDecoder(dem)
        det, obs = sample_detectors(c, 2000, seed=5)
        raw_flip_rate = (obs.sum(axis=1) % 2).mean()
        assert dec.logical_error_rate(det, obs) <= raw_flip_rate + 1e-9

    def test_x_memory_symmetric(self):
        patch = rotated_surface_code(3)
        c = memory_circuit(patch.code, "X", 3, NoiseModel.uniform(3e-3))
        dem = build_dem(c)
        dec = MatchingDecoder(dem)
        det, obs = sample_detectors(c, 2000, seed=6)
        assert dec.logical_error_rate(det, obs) < 0.05
