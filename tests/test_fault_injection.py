"""End-to-end crash safety: SIGKILL, dead workers, corrupt caches.

The acceptance gates of the crash-safe runtime, exercised with real
process kills rather than mocks:

* a sweep SIGKILLed mid-run resumes from its journal and merges
  bit-identically with a never-interrupted run;
* a forked decode worker killed (or hung) mid-shard degrades that
  shard to serial decoding with identical predictions, and the pool is
  always reaped — even when the parent's side raises;
* a corrupted artifact-cache entry is quarantined and rebuilt
  transparently underneath the evaluation layer.
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

import repro.decode.base as decode_base
import repro.eval.montecarlo as mc
from repro.decode import MatchingDecoder
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.store import ArtifactStore, using_store
from repro.surface import rotated_surface_code
from repro.sweep import SweepCell, SweepSpec, read_journal, run_sweep

pytestmark = pytest.mark.fault_injection

SRC = Path(__file__).resolve().parent.parent / "src"


def kill_spec():
    """8 chunks across two cells; literals mirrored in _DRIVER."""
    return SweepSpec(
        cells=(
            SweepCell(distance=3, p=0.02, rounds=3, shots=240),
            SweepCell(distance=3, p=0.04, rounds=3, shots=240),
        ),
        seed=23,
        chunk_shots=60,
    )


#: Runs kill_spec() in a separate interpreter, throttled so the parent
#: can SIGKILL it between chunk commits.  argv: sweep_dir, src_path.
_DRIVER = textwrap.dedent(
    """
    import sys, time
    sys.path.insert(0, sys.argv[2])
    from repro.sweep import SweepCell, SweepSpec, run_sweep
    spec = SweepSpec(
        cells=(
            SweepCell(distance=3, p=0.02, rounds=3, shots=240),
            SweepCell(distance=3, p=0.04, rounds=3, shots=240),
        ),
        seed=23,
        chunk_shots=60,
    )
    run_sweep(spec, sys.argv[1], chunk_hook=lambda r: time.sleep(0.3))
    """
)


class TestKillAndResume:
    def test_sigkill_mid_sweep_resumes_bit_identical(self, tmp_path):
        spec = kill_spec()
        script = tmp_path / "driver.py"
        script.write_text(_DRIVER)
        sweep_dir = tmp_path / "sweep"
        journal = sweep_dir / "journal.jsonl"

        proc = subprocess.Popen(
            [sys.executable, str(script), str(sweep_dir), str(SRC)],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while True:
                records, _ = read_journal(journal)
                chunks = [r for r in records if r.get("type") == "chunk"]
                if len(chunks) >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "sweep finished before it could be killed "
                        f"(rc={proc.returncode})"
                    )
                if time.monotonic() > deadline:
                    pytest.fail("no chunk records appeared within 120s")
                time.sleep(0.02)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=30)
        assert proc.returncode == -signal.SIGKILL

        # Resume replays only the chunks the victim never committed...
        resumed = run_sweep(spec, sweep_dir)
        assert resumed.resumed_chunks >= 2
        assert resumed.executed_chunks == 8 - resumed.resumed_chunks

        # ...and the merged counts match a never-interrupted run.
        pristine = run_sweep(spec, tmp_path / "pristine")
        assert pristine.executed_chunks == 8
        assert [r.errors for r in resumed.cells] == [
            r.errors for r in pristine.cells
        ]
        assert [r.shots for r in resumed.cells] == [240, 240]


def pool_workload(shots=4000):
    """A d=3 batch dense enough to clear the sharding floor."""
    patch = rotated_surface_code(3)
    circuit = memory_circuit(patch.code, "Z", 10, NoiseModel.uniform(8e-3))
    dem = build_dem(circuit)
    detectors, _ = sample_detectors(circuit, shots, seed=5)
    return dem, detectors


class TestPoolFaultTolerance:
    def test_killed_worker_falls_back_to_serial(self):
        dem, detectors = pool_workload()
        serial = MatchingDecoder(dem).decode_batch(detectors)

        victim = MatchingDecoder(dem)

        def kill_shard_zero(shard_index):
            if shard_index == 0:
                os.kill(os.getpid(), signal.SIGKILL)

        decode_base._WORKER_FAULT = kill_shard_zero
        try:
            parallel = victim.decode_batch(detectors, workers=2)
        finally:
            decode_base._WORKER_FAULT = None

        assert victim.pool_failures == 1
        np.testing.assert_array_equal(parallel, serial)
        assert multiprocessing.active_children() == []

    def test_workers_one_is_explicitly_serial(self):
        """``workers=1`` means serial: no fork, ever — pinned.

        A fault armed to kill *any* forked worker never fires, because
        the explicit serial path must not touch the pool at all (it
        used to reach serial only when one shard happened to fall
        below the per-worker floor).  Both spellings are pinned: the
        per-call ``workers=1`` and the constructor default.
        """
        dem, detectors = pool_workload()
        serial = MatchingDecoder(dem).decode_batch(detectors)

        def kill_any_worker(shard_index):
            os.kill(os.getpid(), signal.SIGKILL)

        per_call = MatchingDecoder(dem)
        constructed = MatchingDecoder(dem, workers=1)
        decode_base._WORKER_FAULT = kill_any_worker
        try:
            explicit = per_call.decode_batch(detectors, workers=1)
            defaulted = constructed.decode_batch(detectors)
        finally:
            decode_base._WORKER_FAULT = None

        assert per_call.pool_failures == 0
        assert constructed.pool_failures == 0
        np.testing.assert_array_equal(explicit, serial)
        np.testing.assert_array_equal(defaulted, serial)
        assert multiprocessing.active_children() == []

    def test_hung_worker_times_out_to_serial(self):
        dem, detectors = pool_workload()
        serial = MatchingDecoder(dem).decode_batch(detectors)

        victim = MatchingDecoder(dem)
        victim.pool_timeout = 0.3

        def hang_shard_one(shard_index):
            if shard_index == 1:
                time.sleep(600)

        decode_base._WORKER_FAULT = hang_shard_one
        try:
            t0 = time.monotonic()
            parallel = victim.decode_batch(detectors, workers=2)
            elapsed = time.monotonic() - t0
        finally:
            decode_base._WORKER_FAULT = None

        assert victim.pool_failures == 1
        assert elapsed < 60  # the budget interrupted the hang
        np.testing.assert_array_equal(parallel, serial)
        assert multiprocessing.active_children() == []

    def test_pool_reaped_when_parent_raises(self, monkeypatch):
        dem, detectors = pool_workload()
        victim = MatchingDecoder(dem)

        def boom(proc, conn, expected):
            raise RuntimeError("collect failed")

        monkeypatch.setattr(victim, "_collect_shard", boom)
        with pytest.raises(RuntimeError, match="collect failed"):
            victim.decode_batch(detectors, workers=2)
        # The finally block terminated and joined every worker and
        # cleared the fork-inheritance global.
        assert multiprocessing.active_children() == []
        assert decode_base._POOL_DECODER is None


class TestArtifactCorruptionEndToEnd:
    def test_corrupt_dem_entry_quarantined_and_rebuilt(self, tmp_path):
        code = rotated_surface_code(3).code
        noise = NoiseModel.uniform(0.02)
        kwargs = dict(rounds=3, shots=200, seed=9)
        store = ArtifactStore(tmp_path / "store")

        with using_store(store):
            mc._DECODER_CACHE.clear()
            first = mc.memory_experiment(code, "Z", noise, **kwargs)
            entries = list((store.root / "objects" / "dem").rglob("*.art"))
            assert len(entries) == 1

            raw = bytearray(entries[0].read_bytes())
            raw[-5] ^= 0xFF  # bit-rot in the pickled payload
            entries[0].write_bytes(bytes(raw))

            # A fresh process (simulated by clearing the in-process
            # memo) must detect the damage, rebuild, and agree exactly.
            mc._DECODER_CACHE.clear()
            second = mc.memory_experiment(code, "Z", noise, **kwargs)

        assert first == second
        assert store.corrupt == 1
        assert list((store.root / "quarantine").glob("*.art"))
        # A healthy replacement entry was republished.
        rebuilt = list((store.root / "objects" / "dem").rglob("*.art"))
        assert len(rebuilt) == 1

    def test_truncated_matrices_entry_rebuilt(self, tmp_path):
        code = rotated_surface_code(3).code
        noise = NoiseModel.uniform(0.02)
        kwargs = dict(rounds=3, shots=200, seed=9)
        store = ArtifactStore(tmp_path / "store")

        with using_store(store):
            mc._DECODER_CACHE.clear()
            first = mc.memory_experiment(code, "Z", noise, **kwargs)
            entries = list(
                (store.root / "objects" / "path_matrices").rglob("*.art")
            )
            assert len(entries) == 1
            entries[0].write_bytes(entries[0].read_bytes()[:50])

            mc._DECODER_CACHE.clear()
            second = mc.memory_experiment(code, "Z", noise, **kwargs)

        assert first == second
        assert store.corrupt == 1
