"""Unit and property tests for GF(2) linear algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils import (
    gf2_gaussian_elimination,
    gf2_in_rowspace,
    gf2_independent_rows,
    gf2_nullspace,
    gf2_rank,
    gf2_row_reduce,
    gf2_solve,
)

matrices = arrays(
    dtype=np.uint8,
    shape=st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.integers(0, 1),
)


class TestRank:
    def test_identity(self):
        assert gf2_rank(np.eye(4, dtype=np.uint8)) == 4

    def test_zero_matrix(self):
        assert gf2_rank(np.zeros((3, 5), dtype=np.uint8)) == 0

    def test_empty(self):
        assert gf2_rank(np.zeros((0, 4), dtype=np.uint8)) == 0

    def test_duplicate_rows(self):
        m = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 0]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    def test_xor_dependence(self):
        m = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.uint8)
        assert gf2_rank(m) == 2

    @given(matrices)
    @settings(max_examples=50)
    def test_rank_bounded(self, m):
        r = gf2_rank(m)
        assert 0 <= r <= min(m.shape)

    @given(matrices)
    @settings(max_examples=50)
    def test_rank_invariant_under_row_swap(self, m):
        swapped = m[::-1].copy()
        assert gf2_rank(m) == gf2_rank(swapped)


class TestEchelon:
    def test_pivots_strictly_increase(self):
        m = np.array([[1, 1, 1], [1, 0, 0], [0, 1, 1]], dtype=np.uint8)
        ech, pivots = gf2_gaussian_elimination(m)
        assert pivots == sorted(pivots)
        assert len(set(pivots)) == len(pivots)

    @given(matrices)
    @settings(max_examples=50)
    def test_rref_pivot_columns_are_unit(self, m):
        rref, pivots = gf2_row_reduce(m)
        for r, c in enumerate(pivots):
            col = rref[:, c]
            assert col[r] == 1
            assert col.sum() == 1


class TestNullspace:
    def test_nullspace_vectors_annihilate(self):
        m = np.array([[1, 1, 0, 0], [0, 1, 1, 0]], dtype=np.uint8)
        ns = gf2_nullspace(m)
        for v in ns:
            assert not ((m @ v) % 2).any()

    def test_dimension(self):
        m = np.array([[1, 1, 0, 0], [0, 1, 1, 0]], dtype=np.uint8)
        assert gf2_nullspace(m).shape[0] == 4 - gf2_rank(m)

    @given(matrices)
    @settings(max_examples=50)
    def test_rank_nullity(self, m):
        assert gf2_nullspace(m).shape[0] == m.shape[1] - gf2_rank(m)

    @given(matrices)
    @settings(max_examples=50)
    def test_annihilation_property(self, m):
        for v in gf2_nullspace(m):
            assert not ((m @ v) % 2).any()


class TestSolve:
    def test_solves_known_combination(self):
        m = np.array([[1, 1, 0], [0, 1, 1]], dtype=np.uint8)
        target = np.array([1, 0, 1], dtype=np.uint8)  # row0 ^ row1
        x = gf2_solve(m, target)
        assert x is not None
        assert (((x @ m) % 2) == target).all()

    def test_unsolvable_returns_none(self):
        m = np.array([[1, 1, 0]], dtype=np.uint8)
        assert gf2_solve(m, np.array([1, 0, 0], dtype=np.uint8)) is None

    def test_zero_target(self):
        m = np.array([[1, 0], [0, 1]], dtype=np.uint8)
        x = gf2_solve(m, np.array([0, 0], dtype=np.uint8))
        assert x is not None and not ((x @ m) % 2).any()

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf2_solve(np.eye(2, dtype=np.uint8), np.array([1, 0, 0]))

    @given(matrices, st.data())
    @settings(max_examples=50)
    def test_round_trip(self, m, data):
        coeffs = data.draw(
            arrays(np.uint8, (m.shape[0],), elements=st.integers(0, 1))
        )
        target = (coeffs @ m) % 2
        x = gf2_solve(m, target)
        assert x is not None
        assert (((x @ m) % 2) == target).all()


class TestRowspace:
    def test_membership(self):
        m = np.array([[1, 1, 0], [0, 0, 1]], dtype=np.uint8)
        assert gf2_in_rowspace(m, np.array([1, 1, 1], dtype=np.uint8))
        assert not gf2_in_rowspace(m, np.array([1, 0, 0], dtype=np.uint8))

    def test_zero_vector_always_member(self):
        m = np.zeros((0, 3), dtype=np.uint8)
        assert gf2_in_rowspace(m, np.zeros(3, dtype=np.uint8))


class TestIndependentRows:
    def test_keeps_first_of_duplicates(self):
        m = np.array([[1, 0], [1, 0], [0, 1]], dtype=np.uint8)
        assert gf2_independent_rows(m) == [0, 2]

    def test_skips_zero_rows(self):
        m = np.array([[0, 0], [1, 1]], dtype=np.uint8)
        assert gf2_independent_rows(m) == [1]

    @given(matrices)
    @settings(max_examples=50)
    def test_selected_rows_have_full_rank(self, m):
        kept = gf2_independent_rows(m)
        assert len(kept) == gf2_rank(m)
        if kept:
            assert gf2_rank(m[kept]) == len(kept)


class TestPackedBackend:
    """The word-packed elimination must match the dense loop exactly."""

    wide_matrices = arrays(
        dtype=np.uint8,
        shape=st.tuples(st.integers(1, 24), st.integers(1, 140)),
        elements=st.integers(0, 1),
    )

    @staticmethod
    def _both_backends(fn, m):
        import repro.utils.gf2 as gf2mod

        saved = gf2mod.PACKED_MIN_COLS
        try:
            gf2mod.PACKED_MIN_COLS = 10**9
            dense = fn(m)
            gf2mod.PACKED_MIN_COLS = 1
            packed = fn(m)
        finally:
            gf2mod.PACKED_MIN_COLS = saved
        return dense, packed

    def test_pack_roundtrip(self):
        from repro.utils import gf2_pack, gf2_unpack

        rng = np.random.default_rng(0)
        m = rng.integers(0, 2, size=(13, 203), dtype=np.uint8)
        assert (gf2_unpack(gf2_pack(m), 203) == m).all()

    def test_pack_word_layout(self):
        from repro.utils import gf2_pack

        row = np.zeros((1, 130), dtype=np.uint8)
        row[0, 0] = 1    # bit 0 of word 0
        row[0, 64] = 1   # bit 0 of word 1
        row[0, 129] = 1  # bit 1 of word 2
        packed = gf2_pack(row)
        assert packed.shape == (1, 3)
        assert packed[0, 0] == 1 and packed[0, 1] == 1 and packed[0, 2] == 2

    @given(wide_matrices)
    @settings(max_examples=60, deadline=None)
    def test_elimination_matches_dense(self, m):
        (de, dp), (pe, pp) = self._both_backends(gf2_gaussian_elimination, m)
        assert dp == pp
        assert (de == pe).all()

    @given(wide_matrices)
    @settings(max_examples=60, deadline=None)
    def test_row_reduce_matches_dense(self, m):
        (dr, dp), (pr, pp) = self._both_backends(gf2_row_reduce, m)
        assert dp == pp
        assert (dr == pr).all()

    @given(wide_matrices)
    @settings(max_examples=40, deadline=None)
    def test_rank_and_nullspace_consistent(self, m):
        dense_rank, packed_rank = self._both_backends(gf2_rank, m)
        assert dense_rank == packed_rank
        dense_ns, packed_ns = self._both_backends(gf2_nullspace, m)
        assert (dense_ns == packed_ns).all()
        if packed_ns.size:
            assert not ((packed_ns @ m.T) % 2).any()
