"""Compiled blossom kernel == pure-Python engine, bit for bit.

The C extension (``repro.decode._cblossom``) is a statement-for-
statement port of the pure engine and must be *indistinguishable* from
it: same mates, same matching weight, same final duals, on every
input.  A hypothesis property suite pins this over randomized graphs
(continuous and degenerate tied weights, with and without the
jumpstart), and dense d=5 memory circuits (p ≥ 3e-3 and
untreated-defect runs) pin the same identity end to end through the
decoder — including the compiled sparse component matcher
(``_cblossom.sparse_match_parity``), which re-implements seed
selection, solve and certificate repair in C.

When the extension is not built (or ``REPRO_PURE_BLOSSOM=1``), the
kernel-comparison tests skip and the remaining tests exercise the pure
fallback.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decode import MatchingDecoder
from repro.decode import blossom
from repro.decode import sparse_match as sparse_module
from repro.decode.blossom import (
    _blossom_core_py,
    blossom_core,
    kernel_backend,
)
from repro.sim import NoiseModel, build_dem, memory_circuit, sample_detectors
from repro.surface import rotated_surface_code

requires_kernel = pytest.mark.skipif(
    kernel_backend() != "compiled",
    reason="compiled _cblossom kernel not available",
)


@st.composite
def random_graphs(draw):
    """(n, edge_i, edge_j, edge_w, jumpstart) over distinct pairs.

    Half the instances draw small-integer weights so ties are
    ubiquitous — the regime where scan order and tie-breaking decide
    the matching and any divergence between the backends would show.
    """
    n = draw(st.integers(min_value=1, max_value=14))
    pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
    m = draw(st.integers(min_value=0, max_value=min(len(pairs), 24)))
    order = draw(st.permutations(range(len(pairs)))) if pairs else []
    chosen = [pairs[t] for t in order[:m]]
    if draw(st.booleans()):
        weights = draw(
            st.lists(
                st.integers(min_value=1, max_value=4).map(float),
                min_size=m,
                max_size=m,
            )
        )
    else:
        weights = draw(
            st.lists(
                st.floats(
                    min_value=0.1,
                    max_value=9.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
                min_size=m,
                max_size=m,
            )
        )
    ei = [a for a, _ in chosen]
    ej = [b for _, b in chosen]
    return n, ei, ej, weights, draw(st.booleans())


def matched_weight(n, ei, ej, ew, mate):
    lut = {(a, b): w for a, b, w in zip(ei, ej, ew, strict=True)}
    total = 0.0
    for v in range(n):
        if 0 <= mate[v] and v < mate[v]:
            total += lut[(v, mate[v])]
    return total


@requires_kernel
class TestKernelIdentity:
    @settings(max_examples=150, deadline=None, derandomize=True)
    @given(random_graphs())
    def test_mates_and_duals_bit_identical(self, graph):
        n, ei, ej, ew, jumpstart = graph
        got = blossom_core(n, ei, ej, ew, jumpstart=jumpstart)
        want = _blossom_core_py(n, list(ei), list(ej), list(ew), jumpstart)
        assert got[0] == want[0]  # mates, exact
        assert got[1] == want[1]  # duals, bit for bit

    @settings(max_examples=100, deadline=None, derandomize=True)
    @given(random_graphs())
    def test_matching_weight_and_dual_feasibility(self, graph):
        n, ei, ej, ew, jumpstart = graph
        mate, dual = blossom_core(n, ei, ej, ew, jumpstart=jumpstart)
        mate_py, dual_py = _blossom_core_py(
            n, list(ei), list(ej), list(ew), jumpstart
        )
        assert matched_weight(n, ei, ej, ew, mate) == matched_weight(
            n, ei, ej, ew, mate_py
        )
        # Final blossom duals never go negative (delta never exceeds
        # the smallest T-blossom dual), and every fed edge satisfies
        # the LP feasibility u_i + u_j + Σ z_B ≥ 2w; summing *all*
        # blossom duals relaxes the Σ over containing blossoms, so
        # this must hold up to rounding on both backends.
        for duals in (dual, dual_py):
            z = np.asarray(duals[n:])
            assert (z >= -1e-9).all()
            u = np.asarray(duals[:n])
            for a, b, w in zip(ei, ej, ew, strict=True):
                assert u[a] + u[b] - 2.0 * w + 2.0 * z.sum() >= -1e-9

    def test_numpy_inputs_match_list_inputs(self):
        rng = np.random.default_rng(3)
        for _ in range(50):
            n = int(rng.integers(2, 12))
            pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
            take = rng.permutation(len(pairs))[: rng.integers(1, len(pairs) + 1)]
            ei = np.array([pairs[t][0] for t in take], dtype=np.int64)
            ej = np.array([pairs[t][1] for t in take], dtype=np.int64)
            ew = rng.uniform(0.5, 5.0, size=len(take))
            got = blossom_core(n, ei, ej, ew, jumpstart=True)
            want = blossom_core(
                n, ei.tolist(), ej.tolist(), ew.tolist(), jumpstart=True
            )
            assert got == want

    def test_buffer_validation(self):
        kern = blossom._KERNEL
        mate = np.empty(3, dtype=np.int64)
        dual = np.empty(6, dtype=np.float64)
        short = np.zeros(1, dtype=np.int64)
        with pytest.raises(ValueError):
            kern.blossom_core(
                3,
                np.zeros(2, dtype=np.int64),
                short,  # length mismatch
                np.zeros(2, dtype=np.float64),
                False,
                mate,
                dual,
            )
        with pytest.raises(ValueError):
            kern.blossom_core(
                3,
                np.array([0, 5], dtype=np.int64),  # endpoint out of range
                np.array([1, 2], dtype=np.int64),
                np.zeros(2, dtype=np.float64),
                False,
                mate,
                dual,
            )
        with pytest.raises(ValueError):
            kern.sparse_match_parity(
                2,
                np.zeros((2, 2)),
                np.zeros((2, 2), dtype=np.uint8),
                np.zeros((2, 2), dtype=np.uint8),
                np.zeros(3),  # length mismatch
                np.zeros(2, dtype=np.uint8),
            )


@requires_kernel
class TestCompiledSparseMatcher:
    def test_parity_matches_pure_path(self, monkeypatch):
        """Compiled sparse matcher == pure path on random components,
        including tie-heavy integer weights and unreachable defects."""
        rng = np.random.default_rng(17)
        for trial in range(300):
            k = int(rng.integers(2, 22))
            if trial % 3 == 0:
                base = rng.integers(1, 5, size=(k, k)).astype(float)
            else:
                base = rng.uniform(0.5, 10.0, size=(k, k))
            W = np.triu(base, 1)
            W = W + W.T
            np.fill_diagonal(W, np.inf)
            drop = np.triu(rng.random((k, k)) < 0.25, 1)
            W[drop | drop.T] = np.inf
            b_dist = rng.uniform(0.5, 10.0, size=k)
            b_dist[rng.random(k) < 0.3] = np.inf
            use_pair = np.triu(rng.random((k, k)) < 0.5, 1)
            use_pair = use_pair | use_pair.T
            P = np.triu(rng.random((k, k)) < 0.5, 1).astype(np.uint8)
            P = P | P.T
            b_par = (rng.random(k) < 0.5).astype(np.uint8)
            args = (k, W, use_pair, P, b_dist, b_par)
            got = sparse_module.sparse_match_parity(*args)
            with monkeypatch.context() as mp:
                mp.setattr(blossom, "_KERNEL", None)
                want = sparse_module.sparse_match_parity(*args)
            assert got == want

    @pytest.mark.parametrize(
        "p,rounds,defective",
        [
            (3e-3, 10, None),
            (1e-3, 10, {(3, 3), (5, 5)}),  # untreated-defect circuit
        ],
    )
    def test_dense_memory_circuits_cross_backend(
        self, monkeypatch, p, rounds, defective
    ):
        """d=5 dense-syndrome circuits decode identically on the
        compiled and pure backends, for both matching engines."""
        patch = rotated_surface_code(5)
        circuit = memory_circuit(
            patch.code,
            "Z",
            rounds,
            NoiseModel.uniform(p),
            defective_data=defective,
        )
        dem = build_dem(circuit)
        detectors, _ = sample_detectors(circuit, 80, seed=13)
        # The slice must actually push components through the oversize
        # matching engines, not just the subset DP.
        assert int(detectors.sum(axis=1).max()) >= (
            sparse_module.SPARSE_MIN_DEFECTS
        )
        for matcher in ("sparse", "dense"):
            compiled = MatchingDecoder(dem, matcher=matcher).decode_batch(
                detectors
            )
            with monkeypatch.context() as mp:
                mp.setattr(blossom, "_KERNEL", None)
                pure = MatchingDecoder(dem, matcher=matcher).decode_batch(
                    detectors
                )
            assert (compiled == pure).all()


def _random_group(rng, k, group):
    """One same-size component group in the stacked gather layout."""
    W = np.empty((group, k, k))
    use_pair = np.empty((group, k, k), dtype=bool)
    P = np.empty((group, k, k), dtype=np.uint8)
    b_dist = np.empty((group, k))
    b_par = np.empty((group, k), dtype=np.uint8)
    for i in range(group):
        if int(rng.integers(3)) == 0:
            base = rng.integers(1, 5, size=(k, k)).astype(float)
        else:
            base = rng.uniform(0.5, 10.0, size=(k, k))
        Wi = np.triu(base, 1)
        Wi = Wi + Wi.T
        np.fill_diagonal(Wi, np.inf)
        drop = np.triu(rng.random((k, k)) < 0.25, 1)
        Wi[drop | drop.T] = np.inf
        W[i] = Wi
        bd = rng.uniform(0.5, 10.0, size=k)
        bd[rng.random(k) < 0.3] = np.inf
        b_dist[i] = bd
        up = np.triu(rng.random((k, k)) < 0.5, 1)
        use_pair[i] = up | up.T
        Pi = np.triu(rng.random((k, k)) < 0.5, 1).astype(np.uint8)
        P[i] = Pi | Pi.T
        b_par[i] = (rng.random(k) < 0.5).astype(np.uint8)
    return W, use_pair, P, b_dist, b_par


@requires_kernel
class TestBatchedKernelCalls:
    """One C call per component group == per-component calls == pure."""

    def test_sparse_batch_matches_per_component_and_pure(self, monkeypatch):
        rng = np.random.default_rng(17)
        for _ in range(300):
            k = int(rng.integers(2, 21))
            group = int(rng.integers(1, 6))
            W, use_pair, P, b_dist, b_par = _random_group(rng, k, group)
            batched = sparse_module.sparse_match_parity_batch(
                k, W, use_pair, P, b_dist, b_par
            )
            per_component = np.array(
                [
                    sparse_module.sparse_match_parity(
                        k, W[i], use_pair[i], P[i], b_dist[i], b_par[i]
                    )
                    for i in range(group)
                ],
                dtype=np.uint8,
            )
            assert (batched == per_component).all()
            with monkeypatch.context() as mp:
                mp.setattr(blossom, "_KERNEL", None)
                pure = sparse_module.sparse_match_parity_batch(
                    k, W, use_pair, P, b_dist, b_par
                )
            assert (batched == pure).all()

    def test_dp_batch_matches_pure_level_loop(self, monkeypatch):
        from repro.decode import batch as batch_module

        rng = np.random.default_rng(23)
        for _ in range(60):
            k = int(rng.integers(3, 12))
            group = int(rng.integers(1, 9))
            args = _random_group(rng, k, group)
            compiled = batch_module._dp_match_batch(k, *args)
            with monkeypatch.context() as mp:
                mp.setattr(blossom, "_KERNEL", None)
                pure = batch_module._dp_match_batch(k, *args)
            assert (compiled == pure).all()
            # The pinned fallback over the same flat vectors agrees too.
            cost_flat, par_flat = batch_module._dp_flatten(k, *args)
            direct = batch_module._dp_match_batch_py(k, cost_flat, par_flat)
            assert (compiled == direct).all()

    def test_empty_group_short_circuits(self):
        k = 4
        empty = sparse_module.sparse_match_parity_batch(
            k,
            np.zeros((0, k, k)),
            np.zeros((0, k, k), dtype=bool),
            np.zeros((0, k, k), dtype=np.uint8),
            np.zeros((0, k)),
            np.zeros((0, k), dtype=np.uint8),
        )
        assert empty.shape == (0,)

    def test_sparse_batch_buffer_validation(self):
        kern = blossom._KERNEL
        k, group = 3, 2
        W = np.zeros((group, k, k))
        up = np.zeros((group, k, k), dtype=np.uint8)
        P = np.zeros((group, k, k), dtype=np.uint8)
        bd = np.zeros((group, k))
        bp = np.zeros((group, k), dtype=np.uint8)
        out = np.empty(group, dtype=np.uint8)
        with pytest.raises(ValueError):
            kern.sparse_match_batch(group, k, W[:1], up, P, bd, bp, out)
        with pytest.raises(ValueError):
            kern.sparse_match_batch(
                group, k, W, up, P, np.zeros((group, k + 1)), bp, out
            )
        with pytest.raises(ValueError):
            kern.sparse_match_batch(
                group, k, W, up, P, bd, bp, np.empty(group + 1, dtype=np.uint8)
            )
        with pytest.raises(ValueError):
            kern.sparse_match_batch(0, k, W, up, P, bd, bp, out)

    def test_dp_batch_buffer_validation(self):
        kern = blossom._KERNEL
        k, group = 3, 2
        stride = k * k + k + 1
        cost = np.zeros((group, stride))
        par = np.zeros((group, stride), dtype=np.uint8)
        out = np.empty(group, dtype=np.uint8)
        with pytest.raises(ValueError):
            kern.dp_match_batch(group, k, cost[:1], par, out)
        with pytest.raises(ValueError):
            kern.dp_match_batch(group, k, cost, par[:, :-1].copy(), out)
        with pytest.raises(ValueError):
            kern.dp_match_batch(
                group, k, cost, par, np.empty(group + 1, dtype=np.uint8)
            )
        with pytest.raises(ValueError):
            kern.dp_match_batch(group, 25, cost, par, out)  # k capped at 24


class TestBackendReporting:
    def test_kernel_backend_reflects_kernel(self, monkeypatch):
        assert kernel_backend() in ("compiled", "python")
        with monkeypatch.context() as mp:
            mp.setattr(blossom, "_KERNEL", None)
            assert kernel_backend() == "python"
