"""Repo-owned developer tooling (not shipped with the ``repro`` package)."""
