#!/usr/bin/env bash
# Sanitizer leg for the compiled blossom kernel (repro.decode._cblossom).
#
# Two gates, both hard failures:
#
#   1. A -Wall -Wextra -Werror compile: the kernel must be warning-clean
#      at the strictest practical diagnostic level.
#   2. An AddressSanitizer + UndefinedBehaviorSanitizer build
#      (-fno-sanitize-recover: first report aborts the process) that
#      runs the kernel unit tests plus the compiled-vs-pure agreement
#      suites, so every matching path the tests exercise is swept for
#      heap errors, leaks-of-scope, and UB.
#
# The ASan runtime must be loaded before python itself allocates, hence
# the LD_PRELOAD.  detect_leaks is off: CPython interns and arena
# allocations are indistinguishable from leaks at interpreter exit and
# would drown real reports.
#
# Usage: tools/ci/kernel_sanitize.sh   (from the repo root)
set -euo pipefail

cd "$(dirname "$0")/../.."

KERNEL_SRC=src/repro/decode/_cblossom.c
PY_INCLUDE=$(python -c 'import sysconfig; print(sysconfig.get_paths()["include"])')
EXT_SUFFIX=$(python -c 'import sysconfig; print(sysconfig.get_config_var("EXT_SUFFIX"))')
BUILD_DIR=build/sanitize
mkdir -p "$BUILD_DIR"

echo "== gate 1: -Wall -Wextra -Werror compile =="
gcc -c -O2 -ffp-contract=off -Wall -Wextra -Werror \
    -I"$PY_INCLUDE" "$KERNEL_SRC" -o "$BUILD_DIR/cblossom_warn.o"
echo "warning-clean"

echo "== gate 2: ASan+UBSan build =="
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
gcc -shared -fPIC -g -O1 -ffp-contract=off $SAN_FLAGS \
    -I"$PY_INCLUDE" "$KERNEL_SRC" \
    -o "$BUILD_DIR/_cblossom$EXT_SUFFIX"

LIBASAN=$(gcc -print-file-name=libasan.so)

echo "== gate 2: kernel + agreement suites under sanitizers =="
# The sanitized module shadows any --inplace build via PYTHONPATH
# ordering: build/sanitize is a bare dir holding only the extension, so
# we graft it in as the repro.decode package dir via a pth-less trick —
# copy the extension next to the real package in a scratch tree.
SCRATCH=$(mktemp -d)
trap 'rm -rf "$SCRATCH"' EXIT
cp -r src/repro "$SCRATCH/repro"
rm -f "$SCRATCH"/repro/decode/_cblossom*.so
cp "$BUILD_DIR/_cblossom$EXT_SUFFIX" "$SCRATCH/repro/decode/"

# Guard against a silent pure-Python fallback: the kernel tests skip
# themselves when the extension is absent, which would turn a broken
# sanitized build into a green run.
LD_PRELOAD="$LIBASAN" \
ASAN_OPTIONS="detect_leaks=0:abort_on_error=1" \
PYTHONPATH="$SCRATCH" \
python -c 'from repro.decode.blossom import kernel_backend; assert kernel_backend() == "compiled", "sanitized kernel failed to import"'

LD_PRELOAD="$LIBASAN" \
ASAN_OPTIONS="detect_leaks=0:abort_on_error=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
PYTHONPATH="$SCRATCH" \
python -m pytest -q -p no:cacheprovider \
    tests/test_blossom_kernel.py tests/test_decode_agreement.py \
    tests/test_decode_batch.py

echo "sanitizer leg clean"
