"""Rule engine: file walking, import resolution, suppressions, reporting.

A rule is a class with a ``code``, a one-line ``summary``, an
``applies(relpath)`` path predicate and a ``check(tree, ctx)`` visitor
that yields findings.  The engine owns everything else: discovering
files, parsing them once, resolving import aliases so rules can match
on *dotted origins* (``np.random.randint`` and ``from numpy.random
import randint`` are the same violation), honouring suppression
comments, and rendering/serialising findings.

Paths are matched repo-relative with POSIX separators, so rules can
scope themselves with plain prefixes (``src/repro/decode/``).  Fixture
files used by the checker's own tests pass a *virtual* path to
:func:`check_source` to exercise a scope without living in it.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "ImportMap",
    "Rule",
    "check_source",
    "iter_python_files",
    "run_paths",
]

#: Directories never walked: fixture trees deliberately violate rules,
#: build/ holds generated copies, hidden dirs hold VCS/tool state.
_SKIP_DIR_NAMES = frozenset({"build", "dist", "__pycache__", "fixtures"})

_SUPPRESS_RE = re.compile(
    r"#\s*repcheck:\s*(?P<scope>file-)?ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


class ImportMap:
    """Resolve local names to the dotted origin they were imported from.

    ``import numpy as np`` maps ``np`` -> ``numpy``; ``from numpy import
    random as nr`` maps ``nr`` -> ``numpy.random``; attribute chains
    extend the origin, so ``np.random.randint`` resolves to
    ``numpy.random.randint``.  Names bound by assignment or function
    parameters are not tracked — rules match what a file *imports*, not
    what it computes, which keeps them free of false positives on local
    variables that happen to share a module's name.
    """

    def __init__(self, tree: ast.AST) -> None:
        self._origins: dict[str, str] = {}
        self._shadowed: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    origin = alias.name if alias.asname else local
                    self._origins[local] = origin
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay repo-internal
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._origins[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted origin of a Name/Attribute chain, or ``None``."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._origins.get(node.id)
        if origin is None:
            return None
        parts.append(origin)
        return ".".join(reversed(parts))


@dataclass(frozen=True)
class FileContext:
    """Everything a rule gets to look at for one file."""

    relpath: str
    source: str
    tree: ast.AST
    imports: ImportMap


class Rule:
    """Base class for checker rules; subclasses live in ``rules.py``."""

    code: str = "REP000"
    summary: str = ""

    def applies(self, relpath: str) -> bool:
        raise NotImplementedError

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


def _suppressions(source: str) -> tuple[dict[int, frozenset[str] | None], set[str] | None, bool]:
    """Parse suppression comments.

    Returns ``(line_map, file_rules, file_all)`` where ``line_map``
    maps a 1-based line number to the rule codes suppressed there
    (``None`` meaning *all* rules), ``file_rules`` is the set of codes
    suppressed file-wide, and ``file_all`` is True when a bare
    ``file-ignore`` suppresses everything.
    """
    line_map: dict[int, frozenset[str] | None] = {}
    file_rules: set[str] = set()
    file_all = False
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        codes = (
            frozenset(c.strip() for c in rules.split(",") if c.strip())
            if rules is not None
            else None
        )
        if match.group("scope"):
            if codes is None:
                file_all = True
            else:
                file_rules.update(codes)
        elif codes is None:
            # Bare ignore: every rule on this line.
            line_map[lineno] = None
        else:
            existing = line_map.get(lineno, frozenset())
            if existing is not None:
                line_map[lineno] = existing | codes
    return line_map, file_rules, file_all


def check_source(
    source: str,
    relpath: str,
    rules: Sequence[Rule],
) -> list[Finding]:
    """Run ``rules`` over one file's text under a repo-relative path."""
    applicable = [rule for rule in rules if rule.applies(relpath)]
    if not applicable:
        return []
    tree = ast.parse(source, filename=relpath)
    ctx = FileContext(
        relpath=relpath,
        source=source,
        tree=tree,
        imports=ImportMap(tree),
    )
    line_map, file_rules, file_all = _suppressions(source)
    if file_all:
        return []
    findings: list[Finding] = []
    for rule in applicable:
        if rule.code in file_rules:
            continue
        for finding in rule.check(ctx):
            suppressed = line_map.get(finding.line, frozenset())
            if suppressed is None or finding.rule in suppressed:
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path], root: Path) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths``, skipping fixture/build trees."""
    for entry in paths:
        path = Path(entry)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            rel = candidate.relative_to(root) if candidate.is_relative_to(root) else candidate
            if any(
                part in _SKIP_DIR_NAMES or part.startswith(".")
                for part in rel.parts[:-1]
            ):
                continue
            yield candidate


def run_paths(
    paths: Sequence[str | Path],
    rules: Sequence[Rule],
    root: str | Path | None = None,
) -> list[Finding]:
    """Check every python file under ``paths``; findings sorted by location."""
    base = Path(root) if root is not None else Path.cwd()
    findings: list[Finding] = []
    for path in iter_python_files(paths, base):
        resolved = path if path.is_absolute() else base / path
        try:
            relpath = resolved.relative_to(base).as_posix()
        except ValueError:
            relpath = path.as_posix()
        findings.extend(check_source(path.read_text(encoding="utf-8"), relpath, rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
