"""CLI: ``python -m tools.check src/ tests/ benchmarks/``.

Exit status: 0 on a clean tree, 1 when findings survive suppression,
2 on usage errors or unparseable files (a syntax error is not a lint
finding — the tree is broken in a way the test suite will also see).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.check.engine import run_paths
from tools.check.rules import ALL_RULES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.check",
        description="Repo-owned invariant checker (REP rules).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to check (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write findings as a JSON array to FILE ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.summary}")
        return 0

    for entry in args.paths:
        if not Path(entry).exists():
            print(f"tools.check: no such path: {entry}", file=sys.stderr)
            return 2

    try:
        findings = run_paths(args.paths, ALL_RULES)
    except SyntaxError as exc:
        print(f"tools.check: cannot parse {exc.filename}:{exc.lineno}: {exc.msg}",
              file=sys.stderr)
        return 2

    for finding in findings:
        print(finding.render())

    if args.json:
        payload = json.dumps([f.as_json() for f in findings], indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(payload)
        else:
            # The findings file is CI debug output, not a durable
            # artifact of the runtime — a plain write is fine here.
            Path(args.json).write_text(payload, encoding="utf-8")

    if findings:
        print(
            f"tools.check: {len(findings)} finding"
            f"{'s' if len(findings) != 1 else ''} "
            "(suppress a justified one with '# repcheck: ignore[REPNNN]')",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
