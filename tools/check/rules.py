"""The REP rule set: one class per repo invariant.

Every rule documents the invariant it enforces and the sanctioned
alternative in its message, because a checker that says only "don't"
trains people to suppress it.  Scoping is by repo-relative path prefix;
the fixture suite under ``tests/fixtures/check/`` pins one failing and
one passing example per rule, and ``tests/test_check.py`` asserts the
real tree is clean.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from tools.check.engine import FileContext, Finding, Rule

__all__ = ["ALL_RULES"]


def _is_call_to(node: ast.AST, names: frozenset[str]) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in names
    )


class NoNetworkxInDecode(Rule):
    """REP001 — the decode hot path owns its graph code.

    PR 3 removed ``networkx`` from ``src/repro/decode/`` (the owned
    blossom engine is ~4x faster and deterministically tie-broken); a
    reintroduced import would silently re-add per-call generality cost
    and nondeterministic iteration order to the hottest loop in the
    repo.  ``layout/`` and ``codes/`` may still use networkx.
    """

    code = "REP001"
    summary = "no networkx import under src/repro/decode/"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/decode/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".", 1)[0] == "networkx":
                        yield self.finding(
                            ctx,
                            node,
                            "networkx import in the decode hot path; the owned "
                            "engines (decode/blossom.py, decode/graph.py) replace "
                            "it — keep oracle comparisons in tests/",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if node.level == 0 and module.split(".", 1)[0] == "networkx":
                    yield self.finding(
                        ctx,
                        node,
                        "networkx import in the decode hot path; the owned "
                        "engines (decode/blossom.py, decode/graph.py) replace "
                        "it — keep oracle comparisons in tests/",
                    )


class DurableWritesThroughStore(Rule):
    """REP002 — every durable write goes through ``repro.store``.

    PR 6's crash-safety story (atomic write-temp-then-rename, fsynced
    appends, checksum-verified artifacts) only holds if nothing writes
    around it.  A bare ``open(path, "w")`` can tear on SIGKILL and a
    bare ``pickle.dump`` bypasses the store's checksum header; both
    must route through ``atomic_write_bytes`` / ``atomic_write_text`` /
    ``durable_append`` or an ``ArtifactStore``.
    """

    code = "REP002"
    summary = "durable writes route through repro.store.atomic"

    _WRITE_MODES = frozenset("wax")
    _PATH_WRITERS = frozenset({"write_text", "write_bytes"})

    def applies(self, relpath: str) -> bool:
        return (
            relpath.startswith(("src/", "benchmarks/"))
            and not relpath.startswith("src/repro/store/")
        )

    def _mode_of(self, call: ast.Call) -> str | None:
        for kw in call.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                value = kw.value.value
                return value if isinstance(value, str) else None
        if len(call.args) >= 2 and isinstance(call.args[1], ast.Constant):
            value = call.args[1].value
            return value if isinstance(value, str) else None
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.imports.resolve(node.func)
            is_open = (
                isinstance(node.func, ast.Name) and node.func.id == "open"
            ) or (
                isinstance(node.func, ast.Attribute) and node.func.attr == "open"
            )
            if is_open:
                mode = self._mode_of(node)
                if mode is not None and any(c in self._WRITE_MODES for c in mode):
                    yield self.finding(
                        ctx,
                        node,
                        f"bare open(..., {mode!r}) can tear on crash; durable "
                        "files go through repro.store.atomic "
                        "(atomic_write_bytes/atomic_write_text/durable_append)",
                    )
            elif origin == "pickle.dump":
                yield self.finding(
                    ctx,
                    node,
                    "bare pickle.dump bypasses the store's checksum header; "
                    "persist build products through ArtifactStore.put or "
                    "atomic_write_bytes(pickle.dumps(...))",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._PATH_WRITERS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"Path.{node.func.attr}() is a non-atomic durable write; "
                    "route it through repro.store.atomic",
                )


class NoGlobalStateRng(Rule):
    """REP003 — randomness flows through explicit Generator plumbing.

    Global-state RNG (``np.random.<fn>``, stdlib ``random.<fn>``) makes
    results depend on import order and call history, breaking the
    bit-identical resume guarantee of checkpointed sweeps and the
    per-basis ``SeedSequence`` derivation in ``eval/montecarlo.py``.
    Only ``default_rng`` / ``Generator`` / ``SeedSequence`` (and the
    BitGenerator classes they wrap) are allowed.
    """

    code = "REP003"
    summary = "no global-state RNG in src/repro"

    _NUMPY_ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    _STDLIB_ALLOWED = frozenset({"Random", "SystemRandom"})

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        # Visiting Attribute/Name references (not Call nodes) catches
        # both direct calls and aliasing assignments like
        # ``draw = np.random.random`` without double-reporting calls.
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            origin = ctx.imports.resolve(node)
            if origin is None:
                continue
            parts = origin.split(".")
            if parts[:2] == ["numpy", "random"] and len(parts) == 3:
                if parts[2] not in self._NUMPY_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"global-state RNG {origin}; derive a "
                        "np.random.Generator from the experiment's "
                        "SeedSequence and pass it explicitly",
                    )
            elif parts[0] == "random" and len(parts) == 2:
                if parts[1] not in self._STDLIB_ALLOWED:
                    yield self.finding(
                        ctx,
                        node,
                        f"global-state RNG {origin}; stdlib module-level "
                        "randomness is seeded per-process — use the numpy "
                        "Generator plumbing instead",
                    )


class StableOrderInDecode(Rule):
    """REP004 — ordered decode computation never reads unordered order.

    The PR 7 bug class: ``argpartition`` returns ties in an
    implementation-defined order, so the C kernel and the numpy seeder
    silently selected different kNN candidate sets.  The sanctioned
    seam is a stable ``(weight, index)`` argsort
    (``sparse_match.knn_candidates``).  Likewise, iterating a set (or
    materialising one with ``list(set(...))``) feeds hash order into
    whatever consumes the loop — wrap it in ``sorted(...)``.
    """

    code = "REP004"
    summary = "no argpartition / unordered-set iteration in decode"

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(("src/repro/decode/", "src/repro/sim/"))

    def _set_producer(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return _is_call_to(node, frozenset({"set", "frozenset"}))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_argpartition = (
                    isinstance(func, ast.Attribute) and func.attr == "argpartition"
                )
                if is_argpartition:
                    yield self.finding(
                        ctx,
                        node,
                        "argpartition orders ties implementation-defined; use "
                        "the stable (weight, index) argsort seam "
                        "(sparse_match.knn_candidates) so compiled and numpy "
                        "paths select identical candidates",
                    )
                elif _is_call_to(node, frozenset({"list", "tuple", "enumerate"})):
                    if len(node.args) == 1 and self._set_producer(node.args[0]):
                        yield self.finding(
                            ctx,
                            node,
                            "materialising a set exposes hash order; use "
                            "sorted(...) so downstream computation sees a "
                            "deterministic sequence",
                        )
            iterables: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if self._set_producer(iterable):
                    yield self.finding(
                        ctx,
                        iterable,
                        "iterating a set feeds hash order into ordered decode "
                        "computation; wrap it in sorted(...)",
                    )


class VerifiedUnpickleOnly(Rule):
    """REP005 — unpickling happens only behind the store's checksum.

    ``pickle.load`` executes arbitrary bytecode from the file it reads;
    the artifact store verifies length + SHA-256 before unpickling and
    quarantines mismatches.  Loading a pickle anywhere else trades that
    guarantee away — including ``np.load(..., allow_pickle=True)``.
    """

    code = "REP005"
    summary = "no pickle.load outside the checksum-verified store path"

    _LOADERS = frozenset({"pickle.load", "pickle.loads", "pickle.Unpickler"})

    def applies(self, relpath: str) -> bool:
        return (
            relpath.startswith(("src/", "benchmarks/"))
            and not relpath.startswith("src/repro/store/")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.imports.resolve(node.func)
            if origin in self._LOADERS:
                yield self.finding(
                    ctx,
                    node,
                    f"{origin} outside repro/store executes unverified bytes; "
                    "load through ArtifactStore (verify-before-unpickle, "
                    "quarantine-and-rebuild)",
                )
                continue
            if origin == "numpy.load":
                for kw in node.keywords:
                    if (
                        kw.arg == "allow_pickle"
                        and isinstance(kw.value, ast.Constant)
                        and bool(kw.value.value)
                    ):
                        yield self.finding(
                            ctx,
                            node,
                            "np.load(allow_pickle=True) is an unverified "
                            "unpickle; store arrays through ArtifactStore or "
                            "load with allow_pickle=False",
                        )


class DeterministicSeedsAndPools(Rule):
    """REP006 — no wall-clock seeds, no fork-unsafe pool primitives.

    Wall-clock time in a seed path (``time.time``, ``datetime.now``)
    makes runs unreproducible and resume non-bit-identical; the
    sanctioned timer for measurement is ``perf_counter`` and seeds come
    from the experiment's ``SeedSequence``.  ``multiprocessing.Pool``
    and ``ProcessPoolExecutor`` capture open file handles, RNG state
    and locks at fork time with no EOF-based death detection — the
    repo's pool is the pipe-per-shard fork pool in ``decode/base.py``
    (worker death degrades to per-shard serial fallback instead of a
    hang).
    """

    code = "REP006"
    summary = "no wall-clock seeds or fork-unsafe pools in src/repro"

    _WALL_CLOCKS = frozenset(
        {
            "time.time",
            "time.time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.date.today",
        }
    )
    _POOLS = frozenset(
        {
            "multiprocessing.Pool",
            "multiprocessing.pool.Pool",
            "concurrent.futures.ProcessPoolExecutor",
            "concurrent.futures.process.ProcessPoolExecutor",
        }
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith(("src/repro/", "benchmarks/"))

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = ctx.imports.resolve(node.func)
            if origin is None:
                continue
            if origin in self._WALL_CLOCKS:
                yield self.finding(
                    ctx,
                    node,
                    f"{origin}() is wall-clock state: seeds derive from "
                    "SeedSequence, measurements use time.perf_counter; "
                    "suppress only for genuine timestamps",
                )
            elif origin in self._POOLS:
                yield self.finding(
                    ctx,
                    node,
                    f"{origin} captures fork-unsafe resources and hangs on "
                    "worker death; use the pipe-per-shard pool "
                    "(decode/base.py decode_batch(workers=N))",
                )


class WordPackedDedup(Rule):
    """REP007 — batch dedup runs on packed words, not byte rows.

    The PR 9 glue fix: an axis-0 ``np.unique`` over uint8 syndrome
    rows compares ~1.2 kB of bytes per row at d = 9, and was the
    single largest decode line item after the compiled kernel landed.
    ``decode_batch`` now packs rows into uint64 words
    (``utils/gf2.gf2_pack_rows``) before deduplicating — ~64× less
    data per comparison — and unpacks only the unique survivors.  This
    rule flags any axis-0 ``np.unique`` under ``src/repro/decode/``
    whose operand is not identifiably packed (heuristic: some name in
    the array expression contains ``packed`` or ``word``), so the byte
    -row pattern cannot quietly return to the hot path.
    """

    code = "REP007"
    summary = "axis-0 np.unique in decode/ dedups on packed words"

    _PACKED_MARKERS = ("packed", "word")

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/decode/")

    def _looks_packed(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            name = None
            if isinstance(sub, ast.Name):
                name = sub.id
            elif isinstance(sub, ast.Attribute):
                name = sub.attr
            if name is not None:
                lowered = name.lower()
                if any(m in lowered for m in self._PACKED_MARKERS):
                    return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if ctx.imports.resolve(node.func) != "numpy.unique":
                continue
            axis_zero = any(
                kw.arg == "axis"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value == 0
                for kw in node.keywords
            )
            if not axis_zero:
                continue
            if node.args and self._looks_packed(node.args[0]):
                continue
            yield self.finding(
                ctx,
                node,
                "axis-0 np.unique on byte rows scans the full row width "
                "per comparison; pack rows into uint64 words "
                "(utils/gf2.gf2_pack_rows) and dedup on those, unpacking "
                "only the unique survivors (decode/base.py _packed_dedup)",
            )


class CanonicalWorkerSpelling(Rule):
    """REP008 — a worker-count parameter is spelled ``workers``.

    The PR 10 API unification: every layer that fans work across a
    pool — ``decode_batch``, the Monte-Carlo harness, sweeps, the
    decode service — takes the *same* keyword, ``workers=``, so a
    worker count threads through the stack without renaming at each
    boundary.  This rule flags any function *definition* under
    ``src/repro/`` that binds a worker-count parameter under another
    spelling.  ``decoder_workers`` (the pre-unification spelling) is
    allowed only in the deprecation-shim shape: a signature that also
    binds the canonical ``workers``, or a dataclass ``__post_init__``
    (which receives only the ``InitVar`` alias — the canonical field
    lives on the class).  Call-site keywords are not flagged: calls
    into stdlib/third-party APIs keep whatever names those APIs use.
    """

    code = "REP008"
    summary = "worker-count parameters are spelled workers="

    _NONCANONICAL = frozenset(
        {
            "decoder_workers",
            "num_workers",
            "n_workers",
            "worker_count",
            "max_workers",
            "n_jobs",
            "num_threads",
            "pool_size",
        }
    )

    def applies(self, relpath: str) -> bool:
        return relpath.startswith("src/repro/")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = [
                *node.args.posonlyargs,
                *node.args.args,
                *node.args.kwonlyargs,
            ]
            bound = {p.arg for p in params}
            for param in params:
                if param.arg not in self._NONCANONICAL:
                    continue
                if param.arg == "decoder_workers" and (
                    "workers" in bound or node.name == "__post_init__"
                ):
                    continue  # the sanctioned deprecation-shim shape
                yield self.finding(
                    ctx,
                    param,
                    f"worker-count parameter {param.arg!r}; the canonical "
                    "spelling across the stack is workers= (keep "
                    "decoder_workers only as a deprecated alias beside "
                    "workers in the same signature)",
                )


ALL_RULES: tuple[Rule, ...] = (
    NoNetworkxInDecode(),
    DurableWritesThroughStore(),
    NoGlobalStateRng(),
    StableOrderInDecode(),
    VerifiedUnpickleOnly(),
    DeterministicSeedsAndPools(),
    WordPackedDedup(),
    CanonicalWorkerSpelling(),
)
