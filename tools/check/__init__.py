"""Repo-owned correctness checker: AST rules for the repo's real invariants.

The value of this codebase rests on properties no generic linter knows
about: bit-identical agreement between the compiled kernel and the
pure-Python oracle, deterministic tie-breaking and seeding everywhere,
and the rule that every durable write goes through ``repro.store``.
``tools.check`` encodes those invariants as machine-checked rules:

==========  ==========================================================
``REP001``  no ``networkx`` import under ``src/repro/decode/``
``REP002``  durable writes route through ``repro.store.atomic``
``REP003``  no global-state RNG in ``src/repro`` (``Generator``/
            ``SeedSequence`` plumbing only)
``REP004``  no ``argpartition`` / unordered-set iteration feeding
            ordered decode computation
``REP005``  no ``pickle.load`` outside the checksum-verified store path
``REP006``  no wall-clock-derived seeds or fork-unsafe pool primitives
==========  ==========================================================

Run it over the tree with ``python -m tools.check src/ tests/
benchmarks/``.  Findings print as ``path:line:col: REPNNN message``;
the exit status is 1 when any finding survives, 0 on a clean tree.

Suppressions are per-line and per-rule::

    candidates = np.argpartition(w, k)  # repcheck: ignore[REP004]

or file-wide (anywhere in the file, its own comment line)::

    # repcheck: file-ignore[REP001]

``ignore`` with no bracket list suppresses every rule on that line —
prefer the bracketed form so suppressions stay auditable.  The rule
catalogue, each rule's invariant and the rationale live in
``docs/ARCHITECTURE.md`` under "Correctness tooling".
"""

from tools.check.engine import Finding, check_source, iter_python_files, run_paths
from tools.check.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Finding",
    "check_source",
    "iter_python_files",
    "run_paths",
]
