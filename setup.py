"""Legacy setup shim: this environment's setuptools predates PEP 517 wheels.

Builds the optional compiled blossom kernel
(``repro.decode._cblossom``).  The extension is an accelerator, not a
requirement: any build failure — missing C toolchain, exotic platform —
degrades to a warning and the pure-Python engine, never an install
error.  ``python setup.py build_ext --inplace`` compiles it for a
source checkout.
"""

import sys
import warnings

from setuptools import Extension, find_packages, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """build_ext that degrades to pure-Python instead of failing."""

    def run(self):
        try:
            build_ext.run(self)
        except Exception as exc:  # toolchain missing entirely
            self._skip(exc)

    def build_extension(self, ext):
        try:
            build_ext.build_extension(self, ext)
        except Exception as exc:  # compile/link failure
            self._skip(exc)

    def _skip(self, exc):
        warnings.warn(
            "repro: building the compiled blossom kernel failed "
            f"({exc!r}); falling back to the pure-Python engine. "
            "Decoding works identically but matching is slower.",
            RuntimeWarning,
            stacklevel=2,
        )


if sys.platform == "win32":  # MSVC: contraction is off by default
    _KERNEL_CFLAGS = ["/O2"]
else:
    # -ffp-contract=off: no FMA contraction, so the kernel's float
    # arithmetic rounds exactly like the pure-Python oracle's.
    _KERNEL_CFLAGS = ["-O2", "-ffp-contract=off"]

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Surf-Deformer: adaptive code deformation for dynamic defects on "
        "surface codes (MICRO 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: the annotations on the public decode/sim/eval/store
    # surfaces are part of the API; ship the marker so type checkers
    # consume them from an installed copy too.
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    ext_modules=[
        Extension(
            "repro.decode._cblossom",
            sources=["src/repro/decode/_cblossom.c"],
            extra_compile_args=_KERNEL_CFLAGS,
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
