"""Legacy setup shim: this environment's setuptools predates PEP 517 wheels."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Surf-Deformer: adaptive code deformation for dynamic defects on "
        "surface codes (MICRO 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
)
