"""Plan a fault-tolerant program run with the Surf-Deformer framework.

Uses the compile-time layout generator on the paper's QFT-100-20
workload: chooses the code distance for a target retry risk, the Δd
inter-space from the defect model (equation 1), and compares the
end-to-end retry risk against the ASC-S and Q3DE baselines — a
single-row slice of Table II.

Run:  python examples/program_planning.py
"""

from repro import SurfDeformer
from repro.compiler import paper_benchmark
from repro.eval import evaluate_program
from repro.layout.generator import block_probability


def main() -> None:
    program = paper_benchmark("QFT-100-20")
    print(f"program: {program.name}")
    print(f"  logical qubits: {program.num_qubits}")
    print(f"  CNOT count:     {program.cx_count:.2e}")
    print(f"  T count:        {program.t_count:.2e}")

    framework = SurfDeformer()
    plan = framework.plan(program, target_risk=0.01)
    spec = plan.spec
    print("\nlayout generator output:")
    print(f"  code distance d     = {spec.d}")
    print(f"  extra inter-space Δd = {spec.delta_d} "
          f"(channel-block probability {spec.p_block:.4f})")
    print(f"  grid                = {spec.rows} x {spec.cols} logical cells")
    print(f"  physical qubits     = {spec.physical_qubits():.2e}")
    print(f"  estimated runtime   = {plan.total_cycles:.2e} QEC cycles")

    print("\nequation-1 Δd trade-off at this distance:")
    for delta in (0, 4, 8):
        p = block_probability(
            spec.d, delta,
            event_rate_hz_per_qubit=framework.defect_model.event_rate_hz_per_qubit,
            duration_s=framework.defect_model.duration_s,
            defect_size=4,
        )
        print(f"  Δd = {delta}: p_block = {p:.4f}")

    print("\nend-to-end retry risk at the planned distance (Table II row):")
    for method in ("q3de", "asc_s", "surf_deformer"):
        result = evaluate_program(program, method, spec.d)
        print(f"  {method:14s}: {result.status:>12s}  "
              f"({result.physical_qubits:.2e} physical qubits)")


if __name__ == "__main__":
    main()
