"""Cosmic-ray strike on a quantum memory: measure the logical error rate.

Reproduces the fig. 11(a) effect end to end on the built-in simulator:

1. sample a cosmic-ray defect region on a distance-9 patch,
2. measure the memory logical error rate with the defects left in place
   (the decoder unaware, as in a real unexpected strike),
3. remove the defects with Surf-Deformer and measure again,
4. compare with the clean code.

Run:  python examples/cosmic_ray_memory.py        (~1 minute)
"""

from repro import CosmicRayModel, NoiseModel, rotated_surface_code
from repro.deform import defect_removal
from repro.eval import memory_experiment

D = 9
NUM_DEFECTS = 8
SHOTS = 300
ROUNDS = 5


def main() -> None:
    noise = NoiseModel.uniform(1e-3)
    patch = rotated_surface_code(D)
    model = CosmicRayModel(seed=7)
    defects = model.sample_defective_qubits(patch.all_qubit_coords(), NUM_DEFECTS)
    print(f"distance-{D} memory, {NUM_DEFECTS} defective qubits: {sorted(defects)}")

    clean = memory_experiment(
        rotated_surface_code(D).code, "Z", noise, rounds=ROUNDS, shots=SHOTS, seed=1
    )
    print(f"\nclean code:      {clean.per_round:.2e} logical errors / round")

    data = {q for q in defects if q in patch.code.data_qubits}
    untreated = memory_experiment(
        patch.code,
        "Z",
        noise,
        rounds=ROUNDS,
        shots=SHOTS,
        seed=1,
        defective_data=data,
        defective_ancillas=defects - data,
        decoder_method="greedy",
    )
    print(f"untreated strike: {untreated.per_round:.2e} logical errors / round")

    treated_patch = rotated_surface_code(D)
    report = defect_removal(treated_patch, defects)
    treated = memory_experiment(
        treated_patch.code, "Z", noise, rounds=ROUNDS, shots=SHOTS, seed=1
    )
    print(
        f"after removal:    {treated.per_round:.2e} logical errors / round "
        f"(distance {report.distance_after})"
    )
    if treated.per_round > 0:
        print(f"\nremoval improves the strike by {untreated.per_round / treated.per_round:.0f}x")
    else:
        print("\nremoval restored the rate below this sample size's resolution")


if __name__ == "__main__":
    main()
