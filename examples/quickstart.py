"""Quickstart: deform a surface code around dynamic defects.

Builds a distance-7 rotated surface code, strikes it with a mixed defect
pattern (an interior data qubit, an interior syndrome qubit, a boundary
qubit), and lets the Code Deformation Unit remove the defects and
adaptively enlarge the patch back to its design distance.

Run:  python examples/quickstart.py
"""

from repro import (
    CodeDeformationUnit,
    check_code,
    code_distance,
    rotated_surface_code,
)


def main() -> None:
    patch = rotated_surface_code(7)
    print(f"fresh patch: {patch}")
    print(f"  distance (dX, dZ) = {code_distance(patch.code)}")
    print(f"  physical qubits   = {patch.physical_qubit_count()}")

    defects = {
        (7, 7),  # interior data qubit
        (4, 6),  # interior syndrome qubit (X-check ancilla)
        (1, 7),  # west-boundary data qubit
    }
    print(f"\ndefects detected: {sorted(defects)}")

    unit = CodeDeformationUnit(max_layers_per_side=2)
    report = unit.deform(patch, defects)

    print("\ninstruction schedule issued to the execution unit:")
    for instruction in report.instructions:
        print(f"  {instruction}")

    print(f"\nafter removal:     distance = {report.removal.distance_after}")
    print(f"after enlargement: distance = {report.final_distance}")
    print(f"design distance restored: {report.restored}")
    print(f"physical qubits now: {patch.physical_qubit_count()}")

    check_code(patch.code)  # Theorem-1 / Definition-4 invariants hold
    print("\ncode validity audit: OK")


if __name__ == "__main__":
    main()
